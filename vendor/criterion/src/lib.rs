//! Offline shim for the subset of the `criterion` API used by this
//! workspace's benches: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and `black_box`.
//!
//! It runs each benchmark a handful of times and reports a rough
//! mean wall-clock per iteration to stderr. There is no statistical
//! analysis, warm-up, or HTML report — the goal is that `cargo bench`
//! (and `cargo clippy --all-targets`) build and run the bench targets,
//! not measurement fidelity.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Opaque value barrier; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. The shim runs one routine
/// call per setup regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Register a stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, 10, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (clamped to a small number in this shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 10);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.samples, f);
        self
    }

    /// Finish the group (no-op beyond matching the upstream API).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        iters: 0,
        elapsed_ns: 0,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let mean = if b.iters > 0 {
        b.elapsed_ns as f64 / b.iters as f64
    } else {
        0.0
    };
    eprintln!("bench {name:<48} {mean:>12.1} ns/iter ({} iters)", b.iters);
}

/// Passed to each benchmark closure; times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += 1;
    }

    /// Time `routine` on input built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += 1;
    }
}

/// Define a group function from benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Define `main` running the named groups. CLI arguments (e.g. cargo
/// bench filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("iter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| 7u32, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(calls, 3);
    }
}
