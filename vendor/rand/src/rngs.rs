//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Small, fast RNG: xoshiro256++ with SplitMix64 seeding.
///
/// Not cryptographically secure; statistically solid and `O(1)` state,
/// which is what fault-injection sampling needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Raw 256-bit state, for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild from [`SmallRng::state`]. All-zero state is invalid for
    /// xoshiro and is replaced by the seed-0 expansion.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            Self::seed_from_u64(0)
        } else {
            SmallRng { s }
        }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let s = [
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
        ];
        Self::from_state(s)
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(123);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
