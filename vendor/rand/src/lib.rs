//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace: a seedable small RNG, `gen_range` over integer and float
//! ranges, and slice shuffling.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, high
//! quality, and deterministic for a given seed, which is all the campaign
//! code relies on. Streams are **not** value-compatible with upstream
//! `rand`.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

pub use rngs::SmallRng;

/// Types that can produce raw random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, in the style of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructor for seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, n)` by rejection sampling (unbiased).
pub(crate) fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // largest multiple of n representable in u64: values >= zone are rejected
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % n;
        }
    }
}

macro_rules! unsigned_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::unnecessary_cast)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::unnecessary_cast)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}
unsigned_range_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_range_impls {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::unnecessary_cast)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::unnecessary_cast)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
signed_range_impls!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

/// Largest float strictly below a finite `x` (manual `next_down`).
fn next_below_f64(x: f64) -> f64 {
    if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else if x == 0.0 {
        -f64::from_bits(1)
    } else {
        f64::from_bits(x.to_bits() + 1)
    }
}

fn next_below_f32(x: f32) -> f32 {
    if x > 0.0 {
        f32::from_bits(x.to_bits() - 1)
    } else if x == 0.0 {
        -f32::from_bits(1)
    } else {
        f32::from_bits(x.to_bits() + 1)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "gen_range: invalid float range"
        );
        // 53 uniform mantissa bits in [0, 1)
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * u;
        if v < self.end {
            v.max(self.start)
        } else {
            next_below_f64(self.end).max(self.start)
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "gen_range: invalid float range"
        );
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        let v = self.start + (self.end - self.start) * u;
        if v < self.end {
            v.max(self.start)
        } else {
            next_below_f32(self.end).max(self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..64);
            assert!(w < 64);
            let x: usize = rng.gen_range(0..=5);
            assert!(x <= 5);
            let s: i64 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&s));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..2000 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&w));
        }
    }

    #[test]
    fn gen_range_through_mut_ref_works() {
        fn draw(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(draw(&mut rng) < 10);
    }
}
