//! Slice helpers.

use crate::{uniform_u64_below, RngCore};

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, SmallRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
