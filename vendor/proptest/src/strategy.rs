//! The [`Strategy`] trait and implementations for numeric ranges and
//! tuples.

use rand::{Rng, SmallRng};

/// A generator of random values for one test argument.
pub trait Strategy {
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Floats: half-open ranges only (the rand shim has no inclusive float
// sampling, and neither does any test in this workspace).
macro_rules! float_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )+
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
