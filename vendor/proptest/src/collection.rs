//! Collection strategies: `vec(element, len_range)`.

use crate::strategy::Strategy;
use rand::{Rng, SmallRng};

/// Strategy producing a `Vec` whose length is drawn from `len` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
