//! Offline shim for the subset of the `proptest` API used by this
//! workspace: the `proptest!` macro with `arg in strategy` bindings,
//! `prop_assert!`/`prop_assert_eq!`, `ProptestConfig::with_cases`,
//! `any::<T>()`, numeric range strategies, tuple strategies, and
//! `proptest::collection::vec`.
//!
//! Unlike upstream proptest there is no shrinking and no persisted
//! failure file: each test runs `cases` deterministic random cases (the
//! RNG is seeded from the test's module path and name), and on a failing
//! case the sampled inputs are printed so the failure can be reproduced
//! by reading them off the panic output.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;

use rand::{RngCore, SeedableRng, SmallRng};

/// Per-test runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG for a named test: FNV-1a of the name, SplitMix64
/// expanded by the generator itself.
pub fn test_rng(name: &str) -> SmallRng {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    SmallRng::seed_from_u64(hash)
}

/// Prints the failing case's inputs if the test body panics.
pub struct CaseGuard {
    case: u32,
    inputs: String,
    armed: bool,
}

impl CaseGuard {
    pub fn new(case: u32, inputs: String) -> Self {
        CaseGuard {
            case,
            inputs,
            armed: true,
        }
    }

    /// Disarm after the body completed without panicking.
    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!("proptest case {} failed with inputs:", self.case);
            eprintln!("  {}", self.inputs);
        }
    }
}

/// Uniform "any value of this type" strategy, mirroring
/// `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a full-domain uniform distribution.
pub trait Arbitrary: std::fmt::Debug {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty),+) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut SmallRng) -> $ty {
                rng.next_u64() as $ty
            }
        })+
    };
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut SmallRng) -> $ty {
                rng.next_u64() as $ty
            }
        })+
    };
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The usual glob import: config, `any`, and the macros.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, Any, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Entry macro: a block of property tests, each taking `arg in strategy`
/// bindings. An optional leading `#![proptest_config(expr)]` sets the
/// case count for every test in the block.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands one `fn` item per recursion step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let mut __guard = $crate::CaseGuard::new(__case, __inputs);
                { $body }
                __guard.disarm();
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Property assertion; identical to `assert!` here (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Property equality assertion; identical to `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        let a = crate::test_rng("x").next_u64();
        let b = crate::test_rng("x").next_u64();
        let c = crate::test_rng("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u8..17, y in -5i64..5, z in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z), "z = {z}");
        }

        /// Vec strategy honours its length range; tuple strategies nest.
        #[test]
        fn vec_and_tuples(
            v in crate::collection::vec((0usize..10, 0.0f64..1.0), 2..9),
            flag in any::<bool>(),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            for &(i, f) in &v {
                prop_assert!(i < 10);
                prop_assert!((0.0..1.0).contains(&f));
            }
            let _ = flag;
        }
    }
}
