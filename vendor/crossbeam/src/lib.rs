//! Offline shim for the `crossbeam::channel` surface used by this
//! workspace: bounded MPSC channels with disconnect-on-drop, layered over
//! `std::sync::mpsc::sync_channel` (identical blocking semantics for a
//! single consumer).

#![forbid(unsafe_code)]

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Block until there is capacity; errors when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Channel holding at most `cap` values in flight (`cap == 0` is a
    /// rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_blocks_at_capacity_and_disconnects_on_drop() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            drop(rx);
            // receiver gone: further sends fail instead of blocking forever
            assert!(tx.send(3).is_err() || tx.send(4).is_err());
        }

        #[test]
        fn senders_dropping_ends_the_stream() {
            let (tx, rx) = bounded::<u32>(4);
            std::thread::spawn(move || {
                for i in 0..3 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            assert_eq!(got, vec![0, 1, 2]);
        }
    }
}
