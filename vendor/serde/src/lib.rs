//! Offline shim for the `serde` data model, covering the surface this
//! workspace uses: derived struct/enum (de)serialization with the `with`,
//! `default`, `from` and `into` attributes, visitor-based deserialization
//! (for custom `with`-modules such as `ftb_trace::serde_float`), and the
//! primitive/`Vec`/`Option`/tuple impls those derives lean on.
//!
//! Format crates implement [`Serializer`]/[`Deserializer`]; the only one in
//! this tree is the vendored `serde_json`.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
