//! Serialization half of the data model.

use std::fmt::Display;

/// Error constraint for serializers.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can drive a [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format accepting the serde data model.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;

    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
}

/// Sequence sub-serializer.
pub trait SerializeSeq {
    type Ok;
    type Error: Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map sub-serializer (string keys only, as in the supported formats).
pub trait SerializeMap {
    type Ok;
    type Error: Error;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct sub-serializer.
pub trait SerializeStruct {
    type Ok;
    type Error: Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! serialize_forward {
    ($($t:ty => $method:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

serialize_forward! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(2))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.end()
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(3))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.serialize_element(&self.2)?;
        seq.end()
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}
