//! Deserialization half of the data model (visitor-based, as in serde).

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error constraint for deserializers.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value constructible from a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Values deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A data format producing the serde data model.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    /// Drive `visitor` with whatever the input contains.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Distinguish null/absent from present (for `Option`).
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Receiver for deserialized shapes. Unimplemented hooks reject the input
/// with a type-mismatch error mentioning [`Visitor::expecting`].
pub trait Visitor<'de>: Sized {
    type Value;

    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(invalid_type(&self, format_args!("boolean `{v}`")))
    }

    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(invalid_type(&self, format_args!("integer `{v}`")))
    }

    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(invalid_type(&self, format_args!("integer `{v}`")))
    }

    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(invalid_type(&self, format_args!("float `{v}`")))
    }

    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(invalid_type(&self, format_args!("string {v:?}")))
    }

    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(invalid_type(&self, format_args!("null")))
    }

    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(invalid_type(&self, format_args!("none")))
    }

    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom("unexpected optional value"))
    }

    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(invalid_type(&self, format_args!("sequence")))
    }

    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(invalid_type(&self, format_args!("map")))
    }
}

struct Expecting<'a, 'de, V: Visitor<'de>>(&'a V, PhantomData<&'de ()>);

impl<'de, V: Visitor<'de>> Display for Expecting<'_, 'de, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.expecting(f)
    }
}

fn invalid_type<'de, V: Visitor<'de>, E: Error>(visitor: &V, got: fmt::Arguments<'_>) -> E {
    E::custom(format!(
        "invalid type: found {got}, expected {}",
        Expecting(visitor, PhantomData)
    ))
}

/// Streaming access to sequence elements.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Streaming access to map entries. Keys are strings (the only key type in
/// the supported formats); values are surfaced as sub-deserializers so
/// `with`-modules can be applied per field.
pub trait MapAccess<'de> {
    type Error: Error;
    type ValueDeserializer: Deserializer<'de, Error = Self::Error>;

    fn next_key(&mut self) -> Result<Option<String>, Self::Error>;

    /// Deserializer for the value of the key just returned.
    fn next_value_de(&mut self) -> Result<Self::ValueDeserializer, Self::Error>;

    fn next_value<T: Deserialize<'de>>(&mut self) -> Result<T, Self::Error> {
        T::deserialize(self.next_value_de()?)
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $t;

                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, concat!("an integer fitting ", stringify!($t)))
                    }

                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format!(concat!("{} out of range for ", stringify!($t)), v))
                        })
                    }

                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format!(concat!("{} out of range for ", stringify!($t)), v))
                        })
                    }
                }
                deserializer.deserialize_any(V)
            }
        }
    )*};
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $t;

                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, concat!("a ", stringify!($t), " number"))
                    }

                    fn visit_f64<E: Error>(self, v: f64) -> Result<$t, E> {
                        Ok(v as $t)
                    }

                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        Ok(v as $t)
                    }

                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                }
                deserializer.deserialize_any(V)
            }
        }
    )*};
}

deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = bool;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a boolean")
            }

            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }

            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }

            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_any(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an optional value")
            }

            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_some<D2: Deserializer<'de>>(
                self,
                deserializer: D2,
            ) -> Result<Option<T>, D2::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<A, B>(PhantomData<(A, B)>);
        impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Visitor<'de> for V<A, B> {
            type Value = (A, B);

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a 2-element sequence")
            }

            fn visit_seq<S: SeqAccess<'de>>(self, mut seq: S) -> Result<(A, B), S::Error> {
                let a = seq
                    .next_element()?
                    .ok_or_else(|| Error::custom("missing tuple element 0"))?;
                let b = seq
                    .next_element()?
                    .ok_or_else(|| Error::custom("missing tuple element 1"))?;
                Ok((a, b))
            }
        }
        deserializer.deserialize_any(V(PhantomData))
    }
}

impl<'de, A, B, C> Deserialize<'de> for (A, B, C)
where
    A: Deserialize<'de>,
    B: Deserialize<'de>,
    C: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<A, B, C>(PhantomData<(A, B, C)>);
        impl<'de, A, B, C> Visitor<'de> for V<A, B, C>
        where
            A: Deserialize<'de>,
            B: Deserialize<'de>,
            C: Deserialize<'de>,
        {
            type Value = (A, B, C);

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a 3-element sequence")
            }

            fn visit_seq<S: SeqAccess<'de>>(self, mut seq: S) -> Result<(A, B, C), S::Error> {
                let a = seq
                    .next_element()?
                    .ok_or_else(|| Error::custom("missing tuple element 0"))?;
                let b = seq
                    .next_element()?
                    .ok_or_else(|| Error::custom("missing tuple element 1"))?;
                let c = seq
                    .next_element()?
                    .ok_or_else(|| Error::custom("missing tuple element 2"))?;
                Ok((a, b, c))
            }
        }
        deserializer.deserialize_any(V(PhantomData))
    }
}
