//! Streaming JSON serializer.

use crate::Error;
use serde::ser::{SerializeMap, SerializeSeq, SerializeStruct};
use serde::{Serialize, Serializer};

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> crate::Result<String> {
    let mut out = Writer {
        out: String::new(),
        indent: None,
        depth: 0,
    };
    value.serialize(&mut out)?;
    Ok(out.out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> crate::Result<String> {
    let mut out = Writer {
        out: String::new(),
        indent: Some(2),
        depth: 0,
    };
    value.serialize(&mut out)?;
    Ok(out.out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> crate::Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> crate::Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

struct Writer {
    out: String,
    indent: Option<usize>,
    depth: usize,
}

impl Writer {
    fn newline_indent(&mut self) {
        if let Some(width) = self.indent {
            self.out.push('\n');
            for _ in 0..(self.depth * width) {
                self.out.push(' ');
            }
        }
    }

    fn push_str_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// Compound state: writes separators between elements and the closing
/// bracket on `end`.
pub struct Compound<'a> {
    writer: &'a mut Writer,
    close: char,
    has_elements: bool,
}

impl Compound<'_> {
    fn before_element(&mut self) {
        if self.has_elements {
            self.writer.out.push(',');
        }
        self.has_elements = true;
        self.writer.newline_indent();
    }

    fn finish(self) -> Result<(), Error> {
        self.writer.depth -= 1;
        if self.has_elements {
            self.writer.newline_indent();
        }
        self.writer.out.push(self.close);
        Ok(())
    }
}

impl SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.before_element();
        value.serialize(&mut *self.writer)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        self.before_element();
        // keys must serialize to JSON strings (String/str in this tree)
        key.serialize(&mut *self.writer)?;
        self.writer.out.push(':');
        if self.writer.indent.is_some() {
            self.writer.out.push(' ');
        }
        value.serialize(&mut *self.writer)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.before_element();
        self.writer.push_str_escaped(name);
        self.writer.out.push(':');
        if self.writer.indent.is_some() {
            self.writer.out.push(' ');
        }
        value.serialize(&mut *self.writer)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl<'a> Serializer for &'a mut Writer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeMap = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        if v.is_finite() {
            // Rust's Debug float formatting is shortest-roundtrip and
            // always a valid JSON number (`1.5`, `1e308`, `-0.0`)
            self.out.push_str(&format!("{v:?}"));
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), Error> {
        if v.is_finite() {
            self.out.push_str(&format!("{v:?}"));
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        self.push_str_escaped(v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('[');
        self.depth += 1;
        Ok(Compound {
            writer: self,
            close: ']',
            has_elements: false,
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        self.depth += 1;
        Ok(Compound {
            writer: self,
            close: '}',
            has_elements: false,
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        self.depth += 1;
        Ok(Compound {
            writer: self,
            close: '}',
            has_elements: false,
        })
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.push_str_escaped(variant);
        Ok(())
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        self.depth += 1;
        self.newline_indent();
        self.push_str_escaped(variant);
        self.out.push(':');
        if self.indent.is_some() {
            self.out.push(' ');
        }
        value.serialize(&mut *self)?;
        self.depth -= 1;
        self.newline_indent();
        self.out.push('}');
        Ok(())
    }
}
