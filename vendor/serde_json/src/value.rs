//! Parsed JSON tree.

use serde::de::{Error as DeError, MapAccess, SeqAccess, Visitor};
use serde::ser::SerializeMap;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// A parsed JSON value. Object entries preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integer token that fits `i64` (negative).
    NegInt(i64),
    /// Integer token that fits `u64` (non-negative).
    PosInt(u64),
    /// Any number token with a fraction/exponent, or out-of-range integer.
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::NegInt(_) | Value::PosInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object member by key; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::NegInt(v) => Some(v as f64),
            Value::PosInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Non-negative integer payload, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered member list, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Mutable ordered member list, if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::NegInt(v) => serializer.serialize_i64(*v),
            Value::PosInt(v) => serializer.serialize_u64(*v),
            Value::Float(v) => serializer.serialize_f64(*v),
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(items) => items.serialize(serializer),
            Value::Object(entries) => {
                let mut map = serializer.serialize_map(Some(entries.len()))?;
                for (k, v) in entries {
                    map.serialize_entry(k, v)?;
                }
                map.end()
            }
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = Value;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("any JSON value")
            }

            fn visit_bool<E: DeError>(self, v: bool) -> Result<Value, E> {
                Ok(Value::Bool(v))
            }

            fn visit_i64<E: DeError>(self, v: i64) -> Result<Value, E> {
                Ok(if v < 0 {
                    Value::NegInt(v)
                } else {
                    Value::PosInt(v as u64)
                })
            }

            fn visit_u64<E: DeError>(self, v: u64) -> Result<Value, E> {
                Ok(Value::PosInt(v))
            }

            fn visit_f64<E: DeError>(self, v: f64) -> Result<Value, E> {
                Ok(Value::Float(v))
            }

            fn visit_str<E: DeError>(self, v: &str) -> Result<Value, E> {
                Ok(Value::String(v.to_owned()))
            }

            fn visit_string<E: DeError>(self, v: String) -> Result<Value, E> {
                Ok(Value::String(v))
            }

            fn visit_unit<E: DeError>(self) -> Result<Value, E> {
                Ok(Value::Null)
            }

            fn visit_none<E: DeError>(self) -> Result<Value, E> {
                Ok(Value::Null)
            }

            fn visit_some<D2: Deserializer<'de>>(
                self,
                deserializer: D2,
            ) -> Result<Value, D2::Error> {
                Value::deserialize(deserializer)
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Value, A::Error> {
                let mut items = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(item) = seq.next_element()? {
                    items.push(item);
                }
                Ok(Value::Array(items))
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Value, A::Error> {
                let mut entries = Vec::new();
                while let Some(key) = map.next_key()? {
                    entries.push((key, map.next_value()?));
                }
                Ok(Value::Object(entries))
            }
        }
        deserializer.deserialize_any(V)
    }
}
