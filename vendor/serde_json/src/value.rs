//! Parsed JSON tree.

/// A parsed JSON value. Object entries preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integer token that fits `i64` (negative).
    NegInt(i64),
    /// Integer token that fits `u64` (non-negative).
    PosInt(u64),
    /// Any number token with a fraction/exponent, or out-of-range integer.
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::NegInt(_) | Value::PosInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
