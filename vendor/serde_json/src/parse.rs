//! Hand-rolled recursive-descent JSON parser.

use crate::{Error, Value};

pub(crate) fn parse_value(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                // high surrogate: require a \uXXXX low half
                                if !(self.eat_literal("\\u")) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                            // hex4 leaves pos after the digits; compensate
                            // for the unconditional advance below
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // multi-byte UTF-8: copy the whole scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().expect("non-empty utf8");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ASCII");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Value::NegInt(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::PosInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}
