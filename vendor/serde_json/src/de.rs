//! Value-tree deserializer bridging parsed JSON into serde visitors.

use crate::parse::parse_value;
use crate::{Error, Value};
use serde::de::{DeserializeOwned, MapAccess, SeqAccess, Visitor};
use serde::Deserializer;

/// Deserialize a value from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> crate::Result<T> {
    let value = parse_value(s)?;
    T::deserialize(ValueDe { value })
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> crate::Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Deserializer over an owned parsed [`Value`].
pub(crate) struct ValueDe {
    pub(crate) value: Value,
}

impl<'de> Deserializer<'de> for ValueDe {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> crate::Result<V::Value> {
        match self.value {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::NegInt(v) => visitor.visit_i64(v),
            Value::PosInt(v) => visitor.visit_u64(v),
            Value::Float(v) => visitor.visit_f64(v),
            Value::String(s) => visitor.visit_string(s),
            Value::Array(items) => visitor.visit_seq(SeqDe {
                iter: items.into_iter(),
            }),
            Value::Object(entries) => visitor.visit_map(MapDe {
                iter: entries.into_iter(),
                pending: None,
            }),
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> crate::Result<V::Value> {
        match self.value {
            Value::Null => visitor.visit_none(),
            _ => visitor.visit_some(self),
        }
    }
}

struct SeqDe {
    iter: std::vec::IntoIter<Value>,
}

impl<'de> SeqAccess<'de> for SeqDe {
    type Error = Error;

    fn next_element<T: serde::Deserialize<'de>>(&mut self) -> crate::Result<Option<T>> {
        match self.iter.next() {
            Some(value) => T::deserialize(ValueDe { value }).map(Some),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct MapDe {
    iter: std::vec::IntoIter<(String, Value)>,
    pending: Option<Value>,
}

impl<'de> MapAccess<'de> for MapDe {
    type Error = Error;
    type ValueDeserializer = ValueDe;

    fn next_key(&mut self) -> crate::Result<Option<String>> {
        match self.iter.next() {
            Some((key, value)) => {
                self.pending = Some(value);
                Ok(Some(key))
            }
            None => Ok(None),
        }
    }

    fn next_value_de(&mut self) -> crate::Result<ValueDe> {
        match self.pending.take() {
            Some(value) => Ok(ValueDe { value }),
            None => Err(Error::new("next_value_de called before next_key")),
        }
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: f64,
        y: u32,
        label: String,
        tag: Option<i64>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Circle,
        Square,
        Poly(Vec<u8>),
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrap(u32);

    #[test]
    fn struct_roundtrip_compact_and_pretty() {
        let p = Point {
            x: 2.2737367544323206e-13,
            y: 7,
            label: "a \"quoted\"\nline".into(),
            tag: None,
        };
        let compact = crate::to_string(&p).unwrap();
        let pretty = crate::to_string_pretty(&p).unwrap();
        assert_eq!(crate::from_str::<Point>(&compact).unwrap(), p);
        assert_eq!(crate::from_str::<Point>(&pretty).unwrap(), p);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for v in [0.0, -0.0, 1.5, 1e308, 5e-324, f64::MIN_POSITIVE, 0.1 + 0.2] {
            let json = crate::to_string(&v).unwrap();
            let back: f64 = crate::from_str(&json).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "value {v:?} via {json}");
        }
    }

    #[test]
    fn integers_stay_integers() {
        let json = crate::to_string(&vec![3u64, u64::MAX]).unwrap();
        assert_eq!(json, format!("[3,{}]", u64::MAX));
        let back: Vec<u64> = crate::from_str(&json).unwrap();
        assert_eq!(back, vec![3, u64::MAX]);
        // an int token satisfies an f64 field
        let x: f64 = crate::from_str("3").unwrap();
        assert_eq!(x, 3.0);
    }

    #[test]
    fn enum_encoding_matches_serde_conventions() {
        assert_eq!(crate::to_string(&Shape::Circle).unwrap(), "\"Circle\"");
        assert_eq!(
            crate::to_string(&Shape::Poly(vec![1, 2])).unwrap(),
            "{\"Poly\":[1,2]}"
        );
        assert_eq!(
            crate::from_str::<Shape>("\"Square\"").unwrap(),
            Shape::Square
        );
        assert_eq!(
            crate::from_str::<Shape>("{\"Poly\":[9]}").unwrap(),
            Shape::Poly(vec![9])
        );
    }

    #[test]
    fn newtype_struct_is_transparent() {
        assert_eq!(crate::to_string(&Wrap(5)).unwrap(), "5");
        assert_eq!(crate::from_str::<Wrap>("5").unwrap(), Wrap(5));
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let p: Point =
            crate::from_str(r#"{"x": 1.0, "junk": [1, {"a": 2}], "y": 2, "label": "s", "tag": 4}"#)
                .unwrap();
        assert_eq!(p.tag, Some(4));
        assert_eq!(p.y, 2);
    }

    #[test]
    fn missing_field_errors_mention_the_field() {
        let err = crate::from_str::<Point>(r#"{"x": 1.0}"#).unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
    }

    #[test]
    fn garbage_input_is_rejected() {
        assert!(crate::from_str::<Point>("{\"x\": ").is_err());
        assert!(crate::from_str::<u32>("true").is_err());
        assert!(crate::from_str::<Vec<u8>>("[1, 2,]").is_err());
        assert!(crate::from_str::<u8>("300").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = crate::from_str(r#""Aé😀""#).unwrap();
        assert_eq!(s, "Aé😀");
    }
}
