//! Offline shim for the `serde_json` surface used by this workspace:
//! `to_string`/`to_vec`/`to_string_pretty`/`to_vec_pretty`, `from_str`/
//! `from_slice`, and the serde `Serializer`/`Deserializer` bridges they
//! need.
//!
//! Numbers round-trip exactly: serialization uses Rust's shortest-
//! roundtrip float formatting (`{:?}`), parsing uses `str::parse`
//! (correctly rounded), and integers are kept as integers so visitors see
//! `visit_i64`/`visit_u64` for `3` but `visit_f64` for `3.0`. Non-finite
//! floats serialize as `null`, as in upstream serde_json.

#![forbid(unsafe_code)]

mod de;
mod parse;
mod ser;
mod value;

pub use de::{from_slice, from_str};
pub use ser::{to_string, to_string_pretty, to_vec, to_vec_pretty};
pub use value::Value;

/// Convert any serializable value into a parsed [`Value`] tree, by way
/// of JSON text. The round-trip is exact: floats use shortest-roundtrip
/// formatting and parse back bit-identically, integers stay integers.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    from_str(&to_string(&value)?)
}

use std::fmt;

/// Error produced by JSON (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// `Result` alias matching upstream serde_json.
pub type Result<T> = std::result::Result<T, Error>;
