//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim. Instead of a full `syn` parse, the item tokens are
//! walked directly; code is generated as text and re-parsed. Supported
//! shapes are exactly what this workspace contains:
//!
//! - structs with named fields (attrs: `#[serde(with = "path")]`,
//!   `#[serde(default)]`, container `#[serde(from = "T", into = "T")]`)
//! - newtype structs
//! - enums whose variants are unit, single-field tuples, or structs with
//!   plain named fields
//!
//! Anything else (generics, unions, multi-field tuple variants, unknown
//! serde attributes) fails with an explicit `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let generated = match parse(input).and_then(|ast| match mode {
        Mode::Serialize => gen_serialize(&ast),
        Mode::Deserialize => gen_deserialize(&ast),
    }) {
        Ok(code) => code,
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    generated
        .parse()
        .unwrap_or_else(|e| panic!("serde_derive shim produced unparseable code: {e}"))
}

// ---------------------------------------------------------------- parsing

struct Ast {
    name: String,
    data: Data,
    from: Option<String>,
    into: Option<String>,
}

enum Data {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    ty: String,
    with: Option<String>,
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

enum SerdeAttr {
    With(String),
    Default,
    From(String),
    Into(String),
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consume a leading run of `#[...]` attributes, returning serde ones.
    fn eat_attrs(&mut self) -> Result<Vec<SerdeAttr>, String> {
        let mut out = Vec::new();
        while self.eat_punct('#') {
            match self.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let mut inner = Cursor::new(g.stream());
                    if inner.eat_ident("serde") {
                        match inner.bump() {
                            Some(TokenTree::Group(args))
                                if args.delimiter() == Delimiter::Parenthesis =>
                            {
                                out.extend(parse_serde_args(args.stream())?);
                            }
                            _ => return Err("malformed #[serde(...)] attribute".into()),
                        }
                    }
                }
                other => return Err(format!("expected attribute body, found {other:?}")),
            }
        }
        Ok(out)
    }

    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Collect type tokens until a top-level comma (angle-bracket aware).
    fn take_type(&mut self) -> String {
        let mut depth = 0i32;
        let mut ts = TokenStream::new();
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            ts.extend([self.bump().expect("peeked token vanished")]);
        }
        ts.to_string()
    }
}

fn strip_quotes(lit: &str) -> Result<String, String> {
    let s = lit.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        Ok(s[1..s.len() - 1].to_string())
    } else {
        Err(format!("expected string literal, found `{s}`"))
    }
}

fn parse_serde_args(ts: TokenStream) -> Result<Vec<SerdeAttr>, String> {
    let mut cur = Cursor::new(ts);
    let mut out = Vec::new();
    while !cur.at_end() {
        let key = cur.expect_ident()?;
        match key.as_str() {
            "default" => out.push(SerdeAttr::Default),
            "with" | "from" | "into" => {
                if !cur.eat_punct('=') {
                    return Err(format!("#[serde({key})] expects `= \"...\"`"));
                }
                let lit = match cur.bump() {
                    Some(TokenTree::Literal(l)) => strip_quotes(&l.to_string())?,
                    other => return Err(format!("expected string after {key} =, got {other:?}")),
                };
                out.push(match key.as_str() {
                    "with" => SerdeAttr::With(lit),
                    "from" => SerdeAttr::From(lit),
                    _ => SerdeAttr::Into(lit),
                });
            }
            other => {
                return Err(format!(
                    "unsupported serde attribute `{other}` (shim supports with/default/from/into)"
                ))
            }
        }
        cur.eat_punct(',');
    }
    Ok(out)
}

fn parse(input: TokenStream) -> Result<Ast, String> {
    let mut cur = Cursor::new(input);
    let container_attrs = cur.eat_attrs()?;
    let mut from = None;
    let mut into = None;
    for attr in container_attrs {
        match attr {
            SerdeAttr::From(t) => from = Some(t),
            SerdeAttr::Into(t) => into = Some(t),
            SerdeAttr::With(_) | SerdeAttr::Default => {
                return Err("with/default are field attributes, not container attributes".into())
            }
        }
    }
    cur.eat_visibility();

    let kind = cur.expect_ident()?;
    let name = cur.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` not supported by serde shim"));
        }
    }

    let data = match kind.as_str() {
        "struct" => match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let mut inner = Cursor::new(g.stream());
                inner.eat_attrs()?;
                inner.eat_visibility();
                let ty = inner.take_type();
                if !inner.at_end() {
                    inner.eat_punct(',');
                }
                if !inner.at_end() {
                    return Err(format!(
                        "tuple struct `{name}` has more than one field; only newtypes supported"
                    ));
                }
                let _ = ty;
                Data::NewtypeStruct
            }
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive serde for `{other}` items")),
    };

    Ok(Ast {
        name,
        data,
        from,
        into,
    })
}

fn parse_named_fields(ts: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(ts);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let attrs = cur.eat_attrs()?;
        let mut with = None;
        let mut default = false;
        for attr in attrs {
            match attr {
                SerdeAttr::With(p) => with = Some(p),
                SerdeAttr::Default => default = true,
                _ => return Err("from/into are container attributes, not field attributes".into()),
            }
        }
        cur.eat_visibility();
        let name = cur.expect_ident()?;
        if !cur.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        let ty = cur.take_type();
        cur.eat_punct(',');
        fields.push(Field {
            name,
            ty,
            with,
            default,
        });
    }
    Ok(fields)
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(ts);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.eat_attrs()?;
        let name = cur.expect_ident()?;
        let mut kind = VariantKind::Unit;
        match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let mut inner = Cursor::new(g.stream());
                let _ty = inner.take_type();
                if !inner.at_end() {
                    inner.eat_punct(',');
                }
                if !inner.at_end() {
                    return Err(format!(
                        "variant `{name}` has multiple fields; only newtype variants supported"
                    ));
                }
                kind = VariantKind::Newtype;
                cur.pos += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                for f in &fields {
                    if f.with.is_some() || f.default {
                        return Err(format!(
                            "serde field attributes inside struct variant `{name}` not supported"
                        ));
                    }
                }
                kind = VariantKind::Struct(fields);
                cur.pos += 1;
            }
            _ => {}
        }
        // skip explicit discriminants
        if cur.eat_punct('=') {
            while let Some(t) = cur.peek() {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                cur.bump();
            }
        }
        cur.eat_punct(',');
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(ast: &Ast) -> Result<String, String> {
    let name = &ast.name;
    let body = if let Some(into_ty) = &ast.into {
        format!(
            "let __conv: {into_ty} = core::convert::Into::into(core::clone::Clone::clone(self));\n\
             serde::Serialize::serialize(&__conv, __serializer)"
        )
    } else {
        match &ast.data {
            Data::NamedStruct(fields) => {
                let mut b = String::new();
                let _ = writeln!(
                    b,
                    "let mut __st = serde::Serializer::serialize_struct(__serializer, \"{name}\", {})?;",
                    fields.len()
                );
                for f in fields {
                    let fname = &f.name;
                    if let Some(with) = &f.with {
                        let ty = &f.ty;
                        let _ = writeln!(
                            b,
                            "{{\n\
                             struct __SerdeWith<'__a>(&'__a {ty});\n\
                             impl serde::Serialize for __SerdeWith<'_> {{\n\
                                 fn serialize<__S2: serde::Serializer>(&self, __s2: __S2) -> core::result::Result<__S2::Ok, __S2::Error> {{\n\
                                     {with}::serialize(self.0, __s2)\n\
                                 }}\n\
                             }}\n\
                             serde::ser::SerializeStruct::serialize_field(&mut __st, \"{fname}\", &__SerdeWith(&self.{fname}))?;\n\
                             }}"
                        );
                    } else {
                        let _ = writeln!(
                            b,
                            "serde::ser::SerializeStruct::serialize_field(&mut __st, \"{fname}\", &self.{fname})?;"
                        );
                    }
                }
                b.push_str("serde::ser::SerializeStruct::end(__st)");
                b
            }
            Data::NewtypeStruct => {
                format!("serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)")
            }
            Data::Enum(variants) => {
                let mut arms = String::new();
                for (i, v) in variants.iter().enumerate() {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Newtype => {
                            let _ = writeln!(
                                arms,
                                "{name}::{vname}(__f0) => serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {i}u32, \"{vname}\", __f0),"
                            );
                        }
                        VariantKind::Unit => {
                            let _ = writeln!(
                                arms,
                                "{name}::{vname} => serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {i}u32, \"{vname}\"),"
                            );
                        }
                        VariantKind::Struct(fields) => {
                            let bindings = fields
                                .iter()
                                .map(|f| f.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let mut helper_fields = String::new();
                            let mut helper_body = String::new();
                            for f in fields {
                                let fname = &f.name;
                                let ty = &f.ty;
                                let _ = writeln!(helper_fields, "{fname}: &'__a {ty},");
                                let _ = writeln!(
                                    helper_body,
                                    "serde::ser::SerializeStruct::serialize_field(&mut __st, \"{fname}\", self.{fname})?;"
                                );
                            }
                            let _ = writeln!(
                                arms,
                                "{name}::{vname} {{ {bindings} }} => {{\n\
                                 struct __SV{i}<'__a> {{ {helper_fields} }}\n\
                                 impl serde::Serialize for __SV{i}<'_> {{\n\
                                     fn serialize<__S2: serde::Serializer>(&self, __s2: __S2) -> core::result::Result<__S2::Ok, __S2::Error> {{\n\
                                         let mut __st = serde::Serializer::serialize_struct(__s2, \"{vname}\", {len})?;\n\
                                         {helper_body}\n\
                                         serde::ser::SerializeStruct::end(__st)\n\
                                     }}\n\
                                 }}\n\
                                 serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {i}u32, \"{vname}\", &__SV{i} {{ {bindings} }})\n\
                                 }},",
                                len = fields.len()
                            );
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    Ok(format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __serializer: __S) -> core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    ))
}

fn gen_deserialize(ast: &Ast) -> Result<String, String> {
    let name = &ast.name;
    let body = if let Some(from_ty) = &ast.from {
        format!(
            "let __inner: {from_ty} = serde::Deserialize::deserialize(__deserializer)?;\n\
             core::result::Result::Ok(core::convert::From::from(__inner))"
        )
    } else {
        match &ast.data {
            Data::NamedStruct(fields) => gen_deserialize_struct(name, fields),
            Data::NewtypeStruct => format!(
                "core::result::Result::Ok({name}(serde::Deserialize::deserialize(__deserializer)?))"
            ),
            Data::Enum(variants) => gen_deserialize_enum(name, variants),
        }
    };
    Ok(format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) -> core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    ))
}

fn gen_deserialize_struct(name: &str, fields: &[Field]) -> String {
    let mut decls = String::new();
    let mut arms = String::new();
    let mut build = String::new();
    for f in fields {
        let fname = &f.name;
        let ty = &f.ty;
        let _ = writeln!(
            decls,
            "let mut __field_{fname}: core::option::Option<{ty}> = core::option::Option::None;"
        );
        if let Some(with) = &f.with {
            let _ = writeln!(
                arms,
                "\"{fname}\" => {{ __field_{fname} = core::option::Option::Some({with}::deserialize(serde::de::MapAccess::next_value_de(&mut __map)?)?); }}"
            );
        } else {
            let _ = writeln!(
                arms,
                "\"{fname}\" => {{ __field_{fname} = core::option::Option::Some(serde::de::MapAccess::next_value(&mut __map)?); }}"
            );
        }
        if f.default {
            let _ = writeln!(build, "{fname}: __field_{fname}.unwrap_or_default(),");
        } else {
            let _ = writeln!(
                build,
                "{fname}: __field_{fname}.ok_or_else(|| <__A::Error as serde::de::Error>::custom(\"missing field `{fname}` in {name}\"))?,"
            );
        }
    }
    format!(
        "struct __Visitor;\n\
         impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{\n\
                 __f.write_str(\"struct {name}\")\n\
             }}\n\
             fn visit_map<__A: serde::de::MapAccess<'de>>(self, mut __map: __A) -> core::result::Result<{name}, __A::Error> {{\n\
                 {decls}\n\
                 while let core::option::Option::Some(__key) = serde::de::MapAccess::next_key(&mut __map)? {{\n\
                     match __key.as_str() {{\n\
                         {arms}\n\
                         _ => {{ let _ = serde::de::MapAccess::next_value_de(&mut __map)?; }}\n\
                     }}\n\
                 }}\n\
                 core::result::Result::Ok({name} {{\n\
                     {build}\n\
                 }})\n\
             }}\n\
         }}\n\
         serde::Deserializer::deserialize_any(__deserializer, __Visitor)"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .collect();
    let payload: Vec<(usize, &Variant)> = variants
        .iter()
        .enumerate()
        .filter(|(_, v)| !matches!(v.kind, VariantKind::Unit))
        .collect();

    let mut methods = String::new();
    if !unit.is_empty() {
        let mut arms = String::new();
        for v in &unit {
            let vname = &v.name;
            let _ = writeln!(
                arms,
                "\"{vname}\" => core::result::Result::Ok({name}::{vname}),"
            );
        }
        let _ = writeln!(
            methods,
            "fn visit_str<__E: serde::de::Error>(self, __v: &str) -> core::result::Result<{name}, __E> {{\n\
                 match __v {{\n\
                     {arms}\n\
                     __other => core::result::Result::Err(serde::de::Error::custom(format!(\"unknown unit variant `{{}}` of enum {name}\", __other))),\n\
                 }}\n\
             }}"
        );
    }
    if !payload.is_empty() {
        let mut arms = String::new();
        for (i, v) in &payload {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Newtype => {
                    let _ = writeln!(
                        arms,
                        "\"{vname}\" => {name}::{vname}(serde::de::MapAccess::next_value(&mut __map)?),"
                    );
                }
                VariantKind::Struct(fields) => {
                    let mut helper_fields = String::new();
                    let mut build = String::new();
                    for f in fields {
                        let fname = &f.name;
                        let ty = &f.ty;
                        let _ = writeln!(helper_fields, "{fname}: {ty},");
                        let _ = writeln!(build, "{fname}: __v.{fname},");
                    }
                    let inner_body = gen_deserialize_struct(&format!("__SV{i}"), fields);
                    let _ = writeln!(
                        arms,
                        "\"{vname}\" => {{\n\
                         struct __SV{i} {{ {helper_fields} }}\n\
                         impl<'de> serde::Deserialize<'de> for __SV{i} {{\n\
                             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) -> core::result::Result<Self, __D::Error> {{\n\
                                 {inner_body}\n\
                             }}\n\
                         }}\n\
                         let __v: __SV{i} = serde::de::MapAccess::next_value(&mut __map)?;\n\
                         {name}::{vname} {{ {build} }}\n\
                         }},"
                    );
                }
                VariantKind::Unit => unreachable!(),
            }
        }
        let _ = writeln!(
            methods,
            "fn visit_map<__A: serde::de::MapAccess<'de>>(self, mut __map: __A) -> core::result::Result<{name}, __A::Error> {{\n\
                 let __key = serde::de::MapAccess::next_key(&mut __map)?\n\
                     .ok_or_else(|| <__A::Error as serde::de::Error>::custom(\"empty map for enum {name}\"))?;\n\
                 let __value = match __key.as_str() {{\n\
                     {arms}\n\
                     __other => return core::result::Result::Err(serde::de::Error::custom(format!(\"unknown variant `{{}}` of enum {name}\", __other))),\n\
                 }};\n\
                 if serde::de::MapAccess::next_key(&mut __map)?.is_some() {{\n\
                     return core::result::Result::Err(serde::de::Error::custom(\"expected single-key map for enum {name}\"));\n\
                 }}\n\
                 core::result::Result::Ok(__value)\n\
             }}"
        );
    }
    format!(
        "struct __Visitor;\n\
         impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{\n\
                 __f.write_str(\"enum {name}\")\n\
             }}\n\
             {methods}\n\
         }}\n\
         serde::Deserializer::deserialize_any(__deserializer, __Visitor)"
    )
}
