//! Offline shim for the subset of `rayon` used by this workspace.
//!
//! Pipelines (`par_iter`/`into_par_iter` + `map`/`flat_map_iter`) are
//! evaluated over an index space that is split into contiguous chunks, one
//! per worker, executed on `std::thread::scope` threads, and re-assembled
//! in order — so `collect` preserves sequential order exactly like rayon.
//! `fold`/`reduce` produce one partial accumulator per chunk; as with real
//! rayon, the final result is deterministic for associative, commutative
//! reductions regardless of the worker count.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Worker count used by parallel operations started from this thread.
/// An explicit `ThreadPool::install` wins; otherwise the standard
/// `RAYON_NUM_THREADS` environment variable is honored; otherwise the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Builder mirroring `rayon::ThreadPoolBuilder` (worker-count hint only).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (`0` means "automatic", as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Scoped worker-count override; threads are spawned per operation.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Run `f` with this pool's worker count as the ambient parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let out = f();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }
}

/// Error type kept for API compatibility; building cannot actually fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A parallel pipeline over an indexed input space.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    /// Size of the *input* index space (not the output length —
    /// `flat_map_iter` may expand each index to many items).
    #[doc(hidden)]
    fn pi_len(&self) -> usize;

    /// Evaluate the pipeline over input indices `start..end`, in order.
    #[doc(hidden)]
    fn pi_eval(&self, start: usize, end: usize) -> Vec<Self::Item>;

    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        FlatMapIter { base: self, f }
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_vec(execute(&self))
    }

    /// Chunked fold: returns one partial accumulator per chunk, to be
    /// combined with [`Partials::reduce`].
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Partials<T>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, Self::Item) -> T + Sync,
    {
        let len = self.pi_len();
        let parts = run_chunks(len, &|start, end| {
            self.pi_eval(start, end)
                .into_iter()
                .fold(identity(), &fold_op)
        });
        Partials { parts }
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        execute(&self).into_iter().fold(identity(), op)
    }

    fn count(self) -> usize {
        execute(&self).len()
    }
}

/// Per-chunk partial accumulators produced by [`ParallelIterator::fold`].
#[derive(Debug)]
pub struct Partials<T> {
    parts: Vec<T>,
}

impl<T> Partials<T> {
    /// Combine the partials (mirrors `ParallelIterator::reduce` applied to
    /// a `fold` result in real rayon).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.parts.into_iter().fold(identity(), op)
    }
}

/// Split `0..len` into one contiguous chunk per worker and evaluate `f`
/// on scoped threads; results come back in chunk order.
fn run_chunks<T: Send>(len: usize, f: &(dyn Fn(usize, usize) -> T + Sync)) -> Vec<T> {
    if len == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().clamp(1, len);
    if workers == 1 {
        return vec![f(0, len)];
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(len);
                scope.spawn(move || f(start, end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

fn execute<P: ParallelIterator>(pipeline: &P) -> Vec<P::Item> {
    let len = pipeline.pi_len();
    let chunks = run_chunks(len, &|start, end| pipeline.pi_eval(start, end));
    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Collection types buildable from an ordered parallel pipeline.
pub trait FromParallelIterator<T> {
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}

/// `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_eval(&self, start: usize, end: usize) -> Vec<U> {
        self.base
            .pi_eval(start, end)
            .into_iter()
            .map(&self.f)
            .collect()
    }
}

/// `flat_map_iter` adapter.
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U::Item;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_eval(&self, start: usize, end: usize) -> Vec<U::Item> {
        self.base
            .pi_eval(start, end)
            .into_iter()
            .flat_map(&self.f)
            .collect()
    }
}

/// Borrowing source over a slice.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_eval(&self, start: usize, end: usize) -> Vec<&'a T> {
        self.slice[start..end].iter().collect()
    }
}

/// Owning source over a `usize` range.
pub struct RangeIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn pi_len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    fn pi_eval(&self, start: usize, end: usize) -> Vec<usize> {
        (self.start + start..self.start + end).collect()
    }
}

/// Conversion into an owning parallel pipeline.
pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;

    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end,
        }
    }
}

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { data: self }
    }
}

/// Owning source over a `Vec` (items are cloned into per-chunk output;
/// fine for the cheap item types this workspace parallelises over).
pub struct VecIter<T> {
    data: Vec<T>,
}

impl<T: Send + Sync + Clone> ParallelIterator for VecIter<T> {
    type Item = T;

    fn pi_len(&self) -> usize {
        self.data.len()
    }

    fn pi_eval(&self, start: usize, end: usize) -> Vec<T> {
        self.data[start..end].to_vec()
    }
}

/// Conversion into a borrowing parallel pipeline (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;

    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_matches_sequential() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .flat_map_iter(|i| (0..i % 3).map(move |j| i * 10 + j))
            .collect();
        let expected: Vec<usize> = (0..100usize)
            .flat_map(|i| (0..i % 3).map(move |j| i * 10 + j))
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn fold_reduce_sums_correctly() {
        let v: Vec<u64> = (1..=10_000u64).collect();
        let total = v
            .par_iter()
            .fold(|| 0u64, |acc, x| acc + *x)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn install_overrides_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let single: Vec<usize> = pool.install(|| (0..50usize).into_par_iter().collect());
        let multi: Vec<usize> = (0..50usize).into_par_iter().collect();
        assert_eq!(single, multi);
    }
}
