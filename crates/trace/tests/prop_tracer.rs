//! Property tests for the tracer semantics: the invariants every kernel
//! and campaign relies on.

use ftb_trace::bits::Precision;
use ftb_trace::{propagation, FaultSpec, RecordMode, StaticId, Tracer};
use proptest::prelude::*;

const SID: StaticId = StaticId(0);

/// A tiny synthetic "kernel": a chain of multiply-adds over the supplied
/// coefficients, one traced store per step.
fn chain(t: &mut Tracer, coeffs: &[f64]) -> Vec<f64> {
    let mut acc = 1.0;
    for &c in coeffs {
        acc = t.value(SID, acc * 0.5 + c);
    }
    vec![acc]
}

proptest! {
    /// The cursor counts every traced value exactly once, in every mode.
    #[test]
    fn cursor_counts_all_values(coeffs in proptest::collection::vec(-10.0f64..10.0, 1..100)) {
        let mut g = Tracer::golden(Precision::F64);
        chain(&mut g, &coeffs);
        prop_assert_eq!(g.cursor(), coeffs.len());

        let mut u = Tracer::untraced(Precision::F64);
        chain(&mut u, &coeffs);
        prop_assert_eq!(u.cursor(), coeffs.len());
    }

    /// Injecting at a site changes that recorded value by exactly the
    /// bit-flip delta and leaves all earlier values untouched.
    #[test]
    fn fault_is_local_until_its_site(
        coeffs in proptest::collection::vec(-10.0f64..10.0, 2..60),
        site_frac in 0.0f64..1.0,
        bit in 0u8..64,
    ) {
        let site = ((coeffs.len() - 1) as f64 * site_frac) as usize;
        let mut g = Tracer::golden(Precision::F64);
        let gout = chain(&mut g, &coeffs);
        let golden = g.finish_golden(gout);

        let mut f = Tracer::inject(Precision::F64, FaultSpec { site, bit }, RecordMode::Full);
        let fout = chain(&mut f, &coeffs);
        let faulty = f.finish(fout);
        let fvals = faulty.values.as_ref().unwrap();

        for (i, (fv, gv)) in fvals.iter().zip(&golden.values).take(site).enumerate() {
            prop_assert_eq!(fv.to_bits(), gv.to_bits(),
                "value before the fault site changed at {}", i);
        }
        let expected = ftb_trace::flip_bit_f64(golden.values[site], bit);
        prop_assert_eq!(fvals[site].to_bits(), expected.to_bits());
    }

    /// Propagation windows never report negative errors, errors before
    /// the injection site are zero, and `compare_len` is bounded by both
    /// runs.
    #[test]
    fn propagation_window_is_sane(
        coeffs in proptest::collection::vec(-10.0f64..10.0, 2..60),
        site_frac in 0.0f64..1.0,
        bit in 0u8..63, // exclude the sign bit of potentially-zero values
    ) {
        let site = ((coeffs.len() - 1) as f64 * site_frac) as usize;
        let mut g = Tracer::golden(Precision::F64);
        let gout = chain(&mut g, &coeffs);
        let golden = g.finish_golden(gout);

        let mut f = Tracer::inject(Precision::F64, FaultSpec { site, bit }, RecordMode::Full);
        let fout = chain(&mut f, &coeffs);
        let faulty = f.finish(fout);

        let p = propagation(&golden, &faulty);
        prop_assert!(p.compare_len <= golden.n_dynamic);
        prop_assert_eq!(p.injected_at, site.min(p.compare_len));
        for (s, e) in p.iter() {
            prop_assert!(e >= 0.0, "negative error at {}", s);
        }
        for s in 0..p.injected_at {
            prop_assert_eq!(p.error_at(s), Some(0.0));
        }
    }

    /// Quantisation to f32 is idempotent through the tracer.
    #[test]
    fn f32_quantisation_is_idempotent(v in -1e30f64..1e30) {
        let mut t = Tracer::untraced(Precision::F32);
        let once = t.value(SID, v);
        let twice = t.value(SID, once);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    /// Branch events encode (cursor, taken) losslessly.
    #[test]
    fn branch_encoding_roundtrips(
        pattern in proptest::collection::vec(any::<bool>(), 0..50)
    ) {
        let mut t = Tracer::golden(Precision::F64);
        for (i, &b) in pattern.iter().enumerate() {
            t.value(SID, i as f64);
            t.branch(b);
        }
        let g = t.finish_golden(vec![]);
        prop_assert_eq!(g.branches.len(), pattern.len());
        for (i, (&enc, &b)) in g.branches.iter().zip(&pattern).enumerate() {
            prop_assert_eq!((enc & 1) == 1, b);
            prop_assert_eq!((enc >> 1) as usize, i + 1);
        }
    }

    /// An un-faulted full-record run reproduces the golden values exactly
    /// (record mode itself must not perturb the computation).
    #[test]
    fn record_mode_does_not_perturb(coeffs in proptest::collection::vec(-10.0f64..10.0, 1..60)) {
        let mut g = Tracer::golden(Precision::F64);
        let gout = chain(&mut g, &coeffs);
        let golden = g.finish_golden(gout);

        // a fault at a site beyond the run is never applied
        let mut f = Tracer::inject(
            Precision::F64,
            FaultSpec { site: usize::MAX - 1, bit: 0 },
            RecordMode::Full,
        );
        let fout = chain(&mut f, &coeffs);
        let faulty = f.finish(fout);
        prop_assert_eq!(&golden.values, faulty.values.as_ref().unwrap());
        prop_assert_eq!(&golden.output, &faulty.output);
    }
}
