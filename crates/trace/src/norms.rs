//! Output-error metrics.
//!
//! The paper quantifies output error with the **L∞ norm** between the
//! faulty and golden outputs ("although any other metric could be used as
//! well" — so L2 and relative variants are provided too, and the outcome
//! classifier in `ftb-inject` is generic over the choice).

use serde::{Deserialize, Serialize};

/// Which norm to compare outputs with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Norm {
    /// `max_i |a_i − b_i|` — the paper's default.
    LInf,
    /// `sqrt(Σ (a_i − b_i)^2)`.
    L2,
    /// `max_i |a_i − b_i| / max(|a_i|, floor)` — scale-free variant for
    /// outputs whose magnitude varies wildly across elements.
    RelLInf {
        /// Denominator floor preventing division blow-up near zero.
        floor: f64,
    },
}

impl Norm {
    /// Distance between two outputs under this norm.
    ///
    /// Outputs of different lengths are "infinitely" different (a faulty
    /// run that produced a structurally different output can never be
    /// acceptable). Any non-finite element difference also yields `+∞`.
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        if a.len() != b.len() {
            return f64::INFINITY;
        }
        match self {
            Norm::LInf => {
                let mut m = 0.0f64;
                for (&x, &y) in a.iter().zip(b) {
                    let d = (x - y).abs();
                    if d.is_nan() {
                        return f64::INFINITY;
                    }
                    m = m.max(d);
                }
                m
            }
            Norm::L2 => {
                let mut s = 0.0f64;
                for (&x, &y) in a.iter().zip(b) {
                    let d = x - y;
                    if d.is_nan() {
                        return f64::INFINITY;
                    }
                    s += d * d;
                }
                s.sqrt()
            }
            Norm::RelLInf { floor } => {
                let mut m = 0.0f64;
                for (&x, &y) in a.iter().zip(b) {
                    let d = (x - y).abs() / x.abs().max(floor);
                    if d.is_nan() {
                        return f64::INFINITY;
                    }
                    m = m.max(d);
                }
                m
            }
        }
    }
}

/// Relative error of `faulty` against `golden` with a denominator floor —
/// the per-site significance test the paper uses for its "potential
/// impact" metric (Figure 4, second row: relative error greater than
/// `1e-8`).
#[inline]
pub fn relative_error(golden: f64, faulty: f64, floor: f64) -> f64 {
    let d = (golden - faulty).abs();
    if d == 0.0 {
        return 0.0;
    }
    let r = d / golden.abs().max(floor);
    if r.is_nan() {
        f64::INFINITY
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linf_is_max_abs_difference() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 2.0, 2.0];
        assert_eq!(Norm::LInf.distance(&a, &b), 1.0);
    }

    #[test]
    fn l2_matches_hand_computation() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(Norm::L2.distance(&a, &b), 5.0);
    }

    #[test]
    fn rel_linf_scales_by_reference() {
        let a = [100.0, 1e-30];
        let b = [101.0, 2e-30];
        let d = Norm::RelLInf { floor: 1e-12 }.distance(&a, &b);
        // first element: 1/100 = 0.01; second: 1e-30/1e-12 = 1e-18
        assert!((d - 0.01).abs() < 1e-15);
    }

    #[test]
    fn length_mismatch_is_infinite() {
        assert_eq!(Norm::LInf.distance(&[1.0], &[1.0, 2.0]), f64::INFINITY);
    }

    #[test]
    fn nan_difference_is_infinite() {
        assert_eq!(Norm::LInf.distance(&[f64::NAN], &[1.0]), f64::INFINITY);
        assert_eq!(Norm::L2.distance(&[f64::NAN], &[1.0]), f64::INFINITY);
    }

    #[test]
    fn identical_outputs_have_zero_distance() {
        let a = [1.0, -2.0, 3.5];
        for n in [Norm::LInf, Norm::L2, Norm::RelLInf { floor: 1e-12 }] {
            assert_eq!(n.distance(&a, &a), 0.0);
        }
    }

    #[test]
    fn relative_error_floor_prevents_blowup() {
        let r = relative_error(0.0, 1e-20, 1e-12);
        assert_eq!(r, 1e-8);
        assert_eq!(relative_error(2.0, 2.0, 1e-12), 0.0);
    }

    #[test]
    fn relative_error_nan_is_infinite() {
        assert_eq!(relative_error(1.0, f64::NAN, 1e-12), f64::INFINITY);
    }
}
