//! Static-instruction identity.
//!
//! A *static instruction* is a source-level site (an assignment inside a
//! kernel loop); a *dynamic instruction* is one execution of a static
//! instruction. The paper's analysis is per dynamic instruction, but its
//! Figure 4 discussion interprets results in terms of source regions
//! ("initialization instructions", "a new loop is started to process a
//! block of the matrix"), so every dynamic instruction carries the id of
//! its static site and every static site carries a region label.

use serde::{Deserialize, Serialize};

/// Identifier of a static instruction within one kernel's registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StaticId(pub u32);

impl StaticId {
    /// The raw index into the kernel's [`StaticRegistry`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A coarse source region a static instruction belongs to, used when
/// interpreting per-region prediction quality (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// One-time setup: allocating/zeroing/filling inputs. The paper finds
    /// errors injected elsewhere never propagate *into* these sites, which
    /// is why their thresholds are under-informed at low sampling rates.
    Init,
    /// The main iterative/factorization/butterfly computation.
    Compute,
    /// Data-movement phases (e.g. the FFT six-step transposes).
    DataMovement,
    /// Reductions feeding convergence tests (CG dot products, norms).
    Reduction,
    /// Final output assembly.
    Output,
}

impl Region {
    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Region::Init => "init",
            Region::Compute => "compute",
            Region::DataMovement => "move",
            Region::Reduction => "reduce",
            Region::Output => "output",
        }
    }
}

/// Metadata for one static instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StaticInstr {
    /// Human-readable name, e.g. `"cg.axpy.x"`.
    pub name: &'static str,
    /// Source region.
    pub region: Region,
    /// Whether entering this site from a *different* static instruction
    /// begins a new outer-loop phase (see `SectionMap::phases`). Opt-in:
    /// kernels whose phase structure is already captured by the
    /// init-boundary and reduction-restart heuristics mark nothing.
    pub phase_head: bool,
}

/// The set of static instructions of one kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct StaticRegistry {
    entries: Vec<StaticInstr>,
}

impl StaticRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a static instruction and return its id. Ids are assigned
    /// densely in registration order.
    pub fn register(&mut self, name: &'static str, region: Region) -> StaticId {
        let id = StaticId(self.entries.len() as u32);
        self.entries.push(StaticInstr {
            name,
            region,
            phase_head: false,
        });
        id
    }

    /// Mark a registered static instruction as a phase head: the
    /// segmentation heuristic starts a new section whenever the dynamic
    /// stream transitions into this site from a different static
    /// instruction.
    ///
    /// # Panics
    /// Panics if the id was not produced by this registry.
    pub fn mark_phase_head(&mut self, id: StaticId) {
        self.entries[id.index()].phase_head = true;
    }

    /// Look up a static instruction.
    ///
    /// # Panics
    /// Panics if the id was not produced by this registry.
    pub fn get(&self, id: StaticId) -> &StaticInstr {
        &self.entries[id.index()]
    }

    /// Number of registered static instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(id, instr)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (StaticId, &StaticInstr)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (StaticId(i as u32), e))
    }
}

/// Declare a kernel's static instructions as named constants plus a
/// `registry()` constructor, keeping kernel bodies readable. A trailing
/// `phase` marker flags the site as a section phase head (see
/// [`StaticRegistry::mark_phase_head`]):
///
/// ```
/// ftb_trace::static_instrs! {
///     pub mod sid {
///         INIT_X => ("cg.init.x", Init),
///         AXPY   => ("cg.axpy", Compute, phase),
///     }
/// }
/// assert_eq!(sid::AXPY.index(), 1);
/// assert_eq!(sid::registry().get(sid::INIT_X).name, "cg.init.x");
/// assert!(sid::registry().get(sid::AXPY).phase_head);
/// ```
#[macro_export]
macro_rules! static_instrs {
    ($vis:vis mod $m:ident { $($name:ident => ($label:expr, $region:ident $(, $marker:ident)?)),+ $(,)? }) => {
        $vis mod $m {
            #![allow(missing_docs)]
            use $crate::site::{Region, StaticId, StaticRegistry};

            $crate::static_instrs!(@consts 0u32; $($name)+);

            /// Build the registry matching the constants above.
            pub fn registry() -> StaticRegistry {
                let mut r = StaticRegistry::new();
                $(
                    let id = r.register($label, Region::$region);
                    debug_assert_eq!(id, $name);
                    $($crate::static_instrs!(@mark r id $marker);)?
                )+
                r
            }
        }
    };
    (@mark $r:ident $id:ident phase) => {
        $r.mark_phase_head($id);
    };
    (@consts $idx:expr; $head:ident $($rest:ident)*) => {
        pub const $head: StaticId = StaticId($idx);
        $crate::static_instrs!(@consts $idx + 1u32; $($rest)*);
    };
    (@consts $idx:expr;) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_dense_ids() {
        let mut r = StaticRegistry::new();
        let a = r.register("a", Region::Init);
        let b = r.register("b", Region::Compute);
        assert_eq!(a, StaticId(0));
        assert_eq!(b, StaticId(1));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).name, "a");
        assert_eq!(r.get(b).region, Region::Compute);
    }

    #[test]
    fn iter_order_matches_registration() {
        let mut r = StaticRegistry::new();
        r.register("x", Region::Init);
        r.register("y", Region::Output);
        let names: Vec<_> = r.iter().map(|(_, e)| e.name).collect();
        assert_eq!(names, ["x", "y"]);
    }

    crate::static_instrs! {
        mod sid {
            FIRST => ("k.first", Init),
            SECOND => ("k.second", Compute, phase),
            THIRD => ("k.third", Output),
        }
    }

    #[test]
    fn macro_generates_consts_and_registry() {
        assert_eq!(sid::FIRST, StaticId(0));
        assert_eq!(sid::SECOND, StaticId(1));
        assert_eq!(sid::THIRD, StaticId(2));
        let r = sid::registry();
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(sid::THIRD).name, "k.third");
        assert_eq!(r.get(sid::FIRST).region, Region::Init);
    }

    #[test]
    fn phase_marker_sets_phase_head() {
        let r = sid::registry();
        assert!(!r.get(sid::FIRST).phase_head);
        assert!(r.get(sid::SECOND).phase_head);
        assert!(!r.get(sid::THIRD).phase_head);
    }

    #[test]
    fn mark_phase_head_is_explicit_and_sticky() {
        let mut r = StaticRegistry::new();
        let a = r.register("a", Region::Compute);
        assert!(!r.get(a).phase_head);
        r.mark_phase_head(a);
        assert!(r.get(a).phase_head);
    }

    #[test]
    fn region_labels_are_stable() {
        assert_eq!(Region::Init.label(), "init");
        assert_eq!(Region::Reduction.label(), "reduce");
    }
}
