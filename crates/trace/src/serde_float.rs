//! JSON-safe `f64` (de)serialization.
//!
//! Error magnitudes in campaign artifacts are legitimately `+∞` (a bit
//! flip that produced a non-finite value) but JSON has no infinity:
//! `serde_json` writes `null` and then refuses to read it back. This
//! module encodes non-finite values as the strings `"inf"`, `"-inf"` and
//! `"nan"`; finite values stay plain numbers. Use with
//! `#[serde(with = "ftb_trace::serde_float")]`.

use serde::de::{self, Visitor};
use serde::{Deserializer, Serializer};
use std::fmt;

/// Serialize a possibly non-finite `f64`.
pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
    if v.is_finite() {
        s.serialize_f64(*v)
    } else if v.is_nan() {
        s.serialize_str("nan")
    } else if *v > 0.0 {
        s.serialize_str("inf")
    } else {
        s.serialize_str("-inf")
    }
}

struct F64Visitor;

impl Visitor<'_> for F64Visitor {
    type Value = f64;

    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a number or one of \"inf\", \"-inf\", \"nan\"")
    }

    fn visit_f64<E: de::Error>(self, v: f64) -> Result<f64, E> {
        Ok(v)
    }

    fn visit_i64<E: de::Error>(self, v: i64) -> Result<f64, E> {
        Ok(v as f64)
    }

    fn visit_u64<E: de::Error>(self, v: u64) -> Result<f64, E> {
        Ok(v as f64)
    }

    fn visit_str<E: de::Error>(self, v: &str) -> Result<f64, E> {
        match v {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(E::custom(format!("not a float marker: {other:?}"))),
        }
    }
}

/// Deserialize a possibly non-finite `f64`.
pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
    d.deserialize_any(F64Visitor)
}

/// The same non-finite-safe encoding for `Vec<f64>` fields. Use with
/// `#[serde(with = "ftb_trace::serde_float::vec")]`.
pub mod vec {
    use serde::de::{SeqAccess, Visitor};
    use serde::ser::SerializeSeq;
    use serde::{Deserializer, Serializer};
    use std::fmt;

    struct Elem(f64);

    impl serde::Serialize for Elem {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            super::serialize(&self.0, s)
        }
    }

    struct ElemDe(f64);

    impl<'de> serde::Deserialize<'de> for ElemDe {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            super::deserialize(d).map(ElemDe)
        }
    }

    /// Serialize a slice of possibly non-finite `f64`s.
    pub fn serialize<S: Serializer>(v: &[f64], s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(v.len()))?;
        for &x in v {
            seq.serialize_element(&Elem(x))?;
        }
        seq.end()
    }

    struct VecVisitor;

    impl<'de> Visitor<'de> for VecVisitor {
        type Value = Vec<f64>;

        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("a sequence of numbers or float markers")
        }

        fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<f64>, A::Error> {
            let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
            while let Some(ElemDe(x)) = seq.next_element()? {
                out.push(x);
            }
            Ok(out)
        }
    }

    /// Deserialize a vector of possibly non-finite `f64`s.
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<f64>, D::Error> {
        d.deserialize_any(VecVisitor)
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Serialize, Deserialize, PartialEq)]
    struct Holder {
        #[serde(with = "super")]
        v: f64,
    }

    fn roundtrip(v: f64) -> f64 {
        let json = serde_json::to_string(&Holder { v }).unwrap();
        let back: Holder = serde_json::from_str(&json).unwrap();
        back.v
    }

    #[test]
    fn finite_values_roundtrip_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            2.2737367544323206e-13,
            1e308,
            f64::MIN_POSITIVE,
        ] {
            assert_eq!(roundtrip(v).to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn infinities_roundtrip() {
        assert_eq!(roundtrip(f64::INFINITY), f64::INFINITY);
        assert_eq!(roundtrip(f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn nan_roundtrips_as_nan() {
        assert!(roundtrip(f64::NAN).is_nan());
    }

    #[test]
    fn integers_in_json_are_accepted() {
        let back: super::tests::Holder = serde_json::from_str(r#"{"v": 3}"#).unwrap();
        assert_eq!(back.v, 3.0);
    }

    #[test]
    fn garbage_strings_rejected() {
        let r: Result<Holder, _> = serde_json::from_str(r#"{"v": "banana"}"#);
        assert!(r.is_err());
    }

    #[derive(Debug, Serialize, Deserialize, PartialEq)]
    struct VecHolder {
        #[serde(with = "super::vec")]
        v: Vec<f64>,
    }

    #[test]
    fn vectors_with_infinities_roundtrip() {
        let h = VecHolder {
            v: vec![0.5, f64::INFINITY, -2.0, f64::NEG_INFINITY],
        };
        let json = serde_json::to_string(&h).unwrap();
        let back: VecHolder = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn empty_vector_roundtrips() {
        let h = VecHolder { v: vec![] };
        let json = serde_json::to_string(&h).unwrap();
        let back: VecHolder = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
