//! Golden-vs-faulty trace comparison: the error-propagation extractor.
//!
//! This implements the paper's §2.2: the error at dynamic instruction `i`
//! is `Δx_i = |x_i − x'_i|`, tracked **only until the computation
//! diverges** — "without the same computation sequence, defining an error
//! represents a fundamental challenge". Divergence is detected by
//! comparing the branch-outcome streams of the two runs; the comparison
//! window ends at the dynamic-instruction cursor of the first mismatching
//! branch event.

use crate::golden::{GoldenRun, RunTrace};
use serde::{Deserialize, Serialize};

/// Per-dynamic-instruction perturbation of one fault-injected run relative
/// to the golden run (the curve of the paper's Figure 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Propagation {
    /// Fault site the run was injected at.
    pub injected_at: usize,
    /// Dynamic instructions `0 .. compare_len` are comparable (identical
    /// control flow up to here).
    pub compare_len: usize,
    /// `Δx_i` for `i` in `injected_at .. compare_len`; indices before the
    /// injection site are identically zero and not stored.
    pub errors: Vec<f64>,
    /// Whether control flow diverged before the end of the golden run.
    pub diverged: bool,
}

impl Propagation {
    /// The perturbation at dynamic instruction `site`, or `None` outside
    /// the comparable window (before injection the error is exactly zero
    /// and `Some(0.0)` is returned).
    #[inline]
    pub fn error_at(&self, site: usize) -> Option<f64> {
        if site >= self.compare_len {
            None
        } else if site < self.injected_at {
            Some(0.0)
        } else {
            Some(self.errors[site - self.injected_at])
        }
    }

    /// Iterate `(site, Δx)` over the stored window.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.errors
            .iter()
            .enumerate()
            .map(move |(k, &e)| (self.injected_at + k, e))
    }

    /// Number of sites with a perturbation strictly above `threshold`.
    pub fn touched(&self, threshold: f64) -> usize {
        self.errors.iter().filter(|&&e| e > threshold).count()
    }
}

/// Dynamic-instruction cursor at which the two branch streams first
/// disagree, or `None` if the shorter stream is a prefix of the longer
/// *and* both have equal length (i.e. no divergence at all).
///
/// A length difference with an identical common prefix still means the
/// executions separated (one run kept looping after the other stopped);
/// the divergence point is then the cursor of the first unmatched event.
pub fn divergence_cursor(golden: &[u64], faulty: &[u64]) -> Option<usize> {
    let n = golden.len().min(faulty.len());
    for i in 0..n {
        if golden[i] != faulty[i] {
            // events encode (cursor << 1) | taken; divergence where the
            // earlier of the two mismatching events sits
            let gc = (golden[i] >> 1) as usize;
            let fc = (faulty[i] >> 1) as usize;
            return Some(gc.min(fc));
        }
    }
    match golden.len().cmp(&faulty.len()) {
        std::cmp::Ordering::Equal => None,
        std::cmp::Ordering::Less => Some((faulty[n] >> 1) as usize),
        std::cmp::Ordering::Greater => Some((golden[n] >> 1) as usize),
    }
}

/// Extract the propagation data of a fault-injected, fully recorded run.
///
/// # Panics
/// Panics if `faulty` carries no fault or was not recorded with
/// `RecordMode::Full`.
pub fn propagation(golden: &GoldenRun, faulty: &RunTrace) -> Propagation {
    let fault = faulty
        .fault
        .expect("propagation requires a fault-injected run");
    let fvalues = faulty
        .values
        .as_ref()
        .expect("propagation requires RecordMode::Full values");
    let fbranches = faulty
        .branches
        .as_ref()
        .expect("propagation requires RecordMode::Full branches");

    let div = divergence_cursor(&golden.branches, fbranches);
    let mut compare_len = golden.n_dynamic.min(fvalues.len());
    if let Some(d) = div {
        compare_len = compare_len.min(d);
    }

    let injected_at = fault.site.min(compare_len);
    let errors: Vec<f64> = golden.values[injected_at..compare_len]
        .iter()
        .zip(&fvalues[injected_at..compare_len])
        .map(|(&g, &f)| {
            let d = (g - f).abs();
            // a NaN difference (faulty value went non-finite inside the
            // window) is an unbounded perturbation
            if d.is_nan() {
                f64::INFINITY
            } else {
                d
            }
        })
        .collect();

    Propagation {
        injected_at,
        compare_len,
        errors,
        diverged: div.is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::Precision;
    use crate::site::StaticId;
    use crate::tracer::{FaultSpec, RecordMode, Tracer};

    const SID: StaticId = StaticId(0);

    /// Kernel: running sum of i, with a data-dependent early exit when the
    /// sum exceeds `cap`.
    fn capped_sum(t: &mut Tracer, cap: f64) -> Vec<f64> {
        let mut acc = 0.0;
        for i in 1..=6 {
            acc = t.value(SID, acc + i as f64);
            if t.branch(acc > cap) {
                break;
            }
        }
        vec![acc]
    }

    fn golden(cap: f64) -> GoldenRun {
        let mut t = Tracer::golden(Precision::F64);
        let out = capped_sum(&mut t, cap);
        t.finish_golden(out)
    }

    #[test]
    fn no_divergence_on_identical_streams() {
        let g = golden(100.0);
        assert_eq!(divergence_cursor(&g.branches, &g.branches), None);
    }

    #[test]
    fn propagation_of_masked_flip() {
        let g = golden(100.0); // runs all 6 iterations, acc = 21
                               // flip mantissa bit 10 of site 0 (acc = 1.0): a 2^-42 error, small
                               // but well above the ulp of every later sum (max 21, ulp 2^-48),
                               // so it propagates additively and exactly through every later sum
        let f = FaultSpec { site: 0, bit: 10 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::Full);
        let out = capped_sum(&mut t, 100.0);
        let r = t.finish(out);
        let p = propagation(&g, &r);
        assert!(!p.diverged);
        assert_eq!(p.injected_at, 0);
        assert_eq!(p.compare_len, 6);
        let inj = r.injected_err.unwrap();
        assert!(inj > 0.0);
        // additive propagation: every subsequent site carries exactly the
        // injected perturbation
        for (_, e) in p.iter() {
            assert!((e - inj).abs() < 1e-15, "e={e} inj={inj}");
        }
    }

    #[test]
    fn error_at_respects_window() {
        let g = golden(100.0);
        let f = FaultSpec { site: 2, bit: 1 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::Full);
        let out = capped_sum(&mut t, 100.0);
        let p = propagation(&g, &t.finish(out));
        assert_eq!(p.error_at(0), Some(0.0));
        assert_eq!(p.error_at(1), Some(0.0));
        assert!(p.error_at(2).unwrap() > 0.0);
        assert_eq!(p.error_at(6), None);
    }

    #[test]
    fn control_flow_divergence_truncates_window() {
        // golden exits when acc > 10 (after i=5, acc=15, 5 sites).
        let g = golden(10.0);
        assert_eq!(g.n_dynamic, 5);
        // flipping the sign of site 3 (acc=10 -> -10) delays the exit:
        // faulty run keeps iterating, so branch streams diverge at the
        // event following site 3.
        let f = FaultSpec { site: 3, bit: 63 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::Full);
        let out = capped_sum(&mut t, 10.0);
        let r = t.finish(out);
        let p = propagation(&g, &r);
        assert!(p.diverged);
        // comparable only through the site whose branch outcome changed
        assert!(p.compare_len <= 5);
        assert!(p.compare_len >= 4);
    }

    #[test]
    fn divergence_by_length_difference() {
        let a = vec![(1u64 << 1) | 1, (2 << 1) | 1];
        let b = vec![(1u64 << 1) | 1, (2 << 1) | 1, 3 << 1];
        assert_eq!(divergence_cursor(&a, &b), Some(3));
        assert_eq!(divergence_cursor(&b, &a), Some(3));
    }

    #[test]
    fn divergence_takes_earlier_cursor() {
        let a = vec![(5u64 << 1) | 1];
        let b = vec![(3u64 << 1) | 1];
        assert_eq!(divergence_cursor(&a, &b), Some(3));
    }

    #[test]
    fn nonfinite_corruption_is_infinite_error() {
        let g = golden(100.0);
        // setting bit 62 of site 0's value 1.0 yields +Inf; every later
        // sum is then non-finite, so all window errors are infinite
        let f = FaultSpec { site: 0, bit: 62 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::Full);
        let out = capped_sum(&mut t, 100.0);
        let r = t.finish(out);
        assert_eq!(r.first_nonfinite, Some(0));
        let p = propagation(&g, &r);
        for (_, e) in p.iter() {
            assert!(e.is_infinite());
        }
    }

    #[test]
    fn touched_counts_significant_sites() {
        let g = golden(100.0);
        let f = FaultSpec { site: 0, bit: 10 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::Full);
        let out = capped_sum(&mut t, 100.0);
        let p = propagation(&g, &t.finish(out));
        assert_eq!(p.touched(0.0), 6);
        assert_eq!(p.touched(f64::INFINITY), 0);
    }

    #[test]
    #[should_panic]
    fn propagation_requires_full_record() {
        let g = golden(100.0);
        let f = FaultSpec { site: 0, bit: 2 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::OutputOnly);
        let out = capped_sum(&mut t, 100.0);
        let _ = propagation(&g, &t.finish(out));
    }
}
