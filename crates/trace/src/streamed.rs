//! One-sided streaming propagation extraction.
//!
//! The paper's §5 prices its approach at `8 bytes × dynamic instructions`
//! of golden state per *extraction*, and the lockstep alternative
//! ([`crate::tracer::Tracer::streaming`] + `ftb_inject::lockstep`) trades
//! that for a duplicated golden computation per experiment. This module is
//! the third point in the design space: the golden trace is recorded
//! **once** into a shared, read-only
//! [`CompactGolden`](crate::compact::CompactGolden), and every faulty
//! execution compares its value and branch streams against it *while it
//! runs* — no second golden thread, no channels, and no per-experiment
//! full-trace buffer. The only per-experiment state is a
//! [`CompareScratch`] of nonzero `(site, Δx)` pairs, which a campaign
//! worker reuses across experiments.
//!
//! Semantics are bit-identical to the buffered
//! [`propagation`](crate::compare::propagation) extractor: the comparable
//! window ends at the first control-flow divergence (branch-stream
//! mismatch, or a length difference between the streams), NaN differences
//! are treated as unbounded perturbations, and sites before the fault are
//! exactly zero (the executions are identical up to the flip, so they are
//! skipped rather than compared).

use crate::compare::Propagation;

/// Reusable per-worker accumulator for a streamed comparison: the nonzero
/// `(site, Δx)` pairs of one faulty execution, in cursor order.
///
/// Built once per campaign worker and handed to
/// [`Tracer::comparing`](crate::tracer::Tracer::comparing) for each
/// experiment; the backing allocation is retained between experiments, so
/// a steady-state campaign performs no per-experiment heap traffic.
#[derive(Debug, Default)]
pub struct CompareScratch {
    pub(crate) deltas: Vec<(usize, f64)>,
}

impl CompareScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop any previous experiment's contents (capacity is kept).
    pub(crate) fn clear(&mut self) {
        self.deltas.clear();
    }

    /// The recorded nonzero `(site, Δx)` pairs, cursor-ordered. Valid
    /// after [`Tracer::finish_compare`](crate::tracer::Tracer::finish_compare)
    /// has sealed the window; entries outside the comparable window have
    /// been truncated away.
    pub fn deltas(&self) -> &[(usize, f64)] {
        &self.deltas
    }

    /// Truncate to the comparable window and summarise. Entries are
    /// cursor-ordered, so the cut point is a partition point.
    pub(crate) fn seal(&mut self, compare_len: usize, diverged: bool) -> StreamedWindow {
        let keep = self.deltas.partition_point(|&(site, _)| site < compare_len);
        self.deltas.truncate(keep);
        let max_err = self.deltas.iter().fold(0.0f64, |m, &(_, d)| m.max(d));
        StreamedWindow {
            compare_len,
            diverged,
            max_err,
        }
    }
}

/// Summary of one streamed comparison window (the streamed analogue of
/// the header fields of a [`Propagation`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamedWindow {
    /// Dynamic instructions `0 .. compare_len` were comparable.
    pub compare_len: usize,
    /// Whether control flow diverged from the golden run.
    pub diverged: bool,
    /// Largest perturbation inside the window (`0.0` if none).
    pub max_err: f64,
}

/// Rebuild the dense [`Propagation`] record from a sealed streamed
/// comparison — bit-identical to what the buffered extractor
/// [`propagation`](crate::compare::propagation) produces for the same
/// `(kernel, fault)` pair.
pub fn streamed_propagation(
    fault_site: usize,
    window: StreamedWindow,
    scratch: &CompareScratch,
) -> Propagation {
    let injected_at = fault_site.min(window.compare_len);
    let mut errors = vec![0.0; window.compare_len - injected_at];
    for &(site, d) in scratch.deltas() {
        errors[site - injected_at] = d;
    }
    Propagation {
        injected_at,
        compare_len: window.compare_len,
        errors,
        diverged: window.diverged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::Precision;
    use crate::compact::CompactGolden;
    use crate::compare::propagation;
    use crate::site::StaticId;
    use crate::tracer::{FaultSpec, RecordMode, Tracer};

    const SID: StaticId = StaticId(0);

    /// Kernel: running sum with a data-dependent early exit (so faults can
    /// change the branch stream).
    fn capped_sum(t: &mut Tracer, cap: f64) -> Vec<f64> {
        let mut acc = 0.0;
        for i in 1..=6 {
            acc = t.value(SID, acc + i as f64);
            if t.branch(acc > cap) {
                break;
            }
        }
        vec![acc]
    }

    fn compact(cap: f64) -> CompactGolden {
        let mut t = Tracer::golden(Precision::F64);
        let out = capped_sum(&mut t, cap);
        CompactGolden::from_golden(&t.finish_golden(out))
    }

    fn both_paths(cap: f64, fault: FaultSpec) -> (Propagation, Propagation) {
        let golden = compact(cap);
        let full = golden.to_golden();

        let mut t = Tracer::inject(Precision::F64, fault, RecordMode::Full);
        let out = capped_sum(&mut t, cap);
        let buffered = propagation(&full, &t.finish(out));

        let mut scratch = CompareScratch::new();
        let mut t = Tracer::comparing(fault, &golden, &mut scratch);
        let out = capped_sum(&mut t, cap);
        let (_, window) = t.finish_compare(out);
        let streamed = streamed_propagation(fault.site, window, &scratch);
        (buffered, streamed)
    }

    #[test]
    fn matches_buffered_without_divergence() {
        let (b, s) = both_paths(100.0, FaultSpec { site: 0, bit: 10 });
        assert_eq!(b, s);
        assert!(!s.diverged);
        assert_eq!(s.compare_len, 6);
    }

    #[test]
    fn matches_buffered_under_divergence() {
        // sign flip of site 3 delays the early exit: branch streams split
        let (b, s) = both_paths(10.0, FaultSpec { site: 3, bit: 63 });
        assert_eq!(b, s);
        assert!(s.diverged);
    }

    #[test]
    fn matches_buffered_for_unreached_site() {
        let (b, s) = both_paths(100.0, FaultSpec { site: 1000, bit: 1 });
        assert_eq!(b, s);
        assert!(s.errors.is_empty());
    }

    #[test]
    fn matches_buffered_for_nonfinite_corruption() {
        // bit 62 of 1.0 yields +Inf: every later delta is infinite
        let (b, s) = both_paths(100.0, FaultSpec { site: 0, bit: 62 });
        assert_eq!(b, s);
        assert!(s.errors.iter().all(|e| e.is_infinite()));
    }

    #[test]
    fn scratch_is_reusable_across_experiments() {
        let golden = compact(100.0);
        let mut scratch = CompareScratch::new();
        let mut last = None;
        for bit in [10u8, 62, 63] {
            let fault = FaultSpec { site: 1, bit };
            let mut t = Tracer::comparing(fault, &golden, &mut scratch);
            let out = capped_sum(&mut t, 100.0);
            let (_, window) = t.finish_compare(out);
            last = Some(streamed_propagation(fault.site, window, &scratch));
        }
        // the final reuse still matches a fresh buffered extraction
        let (b, _) = both_paths(100.0, FaultSpec { site: 1, bit: 63 });
        assert_eq!(last.unwrap(), b);
    }

    #[test]
    fn window_max_err_matches_propagation() {
        let golden = compact(100.0);
        let fault = FaultSpec { site: 2, bit: 30 };
        let mut scratch = CompareScratch::new();
        let mut t = Tracer::comparing(fault, &golden, &mut scratch);
        let out = capped_sum(&mut t, 100.0);
        let (_, window) = t.finish_compare(out);
        let expect = scratch.deltas().iter().fold(0.0f64, |m, &(_, d)| m.max(d));
        assert_eq!(window.max_err, expect);
        assert!(window.max_err > 0.0);
    }
}
