//! Compact golden-trace storage.
//!
//! The paper's §5: "we do need to store the dynamic state of the golden
//! run … that can result in substantial memory overhead for a
//! large-scale application." A [`GoldenRun`] costs ~12–14 bytes per
//! dynamic instruction (an `f64` value, a `u32` static id, amortised
//! branch events). [`CompactGolden`] shrinks that:
//!
//! * values of an [`Precision::F32`] kernel are stored as `f32`
//!   (lossless — the tracer already quantised every store);
//! * static ids use one byte when the kernel has ≤ 256 static
//!   instructions (every kernel in this workspace has < 20);
//! * branch events keep their `u64` encoding (they are rare relative to
//!   value stores).
//!
//! For the paper's f32 CG that is ~5 bytes/site instead of ~12 — and the
//! accessors are drop-in for the prediction path, which only ever needs
//! `value(site)` and `flip_errors(site)`.

use crate::bits::{injected_error, Precision};
use crate::golden::GoldenRun;
use crate::site::StaticId;
use serde::{Deserialize, Serialize};

/// Value storage of a compact trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Values {
    /// Lossless for `Precision::F32` kernels.
    F32(Vec<f32>),
    /// Full-width storage for `Precision::F64` kernels.
    F64(Vec<f64>),
}

/// Static-id storage of a compact trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Ids {
    /// One byte per site (≤ 256 static instructions).
    U8(Vec<u8>),
    /// Full-width ids.
    U32(Vec<u32>),
}

/// Borrowed view of a compact trace's value storage, width-resolved once
/// so per-value accesses are a single indexed load (plus a widening cast
/// for `f32` kernels).
#[derive(Debug, Clone, Copy)]
pub enum GoldenValues<'g> {
    /// Values of an `F32` kernel.
    F32(&'g [f32]),
    /// Values of an `F64` kernel.
    F64(&'g [f64]),
}

impl GoldenValues<'_> {
    /// Golden value of dynamic instruction `site`.
    #[inline(always)]
    pub fn get(&self, site: usize) -> f64 {
        match self {
            GoldenValues::F32(v) => f64::from(v[site]),
            GoldenValues::F64(v) => v[site],
        }
    }
}

/// A memory-compact, read-only form of a [`GoldenRun`], sufficient for
/// boundary prediction (golden values + flip errors + static ids).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompactGolden {
    precision: Precision,
    values: Values,
    ids: Ids,
    branches: Vec<u64>,
    output: Vec<f64>,
}

impl CompactGolden {
    /// Compact a recorded golden run. Lossless: expanding back yields a
    /// bit-identical [`GoldenRun`].
    pub fn from_golden(golden: &GoldenRun) -> Self {
        let values = match golden.precision {
            // every value was already quantised by the tracer, so the
            // narrowing cast is exact
            Precision::F32 => Values::F32(golden.values.iter().map(|&v| v as f32).collect()),
            Precision::F64 => Values::F64(golden.values.clone()),
        };
        let max_id = golden.static_ids.iter().copied().max().unwrap_or(0);
        let ids = if max_id < 256 {
            Ids::U8(golden.static_ids.iter().map(|&i| i as u8).collect())
        } else {
            Ids::U32(golden.static_ids.clone())
        };
        CompactGolden {
            precision: golden.precision,
            values,
            ids,
            branches: golden.branches.clone(),
            output: golden.output.clone(),
        }
    }

    /// Number of fault-injection sites.
    pub fn n_sites(&self) -> usize {
        match &self.values {
            Values::F32(v) => v.len(),
            Values::F64(v) => v.len(),
        }
    }

    /// Golden value of dynamic instruction `site` (exactly the value the
    /// original run recorded).
    #[inline]
    pub fn value(&self, site: usize) -> f64 {
        match &self.values {
            Values::F32(v) => f64::from(v[site]),
            Values::F64(v) => v[site],
        }
    }

    /// Direct view of the value storage, for hot loops that cannot afford
    /// a per-access indirection through `self` (the streamed comparator).
    #[inline]
    pub fn values_view(&self) -> GoldenValues<'_> {
        match &self.values {
            Values::F32(v) => GoldenValues::F32(v),
            Values::F64(v) => GoldenValues::F64(v),
        }
    }

    /// Direct view of the branch-event stream.
    #[inline]
    pub fn branches_view(&self) -> &[u64] {
        &self.branches
    }

    /// Static id of dynamic instruction `site`.
    #[inline]
    pub fn static_id(&self, site: usize) -> StaticId {
        match &self.ids {
            Ids::U8(v) => StaticId(u32::from(v[site])),
            Ids::U32(v) => StaticId(v[site]),
        }
    }

    /// Element precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of recorded branch events.
    #[inline]
    pub fn n_branches(&self) -> usize {
        self.branches.len()
    }

    /// Branch event `idx` in the golden encoding `(cursor << 1) | taken`,
    /// or `None` past the end of the stream. The streamed comparator walks
    /// these in order while a faulty run executes.
    #[inline]
    pub fn branch(&self, idx: usize) -> Option<u64> {
        self.branches.get(idx).copied()
    }

    /// Program output of the golden run.
    pub fn output(&self) -> &[f64] {
        &self.output
    }

    /// The injected-error magnitude of every possible flip at `site`
    /// (the prediction primitive).
    pub fn flip_errors(&self, site: usize) -> Vec<f64> {
        let v = self.value(site);
        (0..self.precision.bits())
            .map(|b| injected_error(self.precision, v, b))
            .collect()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let values = match &self.values {
            Values::F32(v) => v.len() * 4,
            Values::F64(v) => v.len() * 8,
        };
        let ids = match &self.ids {
            Ids::U8(v) => v.len(),
            Ids::U32(v) => v.len() * 4,
        };
        values + ids + self.branches.len() * 8 + self.output.len() * 8
    }

    /// Expand back to a full [`GoldenRun`] (bit-identical to the source).
    pub fn to_golden(&self) -> GoldenRun {
        let values: Vec<f64> = (0..self.n_sites()).map(|s| self.value(s)).collect();
        let static_ids: Vec<u32> = (0..self.n_sites()).map(|s| self.static_id(s).0).collect();
        GoldenRun {
            precision: self.precision,
            n_dynamic: values.len(),
            values,
            static_ids,
            branches: self.branches.clone(),
            output: self.output.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn golden_f32() -> GoldenRun {
        let mut t = Tracer::golden(Precision::F32);
        for i in 0..100 {
            t.value(StaticId(i % 7), (i as f64) * 0.37 - 5.0);
        }
        t.branch(true);
        t.finish_golden(vec![1.0, 2.0])
    }

    fn golden_f64() -> GoldenRun {
        let mut t = Tracer::golden(Precision::F64);
        for i in 0..100 {
            t.value(StaticId(i % 7), (i as f64) * 0.37 - 5.0);
        }
        t.finish_golden(vec![1.0])
    }

    #[test]
    fn f32_roundtrip_is_bit_identical() {
        let g = golden_f32();
        let c = CompactGolden::from_golden(&g);
        assert_eq!(c.to_golden(), g);
        for site in 0..g.n_sites() {
            assert_eq!(c.value(site).to_bits(), g.values[site].to_bits());
            assert_eq!(c.static_id(site), g.static_id(site));
            assert_eq!(c.flip_errors(site), g.flip_errors(site));
        }
    }

    #[test]
    fn f64_roundtrip_is_bit_identical() {
        let g = golden_f64();
        let c = CompactGolden::from_golden(&g);
        assert_eq!(c.to_golden(), g);
    }

    #[test]
    fn f32_compaction_saves_memory() {
        let g = golden_f32();
        let c = CompactGolden::from_golden(&g);
        // 8B value + 4B id = 12B/site down to 4B + 1B = 5B/site
        assert!(
            (c.memory_bytes() as f64) < 0.5 * g.memory_bytes() as f64,
            "compact {} vs full {}",
            c.memory_bytes(),
            g.memory_bytes()
        );
    }

    #[test]
    fn f64_compaction_still_shrinks_ids() {
        let g = golden_f64();
        let c = CompactGolden::from_golden(&g);
        assert!(c.memory_bytes() < g.memory_bytes());
    }

    #[test]
    fn wide_static_ids_fall_back_to_u32() {
        let mut t = Tracer::golden(Precision::F64);
        t.value(StaticId(0), 1.0);
        t.value(StaticId(300), 2.0);
        let g = t.finish_golden(vec![]);
        let c = CompactGolden::from_golden(&g);
        assert_eq!(c.static_id(1), StaticId(300));
        assert_eq!(c.to_golden(), g);
    }
}
