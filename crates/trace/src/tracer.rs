//! The instrumentation handle kernels execute against.
//!
//! A kernel is written once against [`Tracer`] and then driven in three
//! modes by the rest of the library:
//!
//! * **Golden recording** ([`Tracer::golden`]) — the fault-free run whose
//!   full value stream and branch stream become the reference
//!   ([`GoldenRun`]). The paper's §5 "Overhead" discussion notes this is
//!   the memory cost of the whole approach: one `f64` per dynamic
//!   instruction.
//! * **Fault injection, full trace** ([`Tracer::inject`] with
//!   [`RecordMode::Full`]) — used for *masked* experiments whose
//!   propagation data feeds Algorithm 1.
//! * **Fault injection, outcome only** ([`RecordMode::OutputOnly`]) — used
//!   for campaign classification where only the final output matters;
//!   nothing is buffered, keeping exhaustive campaigns cheap.

use crate::bits::Precision;
use crate::golden::{GoldenRun, RunTrace};
use crate::site::StaticId;
use crossbeam::channel::Sender;
use serde::{Deserialize, Serialize};

/// One event of a streamed execution (see [`Tracer::streaming`]):
/// the produced value of a dynamic instruction, or a branch outcome in
/// the golden encoding `(cursor << 1) | taken`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamEvent {
    /// A dynamic instruction produced this value.
    Value(f64),
    /// A branch event, encoded `(cursor << 1) | taken`.
    Branch(u64),
}

/// A single-bit-flip fault: flip bit `bit` of the value produced by
/// dynamic instruction `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Dynamic-instruction index (position in the golden value stream).
    pub site: usize,
    /// Bit to flip, `0 ..< precision.bits()`.
    pub bit: u8,
}

/// How much of a fault-injected run to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordMode {
    /// Record the value stream and branch stream (needed to extract
    /// propagation data for Algorithm 1).
    Full,
    /// Record nothing; only the returned output, dynamic-instruction count
    /// and non-finite trap survive. The fast path for exhaustive
    /// ground-truth campaigns.
    OutputOnly,
}

/// Instrumentation handle. See the module docs for the three modes.
#[derive(Debug)]
pub struct Tracer {
    precision: Precision,
    /// `usize::MAX` = no fault; avoids an `Option` discriminant test in
    /// the hot path.
    fault_site: usize,
    fault_bit: u8,
    record_values: bool,
    record_ids: bool,
    record_branches: bool,
    trap_nonfinite: bool,
    cursor: usize,
    branch_count: usize,
    values: Vec<f64>,
    static_ids: Vec<u32>,
    branches: Vec<u64>,
    first_nonfinite: Option<usize>,
    injected_err: Option<f64>,
    /// Streaming sink (lockstep propagation extraction); when the
    /// receiver hangs up, streaming silently stops and the run completes.
    stream: Option<Sender<StreamEvent>>,
}

impl Tracer {
    fn with_flags(
        precision: Precision,
        fault: Option<FaultSpec>,
        record_values: bool,
        record_ids: bool,
        record_branches: bool,
    ) -> Self {
        Tracer {
            precision,
            fault_site: fault.map_or(usize::MAX, |f| f.site),
            fault_bit: fault.map_or(0, |f| f.bit),
            record_values,
            record_ids,
            record_branches,
            trap_nonfinite: true,
            cursor: 0,
            branch_count: 0,
            values: Vec::new(),
            static_ids: Vec::new(),
            branches: Vec::new(),
            first_nonfinite: None,
            injected_err: None,
            stream: None,
        }
    }

    /// A golden (fault-free) recording tracer: values, static ids and
    /// branches are all captured.
    pub fn golden(precision: Precision) -> Self {
        Self::with_flags(precision, None, true, true, true)
    }

    /// A fault-injecting tracer.
    ///
    /// # Panics
    /// Panics if `fault.bit` is out of range for `precision`.
    pub fn inject(precision: Precision, fault: FaultSpec, record: RecordMode) -> Self {
        assert!(
            fault.bit < precision.bits(),
            "bit {} out of range for {:?}",
            fault.bit,
            precision
        );
        let full = record == RecordMode::Full;
        Self::with_flags(precision, Some(fault), full, false, full)
    }

    /// An untraced, fault-free tracer (used to measure raw kernel cost and
    /// instrumentation overhead in the benches).
    pub fn untraced(precision: Precision) -> Self {
        Self::with_flags(precision, None, false, false, false)
    }

    /// A *streaming* tracer: every produced value and branch event is
    /// sent into `sink` instead of being buffered — the substrate for the
    /// memory-bounded lockstep propagation extraction of `ftb-inject`
    /// (the paper's §5 "computation duplication" direction). Nothing is
    /// recorded locally; if the receiving side disconnects, streaming
    /// stops and the run completes normally.
    ///
    /// # Panics
    /// Panics if a fault is supplied whose bit is out of range.
    pub fn streaming(
        precision: Precision,
        fault: Option<FaultSpec>,
        sink: Sender<StreamEvent>,
    ) -> Self {
        if let Some(f) = fault {
            assert!(
                f.bit < precision.bits(),
                "bit {} out of range for {:?}",
                f.bit,
                precision
            );
        }
        let mut t = Self::with_flags(precision, fault, false, false, false);
        t.stream = Some(sink);
        t
    }

    /// Reserve capacity for an expected number of dynamic instructions
    /// (avoids `Vec` growth reallocations in recording runs).
    pub fn reserve(&mut self, n_sites: usize, n_branches: usize) {
        if self.record_values {
            self.values.reserve_exact(n_sites);
        }
        if self.record_ids {
            self.static_ids.reserve_exact(n_sites);
        }
        if self.record_branches {
            self.branches.reserve_exact(n_branches);
        }
    }

    /// Register the production of one floating-point data element — one
    /// *dynamic instruction*. Returns the value the kernel must continue
    /// with (possibly bit-flipped, always quantised to the tracer's
    /// precision).
    #[inline]
    pub fn value(&mut self, sid: StaticId, v: f64) -> f64 {
        let mut v = self.precision.quantize(v);
        let idx = self.cursor;
        self.cursor = idx + 1;
        if idx == self.fault_site {
            let orig = v;
            v = self.precision.flip(v, self.fault_bit);
            self.injected_err = Some(if v.is_finite() {
                (v - orig).abs()
            } else {
                f64::INFINITY
            });
        }
        if self.trap_nonfinite && !v.is_finite() && self.first_nonfinite.is_none() {
            self.first_nonfinite = Some(idx);
        }
        if self.record_values {
            self.values.push(v);
            if self.record_ids {
                self.static_ids.push(sid.0);
            }
        }
        if let Some(tx) = &self.stream {
            if tx.send(StreamEvent::Value(v)).is_err() {
                // receiver gone: stop streaming, keep computing
                self.stream = None;
            }
        }
        v
    }

    /// Register a data-dependent branch outcome. Returns `taken` so the
    /// call can wrap the condition inline:
    /// `while t.branch(residual > tol) { ... }`.
    #[inline]
    pub fn branch(&mut self, taken: bool) -> bool {
        self.branch_count += 1;
        let encoded = ((self.cursor as u64) << 1) | taken as u64;
        if self.record_branches {
            self.branches.push(encoded);
        }
        if let Some(tx) = &self.stream {
            if tx.send(StreamEvent::Branch(encoded)).is_err() {
                self.stream = None;
            }
        }
        taken
    }

    /// Number of branch events observed so far (counted in every mode,
    /// recorded only in `Full`/golden modes).
    #[inline]
    pub fn branch_count(&self) -> usize {
        self.branch_count
    }

    /// Number of dynamic instructions executed so far.
    #[inline]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Whether the non-finite trap has fired. Kernels with unbounded
    /// data-dependent loops may poll this to emulate the program dying at
    /// the exception rather than spinning (the outcome classification is
    /// identical either way).
    #[inline]
    pub fn trapped(&self) -> bool {
        self.first_nonfinite.is_some()
    }

    /// Dynamic index at which the first non-finite value appeared.
    pub fn first_nonfinite(&self) -> Option<usize> {
        self.first_nonfinite
    }

    /// The realised injected-error magnitude, once the fault site has
    /// executed (`None` before that, or if the site was never reached).
    pub fn realized_injected_error(&self) -> Option<f64> {
        self.injected_err
    }

    /// Consume the tracer, yielding the run record.
    pub fn finish(self, output: Vec<f64>) -> RunTrace {
        RunTrace {
            values: if self.record_values {
                Some(self.values)
            } else {
                None
            },
            branches: if self.record_branches {
                Some(self.branches)
            } else {
                None
            },
            output,
            n_dynamic: self.cursor,
            first_nonfinite: self.first_nonfinite,
            fault: if self.fault_site == usize::MAX {
                None
            } else {
                Some(FaultSpec {
                    site: self.fault_site,
                    bit: self.fault_bit,
                })
            },
            injected_err: self.injected_err,
        }
    }

    /// Consume a golden-mode tracer, yielding the reference run.
    ///
    /// # Panics
    /// Panics if the tracer was not constructed with [`Tracer::golden`]
    /// (a fault or missing recording would poison every later comparison).
    pub fn finish_golden(self, output: Vec<f64>) -> GoldenRun {
        assert!(
            self.fault_site == usize::MAX && self.record_values && self.record_ids,
            "finish_golden requires a Tracer::golden tracer"
        );
        assert!(
            self.first_nonfinite.is_none(),
            "golden run produced a non-finite value at dynamic instruction {:?}; \
             the kernel input is invalid as a reference",
            self.first_nonfinite
        );
        GoldenRun {
            precision: self.precision,
            values: self.values,
            static_ids: self.static_ids,
            branches: self.branches,
            output,
            n_dynamic: self.cursor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::StaticId;

    const SID: StaticId = StaticId(0);

    /// A toy "kernel": y = sum of squares of 1..=4, each square traced.
    fn toy(t: &mut Tracer) -> Vec<f64> {
        let mut acc = 0.0;
        for i in 1..=4 {
            let sq = t.value(SID, (i as f64) * (i as f64));
            acc = t.value(SID, acc + sq);
        }
        vec![acc]
    }

    #[test]
    fn golden_records_everything() {
        let mut t = Tracer::golden(Precision::F64);
        let out = toy(&mut t);
        let g = t.finish_golden(out);
        assert_eq!(g.n_dynamic, 8);
        assert_eq!(g.values.len(), 8);
        assert_eq!(g.static_ids.len(), 8);
        assert_eq!(g.output, vec![30.0]);
    }

    #[test]
    fn untraced_matches_golden_output() {
        let mut t = Tracer::untraced(Precision::F64);
        let out = toy(&mut t);
        let r = t.finish(out);
        assert_eq!(r.output, vec![30.0]);
        assert_eq!(r.n_dynamic, 8);
        assert!(r.values.is_none());
    }

    #[test]
    fn inject_flips_exactly_one_site() {
        // flip the sign bit of the value produced by dynamic instr 2 (the
        // square 4.0 -> -4.0), so acc becomes 1 - 4 + 9 + 16 = 22
        let f = FaultSpec { site: 2, bit: 63 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::OutputOnly);
        let out = toy(&mut t);
        let r = t.finish(out);
        assert_eq!(r.output, vec![22.0]);
        assert_eq!(r.injected_err, Some(8.0));
        assert_eq!(r.fault, Some(f));
    }

    #[test]
    fn inject_full_records_values() {
        let f = FaultSpec { site: 0, bit: 63 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::Full);
        let out = toy(&mut t);
        let r = t.finish(out);
        let vals = r.values.unwrap();
        assert_eq!(vals[0], -1.0);
        assert_eq!(vals.len(), 8);
    }

    #[test]
    fn fault_site_beyond_execution_is_benign() {
        let f = FaultSpec { site: 1000, bit: 1 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::OutputOnly);
        let out = toy(&mut t);
        let r = t.finish(out);
        assert_eq!(r.output, vec![30.0]);
        assert_eq!(r.injected_err, None);
    }

    #[test]
    fn nonfinite_trap_fires() {
        let mut t = Tracer::golden(Precision::F64);
        t.value(SID, 1.0);
        assert!(!t.trapped());
        t.value(SID, f64::NAN);
        assert!(t.trapped());
        assert_eq!(t.first_nonfinite(), Some(1));
    }

    #[test]
    fn branch_recording_encodes_cursor_and_taken() {
        let mut t = Tracer::golden(Precision::F64);
        t.value(SID, 1.0);
        assert!(t.branch(true));
        assert!(!t.branch(false));
        let g = t.finish_golden(vec![]);
        assert_eq!(g.branches, vec![(1 << 1) | 1, 1 << 1]);
    }

    #[test]
    fn f32_precision_quantizes_stream() {
        let mut t = Tracer::golden(Precision::F32);
        let v = t.value(SID, 0.1);
        assert_eq!(v, 0.1f32 as f64);
    }

    #[test]
    #[should_panic]
    fn finish_golden_rejects_injecting_tracer() {
        let t = Tracer::inject(
            Precision::F64,
            FaultSpec { site: 0, bit: 0 },
            RecordMode::Full,
        );
        let _ = t.finish_golden(vec![]);
    }

    #[test]
    #[should_panic]
    fn inject_rejects_out_of_range_bit() {
        let _ = Tracer::inject(
            Precision::F32,
            FaultSpec { site: 0, bit: 40 },
            RecordMode::Full,
        );
    }
}
