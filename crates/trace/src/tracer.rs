//! The instrumentation handle kernels execute against.
//!
//! A kernel is written once against [`Tracer`] and then driven in three
//! modes by the rest of the library:
//!
//! * **Golden recording** ([`Tracer::golden`]) — the fault-free run whose
//!   full value stream and branch stream become the reference
//!   ([`GoldenRun`]). The paper's §5 "Overhead" discussion notes this is
//!   the memory cost of the whole approach: one `f64` per dynamic
//!   instruction.
//! * **Fault injection, full trace** ([`Tracer::inject`] with
//!   [`RecordMode::Full`]) — used for *masked* experiments whose
//!   propagation data feeds Algorithm 1.
//! * **Fault injection, outcome only** ([`RecordMode::OutputOnly`]) — used
//!   for campaign classification where only the final output matters;
//!   nothing is buffered, keeping exhaustive campaigns cheap.
//! * **One-sided streamed comparison** ([`Tracer::comparing`]) — the run
//!   compares its value/branch streams against a shared read-only
//!   [`CompactGolden`] *while executing*, accumulating only the nonzero
//!   `(site, Δx)` pairs into a reusable [`CompareScratch`]. See
//!   [`crate::streamed`].

use crate::bits::Precision;
use crate::compact::{CompactGolden, GoldenValues};
use crate::ddg::{Ddg, DdgBuilder, OpKind};
use crate::golden::{GoldenRun, RunTrace};
use crate::site::StaticId;
use crate::streamed::{CompareScratch, StreamedWindow};
use crossbeam::channel::Sender;
use serde::{Deserialize, Serialize};

/// One event of a streamed execution (see [`Tracer::streaming`]):
/// the produced value of a dynamic instruction, or a branch outcome in
/// the golden encoding `(cursor << 1) | taken`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamEvent {
    /// A dynamic instruction produced this value.
    Value(f64),
    /// A branch event, encoded `(cursor << 1) | taken`.
    Branch(u64),
}

/// A single-bit-flip fault: flip bit `bit` of the value produced by
/// dynamic instruction `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Dynamic-instruction index (position in the golden value stream).
    pub site: usize,
    /// Bit to flip, `0 ..< precision.bits()`.
    pub bit: u8,
}

/// How much of a fault-injected run to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordMode {
    /// Record the value stream and branch stream (needed to extract
    /// propagation data for Algorithm 1).
    Full,
    /// Record nothing; only the returned output, dynamic-instruction count
    /// and non-finite trap survive. The fast path for exhaustive
    /// ground-truth campaigns.
    OutputOnly,
}

/// Values a comparing-mode tracer batches up before comparing them
/// against the golden buffer in one contiguous pass. A cache-line-scale
/// block keeps the per-experiment state O(1) while letting the compare
/// loop run over two flat slices — with hardware prefetch and overlapped
/// loads — instead of issuing one dependent golden load per traced value.
const COMPARE_BLOCK: usize = 64;

/// Live state of a one-sided streamed comparison ([`Tracer::comparing`]).
/// Value and branch storage are resolved to raw slices up front so the
/// per-value hot path is a single indexed load, not a walk through
/// [`CompactGolden`]'s representation enums.
struct CompareState<'g> {
    gvalues: GoldenValues<'g>,
    gbranches: &'g [u64],
    scratch: &'g mut CompareScratch,
    /// Index of the next golden branch event to match.
    branch_idx: usize,
    /// Cursor of the first control-flow divergence, once detected.
    div_cursor: Option<usize>,
    /// Sites at or beyond this cursor are outside the comparable window.
    limit: usize,
    /// Cursor of `block[0]` (meaningful while `block_len > 0`).
    block_start: usize,
    /// Number of pending values in `block`.
    block_len: usize,
    /// Pending faulty values awaiting a batched compare.
    block: [f64; COMPARE_BLOCK],
    /// Where each flushed block's nonzero deltas go.
    route: DeltaRoute<'g>,
    /// Largest in-window delta seen by an online route (`Sink` or
    /// `SummaryOnly`); the scratch route computes it in `seal` instead.
    online_max: f64,
}

/// An online fold receiving each flushed block's nonzero `(site, Δx)`
/// pairs; see [`Tracer::with_delta_sink`].
pub type DeltaSink<'g> = &'g mut dyn FnMut(&[(usize, f64)]);

/// Destination of the nonzero deltas a compare block produces.
///
/// The online routes (`Sink`, `SummaryOnly`) retain nothing per
/// experiment and are only sound against a branch-free golden trace;
/// see [`Tracer::with_delta_sink`] for the argument.
enum DeltaRoute<'g> {
    /// Retain `(site, Δx)` pairs in the scratch, sealed post-hoc against
    /// the final comparable window. The general (branch-capable) path.
    Scratch,
    /// Hand each flushed block's nonzero deltas to an online fold — one
    /// indirect call per *block*, not per delta.
    Sink(DeltaSink<'g>),
    /// Fold only the window summary (`max_err`): no deltas are
    /// materialised or emitted at all. The exhaustive-campaign hot path,
    /// where only the outcome and summary are consumed.
    SummaryOnly,
}

impl std::fmt::Debug for CompareState<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompareState")
            .field("branch_idx", &self.branch_idx)
            .field("div_cursor", &self.div_cursor)
            .field("limit", &self.limit)
            .field("online", &!matches!(self.route, DeltaRoute::Scratch))
            .finish_non_exhaustive()
    }
}

impl CompareState<'_> {
    /// Compare the pending block against the golden buffer and push the
    /// nonzero deltas. The window `limit` is re-applied here because a
    /// divergence may have shrunk it after some of these values were
    /// buffered; entries at or past the limit are outside the comparable
    /// window and dropped, exactly as the buffered extractor would.
    fn flush(&mut self) {
        let len = self.block_len;
        self.block_len = 0;
        let start = self.block_start;
        let end = (start + len).min(self.limit);
        if end <= start {
            return;
        }
        let faulty = &self.block[..end - start];
        match &mut self.route {
            DeltaRoute::Scratch => {
                let deltas = &mut self.scratch.deltas;
                let mut emit = |s: usize, d: f64| deltas.push((s, d));
                match self.gvalues {
                    GoldenValues::F64(g) => {
                        push_deltas_f64(&mut emit, start, &g[start..end], faulty)
                    }
                    GoldenValues::F32(g) => {
                        push_deltas_f32(&mut emit, start, &g[start..end], faulty)
                    }
                }
            }
            DeltaRoute::Sink(sink) => {
                // stage the block's deltas on the stack so the fold costs
                // one indirect call per block, not one per delta
                let mut staged = [(0usize, 0.0f64); COMPARE_BLOCK];
                let mut n = 0usize;
                let mut max = self.online_max;
                {
                    let mut emit = |s: usize, d: f64| {
                        max = max.max(d);
                        staged[n] = (s, d);
                        n += 1;
                    };
                    match self.gvalues {
                        GoldenValues::F64(g) => {
                            push_deltas_f64(&mut emit, start, &g[start..end], faulty)
                        }
                        GoldenValues::F32(g) => {
                            push_deltas_f32(&mut emit, start, &g[start..end], faulty)
                        }
                    }
                }
                if n > 0 {
                    sink(&staged[..n]);
                }
                self.online_max = max;
            }
            DeltaRoute::SummaryOnly => {
                let block_max = match self.gvalues {
                    GoldenValues::F64(g) => block_max_f64(&g[start..end], faulty),
                    GoldenValues::F32(g) => block_max_f32(&g[start..end], faulty),
                };
                self.online_max = self.online_max.max(block_max);
            }
        }
    }
}

/// Largest `|g − f|` over one compare block, with any NaN difference
/// (corruption) mapped to `+∞` — exactly the maximum the scalar delta
/// pass would have emitted. Branch-free so the common all-identical
/// block reduces to a vectorisable scan.
fn block_max_f64(golden: &[f64], faulty: &[f64]) -> f64 {
    let mut max = 0.0f64;
    let mut any_nan = false;
    for (&g, &f) in golden.iter().zip(faulty) {
        let d = (g - f).abs();
        any_nan |= d.is_nan();
        // f64::max drops the NaN operand, so `max` stays finite here
        max = max.max(d);
    }
    if any_nan {
        f64::INFINITY
    } else {
        max
    }
}

/// `f32`-golden variant of [`block_max_f64`].
fn block_max_f32(golden: &[f32], faulty: &[f64]) -> f64 {
    let mut max = 0.0f64;
    let mut any_nan = false;
    for (&g, &f) in golden.iter().zip(faulty) {
        let d = (f64::from(g) - f).abs();
        any_nan |= d.is_nan();
        max = max.max(d);
    }
    if any_nan {
        f64::INFINITY
    } else {
        max
    }
}

/// Batched delta extraction: a vectorisable any-difference scan first, so
/// the common all-identical block (masked faults, decayed perturbations)
/// never enters the scalar push loop.
fn push_deltas_f64(
    emit: &mut impl FnMut(usize, f64),
    start: usize,
    golden: &[f64],
    faulty: &[f64],
) {
    let mut any = false;
    for (&g, &f) in golden.iter().zip(faulty) {
        // NaN compares unequal to everything, so corruption lands in the
        // scalar pass below
        any |= (g - f).abs() != 0.0;
    }
    if !any {
        return;
    }
    for (i, (&g, &f)) in golden.iter().zip(faulty).enumerate() {
        let d = (g - f).abs();
        if d > 0.0 {
            emit(start + i, d);
        } else if d.is_nan() {
            emit(start + i, f64::INFINITY);
        }
    }
}

/// `f32`-golden variant of [`push_deltas_f64`] (values widen losslessly;
/// the faulty stream was quantised by the tracer before buffering).
fn push_deltas_f32(
    emit: &mut impl FnMut(usize, f64),
    start: usize,
    golden: &[f32],
    faulty: &[f64],
) {
    let mut any = false;
    for (&g, &f) in golden.iter().zip(faulty) {
        any |= (f64::from(g) - f).abs() != 0.0;
    }
    if !any {
        return;
    }
    for (i, (&g, &f)) in golden.iter().zip(faulty).enumerate() {
        let d = (f64::from(g) - f).abs();
        if d > 0.0 {
            emit(start + i, d);
        } else if d.is_nan() {
            emit(start + i, f64::INFINITY);
        }
    }
}

/// Instrumentation handle. See the module docs for the modes. The
/// lifetime ties a comparing-mode tracer to the golden buffer and scratch
/// it borrows; all other modes are `Tracer<'static>`-compatible and
/// kernels stay generic over it via elision.
#[derive(Debug)]
pub struct Tracer<'g> {
    precision: Precision,
    /// `usize::MAX` = no fault; avoids an `Option` discriminant test in
    /// the hot path.
    fault_site: usize,
    fault_bit: u8,
    record_values: bool,
    record_ids: bool,
    record_branches: bool,
    trap_nonfinite: bool,
    cursor: usize,
    branch_count: usize,
    values: Vec<f64>,
    static_ids: Vec<u32>,
    branches: Vec<u64>,
    first_nonfinite: Option<usize>,
    injected_err: Option<f64>,
    /// Streaming sink (lockstep propagation extraction); when the
    /// receiver hangs up, streaming silently stops and the run completes.
    stream: Option<Sender<StreamEvent>>,
    /// One-sided comparison state ([`Tracer::comparing`]).
    compare: Option<CompareState<'g>>,
    /// Operand-provenance recorder ([`Tracer::with_ddg`]); golden mode
    /// only, `None` in every hot injection path.
    ddg: Option<Box<DdgBuilder>>,
}

impl<'g> Tracer<'g> {
    fn with_flags(
        precision: Precision,
        fault: Option<FaultSpec>,
        record_values: bool,
        record_ids: bool,
        record_branches: bool,
    ) -> Self {
        Tracer {
            precision,
            fault_site: fault.map_or(usize::MAX, |f| f.site),
            fault_bit: fault.map_or(0, |f| f.bit),
            record_values,
            record_ids,
            record_branches,
            trap_nonfinite: true,
            cursor: 0,
            branch_count: 0,
            values: Vec::new(),
            static_ids: Vec::new(),
            branches: Vec::new(),
            first_nonfinite: None,
            injected_err: None,
            stream: None,
            compare: None,
            ddg: None,
        }
    }

    /// A golden (fault-free) recording tracer: values, static ids and
    /// branches are all captured.
    pub fn golden(precision: Precision) -> Self {
        Self::with_flags(precision, None, true, true, true)
    }

    /// A fault-injecting tracer.
    ///
    /// # Panics
    /// Panics if `fault.bit` is out of range for `precision`.
    pub fn inject(precision: Precision, fault: FaultSpec, record: RecordMode) -> Self {
        assert!(
            fault.bit < precision.bits(),
            "bit {} out of range for {:?}",
            fault.bit,
            precision
        );
        let full = record == RecordMode::Full;
        Self::with_flags(precision, Some(fault), full, false, full)
    }

    /// An untraced, fault-free tracer (used to measure raw kernel cost and
    /// instrumentation overhead in the benches).
    pub fn untraced(precision: Precision) -> Self {
        Self::with_flags(precision, None, false, false, false)
    }

    /// A *streaming* tracer: every produced value and branch event is
    /// sent into `sink` instead of being buffered — the substrate for the
    /// memory-bounded lockstep propagation extraction of `ftb-inject`
    /// (the paper's §5 "computation duplication" direction). Nothing is
    /// recorded locally; if the receiving side disconnects, streaming
    /// stops and the run completes normally.
    ///
    /// # Panics
    /// Panics if a fault is supplied whose bit is out of range.
    pub fn streaming(
        precision: Precision,
        fault: Option<FaultSpec>,
        sink: Sender<StreamEvent>,
    ) -> Self {
        if let Some(f) = fault {
            assert!(
                f.bit < precision.bits(),
                "bit {} out of range for {:?}",
                f.bit,
                precision
            );
        }
        let mut t = Self::with_flags(precision, fault, false, false, false);
        t.stream = Some(sink);
        t
    }

    /// A *comparing* tracer: the one-sided streaming extraction fast path.
    /// The faulty run compares every produced value and branch event
    /// against the shared read-only `golden` buffer as it executes,
    /// pushing only nonzero `(site, Δx)` pairs into `scratch` (cleared
    /// here, so workers reuse one scratch across experiments). Nothing
    /// else is buffered and no second thread exists. Finish with
    /// [`Tracer::finish_compare`].
    ///
    /// The tracer's precision is taken from `golden` — the comparison is
    /// only meaningful against the same kernel that recorded it.
    ///
    /// # Panics
    /// Panics if `fault.bit` is out of range for the golden precision.
    pub fn comparing(
        fault: FaultSpec,
        golden: &'g CompactGolden,
        scratch: &'g mut CompareScratch,
    ) -> Self {
        let precision = golden.precision();
        assert!(
            fault.bit < precision.bits(),
            "bit {} out of range for {:?}",
            fault.bit,
            precision
        );
        scratch.clear();
        let mut t = Self::with_flags(precision, Some(fault), false, false, false);
        t.compare = Some(CompareState {
            limit: golden.n_sites(),
            gvalues: golden.values_view(),
            gbranches: golden.branches_view(),
            scratch,
            branch_idx: 0,
            div_cursor: None,
            block_start: 0,
            block_len: 0,
            block: [0.0; COMPARE_BLOCK],
            route: DeltaRoute::Scratch,
            online_max: 0.0,
        });
        t
    }

    /// Upgrade a comparing-mode tracer to *online-fold* mode: each
    /// compare block's nonzero `(site, Δx)` pairs are handed to `sink` as
    /// the block flushes (one call per block, cursor-ordered), and
    /// nothing is retained in the scratch — the per-experiment state
    /// becomes O(1) even when the perturbation touches every site.
    ///
    /// Only sound when the golden trace has **no branch events**: a
    /// retained delta can be invalidated later only by a control-flow
    /// divergence whose cursor falls below the delta's site, and with an
    /// empty golden branch stream the only possible divergence cursor is
    /// the faulty run's own cursor at its first branch event — strictly
    /// past every site already compared. Every delta emitted here is
    /// therefore final and inside the sealed window, in the same cursor
    /// order the scratch would have recorded.
    ///
    /// # Panics
    /// Panics if the tracer is not in comparing mode, or if the golden
    /// trace has branch events.
    pub fn with_delta_sink(mut self, sink: DeltaSink<'g>) -> Self {
        let cs = self
            .compare
            .as_mut()
            .expect("with_delta_sink requires a Tracer::comparing tracer");
        assert!(
            cs.gbranches.is_empty(),
            "online delta folding requires a branch-free golden trace"
        );
        cs.route = DeltaRoute::Sink(sink);
        self
    }

    /// Upgrade a comparing-mode tracer to *summary-only* mode: the
    /// comparison still runs over every in-window site, but individual
    /// deltas are neither retained nor emitted — only the window summary
    /// ([`StreamedWindow`]) survives. This is the exhaustive-campaign hot
    /// path, where the caller consumes the outcome and summary and would
    /// have discarded every delta anyway; skipping the per-delta
    /// materialisation keeps the flush loop a pure vectorisable scan.
    ///
    /// Same soundness precondition as [`Tracer::with_delta_sink`].
    ///
    /// # Panics
    /// Panics if the tracer is not in comparing mode, or if the golden
    /// trace has branch events.
    pub fn summary_only(mut self) -> Self {
        let cs = self
            .compare
            .as_mut()
            .expect("summary_only requires a Tracer::comparing tracer");
        assert!(
            cs.gbranches.is_empty(),
            "online summary folding requires a branch-free golden trace"
        );
        cs.route = DeltaRoute::SummaryOnly;
        self
    }

    /// Position the tracer as if `cursor` dynamic instructions and
    /// `branch_count` branch events had already executed — the
    /// snapshot-resume entry point. A kernel resumed from a mid-run state
    /// snapshot drives this tracer through only the *suffix* of its
    /// execution, and every recorded index (fault site, divergence
    /// cursor, non-finite trap, branch encoding) comes out in the same
    /// absolute coordinates a from-`t=0` run would have produced.
    ///
    /// In comparing mode the golden branch stream is fast-forwarded by
    /// the same `branch_count`, so online divergence detection stays
    /// index-aligned. Values are never recorded for the skipped prefix;
    /// callers that need a full trace stitch the golden prefix back in.
    ///
    /// # Panics
    /// Panics if the tracer injects a fault *before* `cursor` — the
    /// skipped prefix would silently never flip — or if values were
    /// already traced.
    pub fn resume_at(mut self, cursor: usize, branch_count: usize) -> Self {
        assert!(
            self.fault_site == usize::MAX || self.fault_site >= cursor,
            "fault site {} lies inside the skipped prefix (resume cursor {})",
            self.fault_site,
            cursor
        );
        assert!(
            self.cursor == 0 && self.branch_count == 0,
            "resume_at requires a fresh tracer"
        );
        self.cursor = cursor;
        self.branch_count = branch_count;
        if let Some(cs) = &mut self.compare {
            cs.branch_idx = branch_count;
        }
        self
    }

    /// Upgrade a golden tracer to **operand-provenance mode**: the run
    /// additionally records a data-dependence graph ([`Ddg`]) from the
    /// `dep`/`branch_dep`/`out_dep` calls the kernel issues. Finish with
    /// [`Tracer::finish_golden_with_ddg`].
    ///
    /// # Panics
    /// Panics unless the tracer is a [`Tracer::golden`] tracer —
    /// provenance of a faulty run would be meaningless (the amplification
    /// factors are evaluated at the golden operand values).
    pub fn with_ddg(mut self) -> Self {
        assert!(
            self.fault_site == usize::MAX && self.record_values && self.record_ids,
            "with_ddg requires a Tracer::golden tracer"
        );
        self.ddg = Some(Box::new(DdgBuilder::new()));
        self
    }

    /// Whether operand-provenance recording is active. Kernels gate all
    /// `dep()` bookkeeping (def-site maps, amplification arithmetic)
    /// behind this so the injection hot paths stay untouched.
    #[inline]
    pub fn ddg_enabled(&self) -> bool {
        self.ddg.is_some()
    }

    /// Declare that the **next** traced value depends on the value
    /// produced at dynamic instruction `def` through operation `op`.
    /// No-op outside provenance mode; call once per operand.
    #[inline]
    pub fn dep(&mut self, def: usize, op: OpKind) {
        if let Some(ddg) = &mut self.ddg {
            ddg.push_dep(def, op);
        }
    }

    /// Declare that the data value of an upcoming branch condition
    /// depends on dynamic instruction `def` with amplification `amp`,
    /// and that the golden condition value sits `margin` away from the
    /// decision threshold. A perturbation at the condition below
    /// `margin / amp` provably cannot flip the branch. No-op outside
    /// provenance mode.
    #[inline]
    pub fn branch_dep(&mut self, def: usize, amp: f64, margin: f64) {
        if let Some(ddg) = &mut self.ddg {
            ddg.push_branch_sink(def, amp, margin);
        }
    }

    /// Register an explicit perturbation cap for dynamic instruction
    /// `def`: amplifications attributed to `def` (via [`Tracer::dep`] or
    /// [`Tracer::branch_dep`]) are secant bounds only valid for
    /// perturbations up to `cap`. The backward pass never certifies a
    /// threshold above the tightest cap. No-op outside provenance mode.
    #[inline]
    pub fn dep_cap(&mut self, def: usize, cap: f64) {
        if let Some(ddg) = &mut self.ddg {
            ddg.push_cap(def, cap);
        }
    }

    /// Declare that an output element depends on dynamic instruction
    /// `def` with amplification `amp` (typically the last def of each
    /// output element, with amplification 1). The classifier's output
    /// tolerance anchors the backward pass here. No-op outside
    /// provenance mode.
    #[inline]
    pub fn out_dep(&mut self, def: usize, amp: f64) {
        if let Some(ddg) = &mut self.ddg {
            ddg.push_out_sink(def, amp);
        }
    }

    /// Reserve capacity for an expected number of dynamic instructions
    /// (avoids `Vec` growth reallocations in recording runs).
    pub fn reserve(&mut self, n_sites: usize, n_branches: usize) {
        if self.record_values {
            self.values.reserve_exact(n_sites);
        }
        if self.record_ids {
            self.static_ids.reserve_exact(n_sites);
        }
        if self.record_branches {
            self.branches.reserve_exact(n_branches);
        }
    }

    /// Register the production of one floating-point data element — one
    /// *dynamic instruction*. Returns the value the kernel must continue
    /// with (possibly bit-flipped, always quantised to the tracer's
    /// precision).
    #[inline]
    pub fn value(&mut self, sid: StaticId, v: f64) -> f64 {
        let mut v = self.precision.quantize(v);
        let idx = self.cursor;
        self.cursor = idx + 1;
        if idx == self.fault_site {
            let orig = v;
            v = self.precision.flip(v, self.fault_bit);
            self.injected_err = Some(if v.is_finite() {
                (v - orig).abs()
            } else {
                f64::INFINITY
            });
        }
        if self.trap_nonfinite && !v.is_finite() && self.first_nonfinite.is_none() {
            self.first_nonfinite = Some(idx);
        }
        if self.record_values {
            self.values.push(v);
            if self.record_ids {
                self.static_ids.push(sid.0);
            }
        }
        if let Some(ddg) = &mut self.ddg {
            ddg.flush_value(idx);
        }
        if let Some(tx) = &self.stream {
            if tx.send(StreamEvent::Value(v)).is_err() {
                // receiver gone: stop streaming, keep computing
                self.stream = None;
            }
        }
        if let Some(cs) = &mut self.compare {
            // Sites before the fault are identical by construction (the
            // executions only differ from the flip onward), matching the
            // buffered extractor's window start of `fault.site`.
            if idx >= self.fault_site && idx < cs.limit {
                if cs.block_len == 0 {
                    cs.block_start = idx;
                }
                cs.block[cs.block_len] = v;
                cs.block_len += 1;
                if cs.block_len == COMPARE_BLOCK {
                    cs.flush();
                }
            }
        }
        v
    }

    /// Register a data-dependent branch outcome. Returns `taken` so the
    /// call can wrap the condition inline:
    /// `while t.branch(residual > tol) { ... }`.
    #[inline]
    pub fn branch(&mut self, taken: bool) -> bool {
        self.branch_count += 1;
        let encoded = ((self.cursor as u64) << 1) | taken as u64;
        if self.record_branches {
            self.branches.push(encoded);
        }
        if let Some(tx) = &self.stream {
            if tx.send(StreamEvent::Branch(encoded)).is_err() {
                self.stream = None;
            }
        }
        if let Some(cs) = &mut self.compare {
            if cs.div_cursor.is_none() {
                // Index-wise comparison against the golden branch stream:
                // exactly `divergence_cursor`, evaluated online.
                let div = match cs.gbranches.get(cs.branch_idx).copied() {
                    Some(g) if g != encoded => Some(((g >> 1).min(encoded >> 1)) as usize),
                    // faulty stream outran the golden stream
                    None => Some((encoded >> 1) as usize),
                    _ => None,
                };
                if let Some(d) = div {
                    cs.div_cursor = Some(d);
                    cs.limit = cs.limit.min(d);
                }
            }
            cs.branch_idx += 1;
        }
        taken
    }

    /// Number of branch events observed so far (counted in every mode,
    /// recorded only in `Full`/golden modes).
    #[inline]
    pub fn branch_count(&self) -> usize {
        self.branch_count
    }

    /// Number of dynamic instructions executed so far.
    #[inline]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Whether the non-finite trap has fired. Kernels with unbounded
    /// data-dependent loops may poll this to emulate the program dying at
    /// the exception rather than spinning (the outcome classification is
    /// identical either way).
    #[inline]
    pub fn trapped(&self) -> bool {
        self.first_nonfinite.is_some()
    }

    /// Dynamic index at which the first non-finite value appeared.
    pub fn first_nonfinite(&self) -> Option<usize> {
        self.first_nonfinite
    }

    /// The realised injected-error magnitude, once the fault site has
    /// executed (`None` before that, or if the site was never reached).
    pub fn realized_injected_error(&self) -> Option<f64> {
        self.injected_err
    }

    /// Consume the tracer, yielding the run record.
    pub fn finish(self, output: Vec<f64>) -> RunTrace {
        RunTrace {
            values: if self.record_values {
                Some(self.values)
            } else {
                None
            },
            branches: if self.record_branches {
                Some(self.branches)
            } else {
                None
            },
            output,
            n_dynamic: self.cursor,
            first_nonfinite: self.first_nonfinite,
            fault: if self.fault_site == usize::MAX {
                None
            } else {
                Some(FaultSpec {
                    site: self.fault_site,
                    bit: self.fault_bit,
                })
            },
            injected_err: self.injected_err,
        }
    }

    /// Consume a comparing-mode tracer: seal the comparable window and
    /// yield the run record plus a [`StreamedWindow`] summary. The folded
    /// `(site, Δx)` pairs remain in the scratch the tracer was built with,
    /// truncated to the window (see
    /// [`streamed_propagation`](crate::streamed::streamed_propagation)).
    ///
    /// # Panics
    /// Panics if the tracer was not built with [`Tracer::comparing`].
    pub fn finish_compare(mut self, output: Vec<f64>) -> (RunTrace, StreamedWindow) {
        let mut cs = self
            .compare
            .take()
            .expect("finish_compare requires a Tracer::comparing tracer");
        cs.flush();
        let mut div = cs.div_cursor;
        if div.is_none() && cs.branch_idx < cs.gbranches.len() {
            // the golden run kept branching after the faulty run stopped:
            // divergence at the cursor of the first unmatched golden event
            div = Some((cs.gbranches[cs.branch_idx] >> 1) as usize);
        }
        let n_golden_sites = match cs.gvalues {
            GoldenValues::F32(v) => v.len(),
            GoldenValues::F64(v) => v.len(),
        };
        let mut compare_len = n_golden_sites.min(self.cursor);
        if let Some(d) = div {
            compare_len = compare_len.min(d);
        }
        let window = match cs.route {
            // online modes: every folded delta is already final and
            // in-window (see `with_delta_sink`), so the summary is
            // complete without a scratch pass
            DeltaRoute::Sink(_) | DeltaRoute::SummaryOnly => StreamedWindow {
                compare_len,
                diverged: div.is_some(),
                max_err: cs.online_max,
            },
            DeltaRoute::Scratch => cs.scratch.seal(compare_len, div.is_some()),
        };
        (self.finish(output), window)
    }

    /// Consume a provenance-mode golden tracer, yielding the reference
    /// run together with the recorded data-dependence graph.
    ///
    /// # Panics
    /// Panics if the tracer was not upgraded with [`Tracer::with_ddg`],
    /// or on any [`Tracer::finish_golden`] violation.
    pub fn finish_golden_with_ddg(mut self, output: Vec<f64>) -> (GoldenRun, Ddg) {
        let builder = *self
            .ddg
            .take()
            .expect("finish_golden_with_ddg requires a Tracer::with_ddg tracer");
        let n_sites = self.cursor;
        let golden = self.finish_golden(output);
        (golden, builder.finish(n_sites))
    }

    /// Consume a golden-mode tracer, yielding the reference run.
    ///
    /// # Panics
    /// Panics if the tracer was not constructed with [`Tracer::golden`]
    /// (a fault or missing recording would poison every later comparison).
    pub fn finish_golden(self, output: Vec<f64>) -> GoldenRun {
        assert!(
            self.fault_site == usize::MAX && self.record_values && self.record_ids,
            "finish_golden requires a Tracer::golden tracer"
        );
        assert!(
            self.first_nonfinite.is_none(),
            "golden run produced a non-finite value at dynamic instruction {:?}; \
             the kernel input is invalid as a reference",
            self.first_nonfinite
        );
        GoldenRun {
            precision: self.precision,
            values: self.values,
            static_ids: self.static_ids,
            branches: self.branches,
            output,
            n_dynamic: self.cursor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::StaticId;

    const SID: StaticId = StaticId(0);

    /// A toy "kernel": y = sum of squares of 1..=4, each square traced.
    fn toy(t: &mut Tracer) -> Vec<f64> {
        let mut acc = 0.0;
        for i in 1..=4 {
            let sq = t.value(SID, (i as f64) * (i as f64));
            acc = t.value(SID, acc + sq);
        }
        vec![acc]
    }

    #[test]
    fn golden_records_everything() {
        let mut t = Tracer::golden(Precision::F64);
        let out = toy(&mut t);
        let g = t.finish_golden(out);
        assert_eq!(g.n_dynamic, 8);
        assert_eq!(g.values.len(), 8);
        assert_eq!(g.static_ids.len(), 8);
        assert_eq!(g.output, vec![30.0]);
    }

    #[test]
    fn untraced_matches_golden_output() {
        let mut t = Tracer::untraced(Precision::F64);
        let out = toy(&mut t);
        let r = t.finish(out);
        assert_eq!(r.output, vec![30.0]);
        assert_eq!(r.n_dynamic, 8);
        assert!(r.values.is_none());
    }

    #[test]
    fn inject_flips_exactly_one_site() {
        // flip the sign bit of the value produced by dynamic instr 2 (the
        // square 4.0 -> -4.0), so acc becomes 1 - 4 + 9 + 16 = 22
        let f = FaultSpec { site: 2, bit: 63 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::OutputOnly);
        let out = toy(&mut t);
        let r = t.finish(out);
        assert_eq!(r.output, vec![22.0]);
        assert_eq!(r.injected_err, Some(8.0));
        assert_eq!(r.fault, Some(f));
    }

    #[test]
    fn inject_full_records_values() {
        let f = FaultSpec { site: 0, bit: 63 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::Full);
        let out = toy(&mut t);
        let r = t.finish(out);
        let vals = r.values.unwrap();
        assert_eq!(vals[0], -1.0);
        assert_eq!(vals.len(), 8);
    }

    #[test]
    fn fault_site_beyond_execution_is_benign() {
        let f = FaultSpec { site: 1000, bit: 1 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::OutputOnly);
        let out = toy(&mut t);
        let r = t.finish(out);
        assert_eq!(r.output, vec![30.0]);
        assert_eq!(r.injected_err, None);
    }

    #[test]
    fn nonfinite_trap_fires() {
        let mut t = Tracer::golden(Precision::F64);
        t.value(SID, 1.0);
        assert!(!t.trapped());
        t.value(SID, f64::NAN);
        assert!(t.trapped());
        assert_eq!(t.first_nonfinite(), Some(1));
    }

    #[test]
    fn branch_recording_encodes_cursor_and_taken() {
        let mut t = Tracer::golden(Precision::F64);
        t.value(SID, 1.0);
        assert!(t.branch(true));
        assert!(!t.branch(false));
        let g = t.finish_golden(vec![]);
        assert_eq!(g.branches, vec![(1 << 1) | 1, 1 << 1]);
    }

    #[test]
    fn f32_precision_quantizes_stream() {
        let mut t = Tracer::golden(Precision::F32);
        let v = t.value(SID, 0.1);
        assert_eq!(v, 0.1f32 as f64);
    }

    #[test]
    #[should_panic]
    fn finish_golden_rejects_injecting_tracer() {
        let t = Tracer::inject(
            Precision::F64,
            FaultSpec { site: 0, bit: 0 },
            RecordMode::Full,
        );
        let _ = t.finish_golden(vec![]);
    }

    #[test]
    fn resume_at_presets_absolute_coordinates() {
        let f = FaultSpec { site: 5, bit: 63 };
        let mut t = Tracer::inject(Precision::F64, f, RecordMode::OutputOnly).resume_at(4, 1);
        // sites 4 and 5 execute; the flip lands on site 5
        let a = t.value(SID, 1.0);
        assert_eq!(a, 1.0);
        let b = t.value(SID, 1.0);
        assert_eq!(b, -1.0);
        assert!(t.branch(true));
        assert_eq!(t.cursor(), 6);
        assert_eq!(t.branch_count(), 2);
        let r = t.finish(vec![b]);
        assert_eq!(r.n_dynamic, 6);
        assert_eq!(r.injected_err, Some(2.0));
    }

    #[test]
    #[should_panic(expected = "skipped prefix")]
    fn resume_past_fault_site_rejected() {
        let f = FaultSpec { site: 2, bit: 0 };
        let _ = Tracer::inject(Precision::F64, f, RecordMode::OutputOnly).resume_at(3, 0);
    }

    #[test]
    #[should_panic]
    fn inject_rejects_out_of_range_bit() {
        let _ = Tracer::inject(
            Precision::F32,
            FaultSpec { site: 0, bit: 40 },
            RecordMode::Full,
        );
    }
}
