//! Golden-run segmentation into **sections** — the phase structure behind
//! compositional boundary analysis (`ftb-core::compose`).
//!
//! A *section* is a contiguous range of dynamic instructions that forms
//! one phase of the computation: the initialization prologue, then one
//! slice per outer-loop repetition (a Jacobi sweep, a CG iteration). The
//! segmentation is heuristic but deterministic, driven by structure the
//! golden run already records:
//!
//! * the **init boundary** — the first transition out of a
//!   [`Region::Init`] static instruction ends the prologue section;
//! * a **phase restart** — a [`Region::Reduction`] site (a convergence
//!   monitor: a residual, a dot product feeding a stopping test) followed
//!   by a *smaller* static id marks re-entry into an earlier source line,
//!   i.e. the outer loop wrapped around;
//! * a **phase head** — a site the kernel explicitly marked
//!   (`phase_head` on [`StaticInstr`], declared with the `phase` marker
//!   in `static_instrs!`): transitioning into it from a *different*
//!   static instruction starts a new section. This is how monitor-free
//!   kernels (stencil sweeps, LU block steps, FFT six-step stages)
//!   expose their outer-loop structure without a reduction site.
//!
//! Kernels without reduction monitors or phase-head marks (e.g. a
//! single-pass GEMM) segment into prologue + one compute section, for
//! which composition degenerates to the monolithic analysis — correct,
//! just not incremental.
//!
//! [`StaticInstr`]: crate::site::StaticInstr
//!
//! Each section exposes an **output frontier**: the sites whose values
//! are live at the section boundary. We over-approximate it as every
//! non-[`Region::Reduction`] site in the section (monitor values feed
//! only the stopping test, not the carried state). Over-approximating
//! the frontier can only *overestimate* cross-section amplification,
//! which pushes composed thresholds down — the conservative direction.
//!
//! Sections also carry a **content signature** (FNV-1a over the static-id
//! stream, the site range, and the kernel's [`code_version`] stamp) used
//! by the incremental ledger to decide which sections a kernel edit
//! dirtied.
//!
//! [`code_version`]: SectionMap::signature

use crate::golden::GoldenRun;
use crate::site::{Region, StaticId, StaticRegistry};
use serde::{Deserialize, Serialize};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over byte slices (no `std::hash` so the
/// result is stable across Rust versions and platforms — it is persisted
/// in ledgers).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// The section decomposition of one golden run: a partition of
/// `0..n_sites` into contiguous phases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SectionMap {
    /// Start site of each section; `starts[0] == 0`, strictly increasing.
    starts: Vec<usize>,
    /// Total dynamic instructions covered.
    n_sites: usize,
}

impl SectionMap {
    /// The trivial decomposition: one section spanning the whole run.
    /// Composing over it must reproduce the monolithic analysis.
    pub fn whole(n_sites: usize) -> Self {
        assert!(n_sites > 0, "cannot section an empty run");
        Self {
            starts: vec![0],
            n_sites,
        }
    }

    /// Segment a golden run into phases using the init-boundary,
    /// phase-restart and phase-head heuristics described at module level.
    ///
    /// # Panics
    /// Panics if the golden run recorded no dynamic instructions.
    pub fn phases(golden: &GoldenRun, registry: &StaticRegistry) -> Self {
        let ids = &golden.static_ids;
        assert!(!ids.is_empty(), "cannot section an empty run");
        let region = |id: u32| registry.get(StaticId(id)).region;
        let mut starts = vec![0];
        for i in 1..ids.len() {
            let prev = region(ids[i - 1]);
            let cur = region(ids[i]);
            let init_boundary = prev == Region::Init && cur != Region::Init;
            let phase_restart = prev == Region::Reduction && ids[i] < ids[i - 1];
            let phase_head = ids[i] != ids[i - 1] && registry.get(StaticId(ids[i])).phase_head;
            if init_boundary || phase_restart || phase_head {
                starts.push(i);
            }
        }
        Self {
            starts,
            n_sites: ids.len(),
        }
    }

    /// Coalesce adjacent sections until at most `max_sections` remain,
    /// merging evenly. Bounds per-section campaign count for long runs
    /// (600 sweeps need not mean 600 campaigns).
    pub fn coalesce(self, max_sections: usize) -> Self {
        let max = max_sections.max(1);
        let m = self.starts.len();
        if m <= max {
            return self;
        }
        // group k of `max` takes sections [k*m/max, (k+1)*m/max)
        let starts = (0..max).map(|k| self.starts[k * m / max]).collect();
        Self {
            starts,
            n_sites: self.n_sites,
        }
    }

    /// Number of sections.
    pub fn n_sections(&self) -> usize {
        self.starts.len()
    }

    /// Total dynamic instructions covered.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Site range `[lo, hi)` of section `t`.
    pub fn range(&self, t: usize) -> (usize, usize) {
        let lo = self.starts[t];
        let hi = self.starts.get(t + 1).copied().unwrap_or(self.n_sites);
        (lo, hi)
    }

    /// The section containing dynamic instruction `site`.
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    pub fn section_of(&self, site: usize) -> usize {
        assert!(site < self.n_sites, "site {site} out of range");
        match self.starts.binary_search(&site) {
            Ok(t) => t,
            Err(ins) => ins - 1,
        }
    }

    /// Output-frontier sites of section `t`: every site in the range
    /// whose static instruction is not a [`Region::Reduction`] monitor.
    pub fn frontier(&self, golden: &GoldenRun, registry: &StaticRegistry, t: usize) -> Vec<usize> {
        let (lo, hi) = self.range(t);
        (lo..hi)
            .filter(|&s| registry.get(StaticId(golden.static_ids[s])).region != Region::Reduction)
            .collect()
    }

    /// Content signature of section `t`: FNV-1a over the site range, the
    /// static-id stream, and the kernel-supplied `code_version` stamp for
    /// the range. The stream captures the *shape* of the code executed —
    /// not the values — so editing one sweep's arithmetic changes only
    /// that section's signature (via `code_version`), while changing the
    /// iteration structure changes the stream itself.
    pub fn signature(&self, golden: &GoldenRun, t: usize, code_version: u64) -> u64 {
        let (lo, hi) = self.range(t);
        let mut h = Fnv1a::new();
        h.write_u64(lo as u64);
        h.write_u64(hi as u64);
        for &id in &golden.static_ids[lo..hi] {
            h.write(&id.to_le_bytes());
        }
        h.write_u64(code_version);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::Precision;
    use crate::tracer::Tracer;

    crate::static_instrs! {
        mod sid {
            INIT => ("k.init", Init),
            BODY => ("k.body", Compute),
            RESID => ("k.resid", Reduction),
        }
    }

    /// init ×3, then `sweeps` repetitions of (body ×3, resid).
    fn sweep_golden(sweeps: usize) -> GoldenRun {
        let mut t = Tracer::golden(Precision::F64);
        for i in 0..3 {
            t.value(sid::INIT, i as f64);
        }
        for s in 0..sweeps {
            for i in 0..3 {
                t.value(sid::BODY, (s * 3 + i) as f64);
            }
            t.value(sid::RESID, s as f64);
        }
        t.finish_golden(vec![0.0])
    }

    #[test]
    fn phases_split_init_and_sweeps() {
        let g = sweep_golden(4);
        let m = SectionMap::phases(&g, &sid::registry());
        // prologue + one section per sweep
        assert_eq!(m.n_sections(), 5);
        assert_eq!(m.range(0), (0, 3));
        assert_eq!(m.range(1), (3, 7));
        assert_eq!(m.range(4), (15, 19));
        assert_eq!(m.n_sites(), g.n_sites());
    }

    crate::static_instrs! {
        mod hsid {
            INIT => ("h.init", Init),
            HEAD => ("h.head", Compute, phase),
            TAIL => ("h.tail", Compute),
        }
    }

    /// init ×2, then `phases` repetitions of (head ×3, tail ×2) — a
    /// monitor-free kernel whose outer loop is exposed by the phase-head
    /// mark alone.
    fn head_golden(phases: usize) -> GoldenRun {
        let mut t = Tracer::golden(Precision::F64);
        for i in 0..2 {
            t.value(hsid::INIT, i as f64);
        }
        for p in 0..phases {
            for i in 0..3 {
                t.value(hsid::HEAD, (p * 3 + i) as f64);
            }
            for i in 0..2 {
                t.value(hsid::TAIL, (p * 2 + i) as f64);
            }
        }
        t.finish_golden(vec![0.0])
    }

    #[test]
    fn phase_head_marks_split_monitor_free_phases() {
        let g = head_golden(3);
        let m = SectionMap::phases(&g, &hsid::registry());
        // prologue + one section per (head, tail) phase; consecutive HEAD
        // sites within one phase must NOT split (same static id)
        assert_eq!(m.n_sections(), 4);
        assert_eq!(m.range(0), (0, 2));
        assert_eq!(m.range(1), (2, 7));
        assert_eq!(m.range(2), (7, 12));
        assert_eq!(m.range(3), (12, 17));
    }

    #[test]
    fn phase_head_coincident_with_init_boundary_splits_once() {
        // first TAIL→HEAD transition after init: init_boundary and
        // phase_head agree on the same index — one section start, not two
        let g = head_golden(1);
        let m = SectionMap::phases(&g, &hsid::registry());
        assert_eq!(m.n_sections(), 2);
        assert_eq!(m.range(0), (0, 2));
        assert_eq!(m.range(1), (2, 7));
    }

    #[test]
    fn unmarked_registry_segmentation_is_unchanged() {
        // the sweep kernel marks nothing: adding the phase-head rule must
        // not perturb reduction-restart segmentation
        let g = sweep_golden(4);
        let m = SectionMap::phases(&g, &sid::registry());
        assert_eq!(m.n_sections(), 5);
    }

    #[test]
    fn section_of_is_inverse_of_range() {
        let g = sweep_golden(3);
        let m = SectionMap::phases(&g, &sid::registry());
        for t in 0..m.n_sections() {
            let (lo, hi) = m.range(t);
            for s in lo..hi {
                assert_eq!(m.section_of(s), t, "site {s}");
            }
        }
    }

    #[test]
    fn whole_covers_everything() {
        let m = SectionMap::whole(17);
        assert_eq!(m.n_sections(), 1);
        assert_eq!(m.range(0), (0, 17));
        assert_eq!(m.section_of(16), 0);
    }

    #[test]
    fn frontier_excludes_reduction_monitors() {
        let g = sweep_golden(2);
        let m = SectionMap::phases(&g, &sid::registry());
        let f = m.frontier(&g, &sid::registry(), 1);
        // body sites 3..6, resid site 6 excluded
        assert_eq!(f, vec![3, 4, 5]);
    }

    #[test]
    fn coalesce_bounds_section_count() {
        let g = sweep_golden(10);
        let m = SectionMap::phases(&g, &sid::registry());
        assert_eq!(m.n_sections(), 11);
        let c = m.clone().coalesce(4);
        assert_eq!(c.n_sections(), 4);
        // still a partition of the same sites
        assert_eq!(c.range(0).0, 0);
        assert_eq!(c.range(3).1, g.n_sites());
        for t in 1..4 {
            assert_eq!(c.range(t - 1).1, c.range(t).0);
        }
        // coalescing below the current count is the identity
        assert_eq!(m.clone().coalesce(100), m);
    }

    #[test]
    fn signature_tracks_code_version_and_shape() {
        let g = sweep_golden(3);
        let m = SectionMap::phases(&g, &sid::registry());
        let base = m.signature(&g, 1, 0);
        // same shape, same stamp → same signature
        assert_eq!(m.signature(&g, 1, 0), base);
        // a code edit changes it
        assert_ne!(m.signature(&g, 1, 7), base);
        // sweep sections share a static-id shape but not a range
        assert_ne!(m.signature(&g, 2, 0), base);
    }

    #[test]
    fn fnv_is_stable() {
        // pinned digest: the signature is persisted in ledgers, so the
        // hash must never drift across platforms or refactors
        let mut h = Fnv1a::new();
        h.write(b"ftb");
        assert_eq!(h.finish(), 0xdc93_9218_febf_562f);
    }
}
