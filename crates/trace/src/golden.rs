//! Recorded executions: the golden reference run and fault-injected runs.

use crate::bits::Precision;
use crate::site::StaticId;
use crate::tracer::FaultSpec;
use serde::{Deserialize, Serialize};

/// The fault-free reference execution of a kernel.
///
/// Holds the full value stream (`8 bytes × n_dynamic` — the memory
/// overhead discussed in the paper's §5), the static id of each dynamic
/// instruction, the branch-outcome stream for divergence detection, and
/// the program output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenRun {
    /// Element precision of the traced kernel.
    pub precision: Precision,
    /// Value produced by each dynamic instruction, in program order.
    pub values: Vec<f64>,
    /// Static-instruction id of each dynamic instruction.
    pub static_ids: Vec<u32>,
    /// Branch events, encoded `(cursor << 1) | taken`.
    pub branches: Vec<u64>,
    /// Program output (what the domain user inspects for acceptability).
    pub output: Vec<f64>,
    /// Total dynamic instructions executed.
    pub n_dynamic: usize,
}

impl GoldenRun {
    /// Number of fault-injection sites (= dynamic instructions).
    #[inline]
    pub fn n_sites(&self) -> usize {
        self.n_dynamic
    }

    /// Number of single-bit-flip experiments in the exhaustive sample
    /// space: `n_sites × bits`.
    pub fn n_experiments(&self) -> u64 {
        self.n_sites() as u64 * u64::from(self.precision.bits())
    }

    /// Static id of dynamic instruction `site`.
    #[inline]
    pub fn static_id(&self, site: usize) -> StaticId {
        StaticId(self.static_ids[site])
    }

    /// Golden value of dynamic instruction `site`.
    #[inline]
    pub fn value(&self, site: usize) -> f64 {
        self.values[site]
    }

    /// The injected-error magnitude of every possible flip at `site`
    /// (length = `precision.bits()`), straight from the golden value —
    /// no execution needed. This is what makes boundary *prediction* free:
    /// the only unknown is propagation, never the initial perturbation.
    pub fn flip_errors(&self, site: usize) -> Vec<f64> {
        let v = self.values[site];
        (0..self.precision.bits())
            .map(|b| crate::bits::injected_error(self.precision, v, b))
            .collect()
    }

    /// Approximate heap footprint in bytes (the §5 overhead metric).
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * 8
            + self.static_ids.len() * 4
            + self.branches.len() * 8
            + self.output.len() * 8
    }
}

/// A recorded (possibly fault-injected) execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Value stream, present only under [`RecordMode::Full`].
    ///
    /// [`RecordMode::Full`]: crate::tracer::RecordMode::Full
    pub values: Option<Vec<f64>>,
    /// Branch stream, present only under `RecordMode::Full`.
    pub branches: Option<Vec<u64>>,
    /// Program output.
    pub output: Vec<f64>,
    /// Total dynamic instructions executed.
    pub n_dynamic: usize,
    /// First dynamic instruction that produced a non-finite value, if any
    /// (the NaN-exception crash model).
    pub first_nonfinite: Option<usize>,
    /// The fault this run was injected with, if any.
    pub fault: Option<FaultSpec>,
    /// Realised `|flipped − original|` at the fault site; `None` if the
    /// site was never reached; `+∞` if the flip produced a non-finite
    /// value.
    pub injected_err: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::StaticId;
    use crate::tracer::Tracer;

    fn tiny_golden() -> GoldenRun {
        let mut t = Tracer::golden(Precision::F64);
        t.value(StaticId(0), 1.0);
        t.value(StaticId(1), 2.0);
        t.branch(true);
        t.value(StaticId(0), 3.0);
        t.finish_golden(vec![3.0])
    }

    #[test]
    fn site_accessors() {
        let g = tiny_golden();
        assert_eq!(g.n_sites(), 3);
        assert_eq!(g.n_experiments(), 3 * 64);
        assert_eq!(g.static_id(2), StaticId(0));
        assert_eq!(g.value(1), 2.0);
    }

    #[test]
    fn flip_errors_cover_all_bits() {
        let g = tiny_golden();
        let errs = g.flip_errors(0);
        assert_eq!(errs.len(), 64);
        // sign flip of 1.0 has magnitude 2.0
        assert_eq!(errs[63], 2.0);
        // all errors are non-negative
        assert!(errs.iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn memory_accounting_is_positive() {
        let g = tiny_golden();
        assert!(g.memory_bytes() >= 3 * 8 + 3 * 4 + 8 + 8);
    }
}
