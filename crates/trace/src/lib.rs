//! # ftb-trace
//!
//! Execution tracing substrate for the `ftb` fault-tolerance-boundary
//! library — the stand-in for the LLVM-level instrumentation used by the
//! PPoPP'21 paper *"Understanding a Program's Resiliency Through Error
//! Propagation"*.
//!
//! The paper's fault model (its §2.1) is a **single bit flip in one data
//! element of one dynamic instruction**. Its error-propagation model
//! (§2.2) tracks, for every dynamic instruction `i`, the perturbation
//! `Δx_i = |x_i − x'_i|` between a golden (fault-free) run and a
//! fault-injected run, up to the point where control flow diverges.
//!
//! This crate provides exactly those mechanics:
//!
//! * [`Tracer`] — the instrumentation handle a kernel runs against. Every
//!   floating-point value the kernel produces passes through
//!   [`Tracer::value`], which assigns it a *dynamic instruction index*,
//!   optionally applies a bit-flip fault, optionally records it, and traps
//!   non-finite values (the paper's "NaN exception" crash model).
//!   Data-dependent branches pass through [`Tracer::branch`] so that
//!   control-flow divergence between runs is detectable.
//! * [`bits`] — the IEEE-754 single-bit-flip fault model for `f64`/`f32`.
//! * [`GoldenRun`] / [`RunTrace`] — recorded executions.
//! * [`compare`] — golden-vs-faulty comparison producing [`Propagation`]
//!   data (the `Δx` curve of the paper's Figure 2), truncated at the first
//!   control-flow divergence.
//! * [`streamed`] — the one-sided streaming comparison fast path: faulty
//!   runs compare against a shared read-only [`CompactGolden`] while they
//!   execute, with no per-experiment trace buffer.
//! * [`norms`] — output-error metrics (the paper uses the L∞ norm).
//! * [`ddg`] — opt-in operand-provenance recording during the golden run:
//!   a data-dependence graph with per-edge amplification factors, the
//!   input to the zero-injection static boundary analyzer
//!   (`ftb-core::staticbound`).
//!
//! The hot path ([`Tracer::value`]) is a cursor increment, one branch for
//! the fault check and one optional `Vec` push; instrumentation overhead is
//! measured in `ftb-bench`'s `bench_trace`/`bench_kernels`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bits;
pub mod compact;
pub mod compare;
pub mod ddg;
pub mod golden;
pub mod norms;
pub mod section;
pub mod serde_float;
pub mod site;
pub mod streamed;
pub mod tracer;

pub use bits::{flip_bit_f32, flip_bit_f64, injected_error, Precision};
pub use compact::CompactGolden;
pub use compare::{divergence_cursor, propagation, Propagation};
pub use ddg::{Ddg, OpKind, StaticEdge};
pub use golden::{GoldenRun, RunTrace};
pub use section::{Fnv1a, SectionMap};
pub use site::{Region, StaticId, StaticInstr, StaticRegistry};
pub use streamed::{streamed_propagation, CompareScratch, StreamedWindow};
pub use tracer::{FaultSpec, RecordMode, StreamEvent, Tracer};
