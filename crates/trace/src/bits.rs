//! The single-bit-flip fault model over IEEE-754 values.
//!
//! Section 3.2 of the paper observes that although the injected-error
//! search space is conceptually `[0, ∞)`, IEEE-754 representation makes it
//! discrete: a 64-bit value admits exactly 64 distinct single-bit-flip
//! corruptions (32 for a 32-bit value). The exhaustive campaign of §4.1
//! enumerates all of them; everything else in the library reasons about
//! the *magnitude* of the perturbation each flip introduces.

use serde::{Deserialize, Serialize};

/// Floating-point width of a kernel's data elements.
///
/// The paper's benchmarks mix widths (its CG discussion analyses a 32-bit
/// zero-initialised variable). Kernels declare their element width; the
/// tracer quantises every produced value to that width so a bit flip is
/// applied to exactly the representation the kernel computes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE-754 binary32 data elements; 32 flip candidates per site.
    F32,
    /// IEEE-754 binary64 data elements; 64 flip candidates per site.
    F64,
}

impl Precision {
    /// Number of corruptible bits per data element.
    #[inline]
    pub const fn bits(self) -> u8 {
        match self {
            Precision::F32 => 32,
            Precision::F64 => 64,
        }
    }

    /// Quantise a value to this precision (identity for `F64`).
    #[inline]
    pub fn quantize(self, v: f64) -> f64 {
        match self {
            Precision::F32 => v as f32 as f64,
            Precision::F64 => v,
        }
    }

    /// Flip bit `bit` of `v` in this precision. The result is returned as
    /// `f64` (exact: every binary32 value is representable in binary64).
    ///
    /// # Panics
    /// Panics if `bit >= self.bits()`.
    #[inline]
    pub fn flip(self, v: f64, bit: u8) -> f64 {
        match self {
            Precision::F32 => flip_bit_f32(v as f32, bit) as f64,
            Precision::F64 => flip_bit_f64(v, bit),
        }
    }
}

/// Flip bit `bit` (0 = least-significant mantissa bit, 63 = sign bit) of a
/// binary64 value.
///
/// # Panics
/// Panics if `bit >= 64`.
#[inline]
pub fn flip_bit_f64(v: f64, bit: u8) -> f64 {
    assert!(bit < 64, "f64 has bits 0..=63, got {bit}");
    f64::from_bits(v.to_bits() ^ (1u64 << bit))
}

/// Flip bit `bit` (0 = least-significant mantissa bit, 31 = sign bit) of a
/// binary32 value.
///
/// # Panics
/// Panics if `bit >= 32`.
#[inline]
pub fn flip_bit_f32(v: f32, bit: u8) -> f32 {
    assert!(bit < 32, "f32 has bits 0..=31, got {bit}");
    f32::from_bits(v.to_bits() ^ (1u32 << bit))
}

/// Magnitude of the error a bit flip introduces: `|flip(v, bit) − v|`.
///
/// When the flip produces a non-finite value (exponent-bit flips on large
/// values) the error is reported as `+∞`; such experiments are the
/// paper's Crash category under the NaN-exception model, and `+∞`
/// correctly sorts them above every finite tolerance threshold.
#[inline]
pub fn injected_error(precision: Precision, v: f64, bit: u8) -> f64 {
    let v = precision.quantize(v);
    let flipped = precision.flip(v, bit);
    if flipped.is_finite() {
        (flipped - v).abs()
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_an_involution_f64() {
        let v = 1.234567890123;
        for bit in 0..64 {
            assert_eq!(
                flip_bit_f64(flip_bit_f64(v, bit), bit).to_bits(),
                v.to_bits()
            );
        }
    }

    #[test]
    fn flip_is_an_involution_f32() {
        let v = 1.2345678f32;
        for bit in 0..32 {
            assert_eq!(
                flip_bit_f32(flip_bit_f32(v, bit), bit).to_bits(),
                v.to_bits()
            );
        }
    }

    #[test]
    fn sign_bit_flip_negates() {
        assert_eq!(flip_bit_f64(1.5, 63), -1.5);
        assert_eq!(flip_bit_f32(1.5, 31), -1.5);
    }

    #[test]
    fn sign_flip_of_zero_is_free() {
        // -0.0 == 0.0, so the injected error of a sign flip on zero is 0:
        // the paper's "smallest threshold is zero" floor never triggers here.
        assert_eq!(injected_error(Precision::F64, 0.0, 63), 0.0);
        assert_eq!(injected_error(Precision::F32, 0.0, 31), 0.0);
    }

    #[test]
    fn zero_value_top_exponent_flip_f32_is_two() {
        // The paper (§4.2): "In a 32-bit float-point variable with a value
        // of zero, a maximum perturbation of 2 occurs when there is a flip
        // in the highest exponent bit."
        let e = injected_error(Precision::F32, 0.0, 30);
        assert_eq!(e, 2.0);
    }

    #[test]
    fn zero_value_other_bits_are_tiny_f32() {
        // Remaining non-sign bits on a 32-bit zero give at most ~1.08e-19
        // (§4.2). Bit 29 yields 2^-63.
        let mut max = 0.0f64;
        for bit in 0..30 {
            max = max.max(injected_error(Precision::F32, 0.0, bit));
        }
        assert!(max <= 1.09e-19, "max small-bit error {max}");
        assert!(max > 1.07e-19);
    }

    #[test]
    fn exponent_flip_can_overflow_to_infinity() {
        // 1.0 has biased exponent 0b01111111111; setting bit 62 makes the
        // exponent all-ones with a zero mantissa — exactly +Inf.
        let e = injected_error(Precision::F64, 1.0, 62);
        assert_eq!(e, f64::INFINITY);
        assert!(flip_bit_f64(1.0, 62).is_infinite());
    }

    #[test]
    fn mantissa_flip_error_is_small_relative() {
        let v = 1024.0;
        let e = injected_error(Precision::F64, v, 0);
        assert!(e > 0.0 && e / v < 1e-12);
    }

    #[test]
    fn quantize_f32_rounds() {
        let v = 0.1f64;
        let q = Precision::F32.quantize(v);
        assert_ne!(v, q);
        assert_eq!(q, 0.1f32 as f64);
        assert_eq!(Precision::F64.quantize(v), v);
    }

    #[test]
    fn bits_counts() {
        assert_eq!(Precision::F32.bits(), 32);
        assert_eq!(Precision::F64.bits(), 64);
    }

    #[test]
    #[should_panic]
    fn flip_out_of_range_panics() {
        let _ = flip_bit_f32(1.0, 32);
    }
}
