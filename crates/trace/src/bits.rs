//! The single-bit-flip fault model over IEEE-754 values.
//!
//! Section 3.2 of the paper observes that although the injected-error
//! search space is conceptually `[0, ∞)`, IEEE-754 representation makes it
//! discrete: a 64-bit value admits exactly 64 distinct single-bit-flip
//! corruptions (32 for a 32-bit value). The exhaustive campaign of §4.1
//! enumerates all of them; everything else in the library reasons about
//! the *magnitude* of the perturbation each flip introduces.

use serde::{Deserialize, Serialize};

/// Floating-point width of a kernel's data elements.
///
/// The paper's benchmarks mix widths (its CG discussion analyses a 32-bit
/// zero-initialised variable). Kernels declare their element width; the
/// tracer quantises every produced value to that width so a bit flip is
/// applied to exactly the representation the kernel computes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE-754 binary32 data elements; 32 flip candidates per site.
    F32,
    /// IEEE-754 binary64 data elements; 64 flip candidates per site.
    F64,
}

impl Precision {
    /// Number of corruptible bits per data element.
    #[inline]
    pub const fn bits(self) -> u8 {
        match self {
            Precision::F32 => 32,
            Precision::F64 => 64,
        }
    }

    /// Number of mantissa-field bits (23 for binary32, 52 for binary64).
    #[inline]
    pub const fn mantissa_bits(self) -> u8 {
        match self {
            Precision::F32 => 23,
            Precision::F64 => 52,
        }
    }

    /// Bit index of the sign bit (the highest bit).
    #[inline]
    pub const fn sign_bit(self) -> u8 {
        self.bits() - 1
    }

    /// Exponent bias (127 for binary32, 1023 for binary64).
    #[inline]
    pub const fn exponent_bias(self) -> i32 {
        match self {
            Precision::F32 => 127,
            Precision::F64 => 1023,
        }
    }

    /// The all-ones biased exponent (Inf/NaN territory): 255 for
    /// binary32, 2047 for binary64.
    #[inline]
    pub const fn max_biased_exponent(self) -> u32 {
        match self {
            Precision::F32 => 0xff,
            Precision::F64 => 0x7ff,
        }
    }

    /// Largest finite magnitude representable in this precision.
    #[inline]
    pub const fn max_finite(self) -> f64 {
        match self {
            Precision::F32 => f32::MAX as f64,
            Precision::F64 => f64::MAX,
        }
    }

    /// Conservative unit-in-the-last-place at `magnitude`: an upper
    /// bound on the representable-value gap anywhere in
    /// `[-|magnitude|, |magnitude|]`, so `|q(a) − q(b)| ≤ |a − b| +
    /// ulp_at(m)` for any `a, b` of magnitude ≤ `m` under this
    /// precision's round-to-nearest quantisation. Uses the exponent
    /// ceiling, so the bound holds with a factor-2 margin at exact
    /// powers of two. Returns the smallest normal ulp for `0`.
    pub fn ulp_at(self, magnitude: f64) -> f64 {
        let m = magnitude.abs();
        let e = if m <= f64::MIN_POSITIVE {
            1 - self.exponent_bias()
        } else {
            (m.log2().ceil() as i32).max(1 - self.exponent_bias())
        };
        pow2(e - self.mantissa_bits() as i32)
    }

    /// Exact unit-in-the-last-place of `magnitude`'s own binade — up to
    /// 2× tighter than [`Precision::ulp_at`] while keeping the same
    /// quantisation-gap contract: `ulp(v) ≤ ulp_of(m)` for every
    /// `|v| ≤ |m|`, and round-to-nearest moves each value by at most
    /// half an ulp, so `|q(a) − q(b)| ≤ |a − b| + ulp_of(m)` for any
    /// `a, b` of magnitude ≤ `m`. (Rounding in the `log2` may land the
    /// exponent one binade high near exact powers of two — still an
    /// upper bound, never an underestimate.) Returns the smallest
    /// normal ulp for `0`.
    pub fn ulp_of(self, magnitude: f64) -> f64 {
        let m = magnitude.abs();
        let e = if m < f64::MIN_POSITIVE {
            1 - self.exponent_bias()
        } else {
            (m.log2().floor() as i32).max(1 - self.exponent_bias())
        };
        pow2(e - self.mantissa_bits() as i32)
    }
}

/// `2^e` as an exact `f64` (bit-constructed, no rounding), saturating to
/// `0` below the subnormal range and `+∞` above the normal range.
#[inline]
fn pow2(e: i32) -> f64 {
    if e < -1074 {
        0.0
    } else if e < -1022 {
        // subnormal: a single mantissa bit at position e + 1074
        f64::from_bits(1u64 << (e + 1074))
    } else if e <= 1023 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else {
        f64::INFINITY
    }
}

/// Biased exponent field of `v` in the given precision (quantising
/// first, so the field is read from exactly the representation a flip
/// would corrupt).
#[inline]
pub fn biased_exponent(precision: Precision, v: f64) -> u32 {
    match precision {
        Precision::F32 => ((v as f32).to_bits() >> 23) & 0xff,
        Precision::F64 => ((v.to_bits() >> 52) & 0x7ff) as u32,
    }
}

/// Largest finite magnitude among values with biased exponent `eb`
/// (`+∞` for the all-ones exponent, whose members are already
/// non-finite). For `eb = 0` this is the largest subnormal.
pub fn sup_magnitude(precision: Precision, eb: u32) -> f64 {
    if eb >= precision.max_biased_exponent() {
        return f64::INFINITY;
    }
    let mant = precision.mantissa_bits() as i32;
    let bias = precision.exponent_bias();
    if eb == 0 {
        // (1 − 2^−mant) · 2^(1−bias)
        (1.0 - pow2(-mant)) * pow2(1 - bias)
    } else {
        // (2 − 2^−mant) · 2^(eb−bias)
        (2.0 - pow2(-mant)) * pow2(eb as i32 - bias)
    }
}

/// Smallest magnitude among values with biased exponent `eb`: `2^(eb−bias)`
/// for normals, `0` for `eb = 0` (the subnormal band includes ±0).
pub fn min_magnitude(precision: Precision, eb: u32) -> f64 {
    if eb == 0 {
        0.0
    } else {
        pow2(eb as i32 - precision.exponent_bias())
    }
}

/// Sound upper bound on the injected error `|flip(v, bit) − v|` over
/// **every** finite `v` whose biased exponent is `eb` — the per-exponent
/// worst case of the single-bit-flip fault model.
///
/// Returns `+∞` exactly when the flip can land non-finite from that
/// exponent (an exponent-bit flip into the all-ones exponent), mirroring
/// [`injected_error`]'s convention. The mantissa-bit rows are exact
/// (a flip of mantissa bit `b` moves the value by exactly `2^b` ulps
/// regardless of the mantissa); the sign/exponent rows are conservative
/// sups.
pub fn flip_error_sup(precision: Precision, eb: u32, bit: u8) -> f64 {
    assert!(bit < precision.bits(), "bit {bit} out of range");
    if eb >= precision.max_biased_exponent() {
        return f64::INFINITY; // v itself non-finite: out of the fault model
    }
    let mant = precision.mantissa_bits();
    let bias = precision.exponent_bias();
    if bit < mant {
        // exact: 2^bit ulps, ulp = 2^(max(eb,1) − bias − mant)
        pow2(bit as i32 + eb.max(1) as i32 - bias - mant as i32)
    } else if bit == precision.sign_bit() {
        2.0 * sup_magnitude(precision, eb)
    } else {
        let eb2 = eb ^ (1u32 << (bit - mant));
        if eb2 >= precision.max_biased_exponent() {
            f64::INFINITY
        } else {
            // same sign before and after, so |v' − v| < max(|v|, |v'|)
            sup_magnitude(precision, eb.max(eb2))
        }
    }
}

/// Whether flipping `bit` lands non-finite for **every** value with
/// biased exponent `eb`: true exactly for exponent-bit flips into the
/// all-ones exponent (Inf for a zero mantissa, NaN otherwise — both are
/// the NaN-exception crash trigger).
pub fn flip_always_nonfinite(precision: Precision, eb: u32, bit: u8) -> bool {
    assert!(bit < precision.bits(), "bit {bit} out of range");
    let mant = precision.mantissa_bits();
    if bit < mant || bit == precision.sign_bit() {
        return false;
    }
    (eb ^ (1u32 << (bit - mant))) == precision.max_biased_exponent()
}

impl Precision {
    /// Quantise a value to this precision (identity for `F64`).
    #[inline]
    pub fn quantize(self, v: f64) -> f64 {
        match self {
            Precision::F32 => v as f32 as f64,
            Precision::F64 => v,
        }
    }

    /// Flip bit `bit` of `v` in this precision. The result is returned as
    /// `f64` (exact: every binary32 value is representable in binary64).
    ///
    /// # Panics
    /// Panics if `bit >= self.bits()`.
    #[inline]
    pub fn flip(self, v: f64, bit: u8) -> f64 {
        match self {
            Precision::F32 => flip_bit_f32(v as f32, bit) as f64,
            Precision::F64 => flip_bit_f64(v, bit),
        }
    }
}

/// Flip bit `bit` (0 = least-significant mantissa bit, 63 = sign bit) of a
/// binary64 value.
///
/// # Panics
/// Panics if `bit >= 64`.
#[inline]
pub fn flip_bit_f64(v: f64, bit: u8) -> f64 {
    assert!(bit < 64, "f64 has bits 0..=63, got {bit}");
    f64::from_bits(v.to_bits() ^ (1u64 << bit))
}

/// Flip bit `bit` (0 = least-significant mantissa bit, 31 = sign bit) of a
/// binary32 value.
///
/// # Panics
/// Panics if `bit >= 32`.
#[inline]
pub fn flip_bit_f32(v: f32, bit: u8) -> f32 {
    assert!(bit < 32, "f32 has bits 0..=31, got {bit}");
    f32::from_bits(v.to_bits() ^ (1u32 << bit))
}

/// Magnitude of the error a bit flip introduces: `|flip(v, bit) − v|`.
///
/// When the flip produces a non-finite value (exponent-bit flips on large
/// values) the error is reported as `+∞`; such experiments are the
/// paper's Crash category under the NaN-exception model, and `+∞`
/// correctly sorts them above every finite tolerance threshold.
#[inline]
pub fn injected_error(precision: Precision, v: f64, bit: u8) -> f64 {
    let v = precision.quantize(v);
    let flipped = precision.flip(v, bit);
    if flipped.is_finite() {
        (flipped - v).abs()
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_at_bounds_the_quantisation_gap() {
        // the contract: |q(a) − q(b)| ≤ |a − b| + ulp_at(max magnitude)
        for p in [Precision::F32, Precision::F64] {
            for m in [0.0, 0.3, 1.0, 1.5, 6.0, 1000.0] {
                let u = p.ulp_at(m);
                assert!(u > 0.0 && u.is_finite());
                let a = m * 0.99 + 1e-9;
                let b = a + u * 0.4;
                let gap = (p.quantize(a) - p.quantize(b)).abs();
                assert!(gap <= (a - b).abs() + u, "{p:?} m={m}");
            }
        }
        // exact values at powers of two
        assert_eq!(Precision::F32.ulp_at(1.0), pow2(-23));
        assert_eq!(Precision::F32.ulp_at(1.5), pow2(-22));
        assert_eq!(Precision::F64.ulp_at(1.0), pow2(-52));
        // conservative monotonicity in magnitude
        assert!(Precision::F32.ulp_at(8.0) >= Precision::F32.ulp_at(2.0));
    }

    #[test]
    fn ulp_of_is_tight_and_keeps_the_gap_contract() {
        // same contract as ulp_at, with the tighter binade-exact value
        for p in [Precision::F32, Precision::F64] {
            for m in [0.0, 0.3, 1.0, 1.5, 2.05, 6.0, 1000.0] {
                let u = p.ulp_of(m);
                assert!(u > 0.0 && u.is_finite());
                assert!(u <= p.ulp_at(m), "{p:?} m={m}");
                let a = m * 0.99 + 1e-9;
                let b = a + u * 0.4;
                let gap = (p.quantize(a) - p.quantize(b)).abs();
                assert!(gap <= (a - b).abs() + u, "{p:?} m={m}");
            }
        }
        // binade-exact values: 1.0 and 1.5 share the [1, 2) binade
        assert_eq!(Precision::F32.ulp_of(1.0), pow2(-23));
        assert_eq!(Precision::F32.ulp_of(1.5), pow2(-23));
        assert_eq!(Precision::F32.ulp_of(2.05), pow2(-22));
        assert_eq!(Precision::F64.ulp_of(1.5), pow2(-52));
        assert!(Precision::F32.ulp_of(8.0) >= Precision::F32.ulp_of(2.0));
    }

    #[test]
    fn flip_is_an_involution_f64() {
        let v = 1.234567890123;
        for bit in 0..64 {
            assert_eq!(
                flip_bit_f64(flip_bit_f64(v, bit), bit).to_bits(),
                v.to_bits()
            );
        }
    }

    #[test]
    fn flip_is_an_involution_f32() {
        let v = 1.2345678f32;
        for bit in 0..32 {
            assert_eq!(
                flip_bit_f32(flip_bit_f32(v, bit), bit).to_bits(),
                v.to_bits()
            );
        }
    }

    #[test]
    fn sign_bit_flip_negates() {
        assert_eq!(flip_bit_f64(1.5, 63), -1.5);
        assert_eq!(flip_bit_f32(1.5, 31), -1.5);
    }

    #[test]
    fn sign_flip_of_zero_is_free() {
        // -0.0 == 0.0, so the injected error of a sign flip on zero is 0:
        // the paper's "smallest threshold is zero" floor never triggers here.
        assert_eq!(injected_error(Precision::F64, 0.0, 63), 0.0);
        assert_eq!(injected_error(Precision::F32, 0.0, 31), 0.0);
    }

    #[test]
    fn zero_value_top_exponent_flip_f32_is_two() {
        // The paper (§4.2): "In a 32-bit float-point variable with a value
        // of zero, a maximum perturbation of 2 occurs when there is a flip
        // in the highest exponent bit."
        let e = injected_error(Precision::F32, 0.0, 30);
        assert_eq!(e, 2.0);
    }

    #[test]
    fn zero_value_other_bits_are_tiny_f32() {
        // Remaining non-sign bits on a 32-bit zero give at most ~1.08e-19
        // (§4.2). Bit 29 yields 2^-63.
        let mut max = 0.0f64;
        for bit in 0..30 {
            max = max.max(injected_error(Precision::F32, 0.0, bit));
        }
        assert!(max <= 1.09e-19, "max small-bit error {max}");
        assert!(max > 1.07e-19);
    }

    #[test]
    fn exponent_flip_can_overflow_to_infinity() {
        // 1.0 has biased exponent 0b01111111111; setting bit 62 makes the
        // exponent all-ones with a zero mantissa — exactly +Inf.
        let e = injected_error(Precision::F64, 1.0, 62);
        assert_eq!(e, f64::INFINITY);
        assert!(flip_bit_f64(1.0, 62).is_infinite());
    }

    #[test]
    fn mantissa_flip_error_is_small_relative() {
        let v = 1024.0;
        let e = injected_error(Precision::F64, v, 0);
        assert!(e > 0.0 && e / v < 1e-12);
    }

    #[test]
    fn quantize_f32_rounds() {
        let v = 0.1f64;
        let q = Precision::F32.quantize(v);
        assert_ne!(v, q);
        assert_eq!(q, 0.1f32 as f64);
        assert_eq!(Precision::F64.quantize(v), v);
    }

    #[test]
    fn bits_counts() {
        assert_eq!(Precision::F32.bits(), 32);
        assert_eq!(Precision::F64.bits(), 64);
    }

    #[test]
    #[should_panic]
    fn flip_out_of_range_panics() {
        let _ = flip_bit_f32(1.0, 32);
    }

    #[test]
    fn field_geometry_constants() {
        assert_eq!(Precision::F32.mantissa_bits(), 23);
        assert_eq!(Precision::F64.mantissa_bits(), 52);
        assert_eq!(Precision::F32.sign_bit(), 31);
        assert_eq!(Precision::F64.sign_bit(), 63);
        assert_eq!(Precision::F32.max_biased_exponent(), 255);
        assert_eq!(Precision::F64.max_biased_exponent(), 2047);
        assert_eq!(Precision::F32.max_finite(), f32::MAX as f64);
        assert_eq!(Precision::F64.max_finite(), f64::MAX);
    }

    #[test]
    fn biased_exponent_reads_the_field() {
        assert_eq!(biased_exponent(Precision::F64, 1.0), 1023);
        assert_eq!(biased_exponent(Precision::F64, 2.0), 1024);
        assert_eq!(biased_exponent(Precision::F64, 0.0), 0);
        assert_eq!(biased_exponent(Precision::F32, 1.0), 127);
        assert_eq!(biased_exponent(Precision::F32, -4.0), 129);
        // quantisation first: a tiny f64 is subnormal-or-zero as f32
        assert_eq!(biased_exponent(Precision::F32, 1e-300), 0);
    }

    #[test]
    fn magnitude_envelopes_bracket_each_exponent_band() {
        for prec in [Precision::F32, Precision::F64] {
            for eb in [0u32, 1, 5, prec.max_biased_exponent() - 1] {
                let lo = min_magnitude(prec, eb);
                let hi = sup_magnitude(prec, eb);
                assert!(lo <= hi, "band {eb} inverted: {lo} > {hi}");
                assert!(hi.is_finite(), "sup of a finite band must be finite");
            }
            assert_eq!(min_magnitude(prec, 0), 0.0);
            assert_eq!(
                sup_magnitude(prec, prec.max_biased_exponent()),
                f64::INFINITY
            );
        }
        // exact spot checks: f64 band 1023 is [1, 2), sup just under 2
        assert_eq!(min_magnitude(Precision::F64, 1023), 1.0);
        assert_eq!(sup_magnitude(Precision::F64, 1023), 2.0 - 2f64.powi(-52));
        // top normal band's sup is MAX itself
        assert_eq!(sup_magnitude(Precision::F64, 2046), f64::MAX);
        assert_eq!(sup_magnitude(Precision::F32, 254), f32::MAX as f64);
    }

    #[test]
    fn flip_error_sup_dominates_injected_error_sampled() {
        // the per-exponent sup must dominate the exact injected error of
        // every sampled value in that band, both precisions, every bit
        let samples: Vec<f64> = vec![
            0.0, 1.0, -1.0, 1.5, -3.25, 0.1, 1e-3, 7.5e9, -2.5e-12, 1e-40,     // subnormal as f32
            3.4e38,    // near f32::MAX
            1.2e308,   // near f64::MAX
            5e-324,    // min f64 subnormal
            -1.18e-38, // near f32 min normal
        ];
        for prec in [Precision::F32, Precision::F64] {
            for &raw in &samples {
                let v = prec.quantize(raw);
                if !v.is_finite() {
                    continue;
                }
                let eb = biased_exponent(prec, v);
                for bit in 0..prec.bits() {
                    let exact = injected_error(prec, v, bit);
                    let sup = flip_error_sup(prec, eb, bit);
                    assert!(
                        exact <= sup,
                        "{prec:?} v={v:e} bit={bit}: exact {exact:e} > sup {sup:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn flip_error_sup_mantissa_rows_are_exact_per_band() {
        // mantissa flips move the value by exactly 2^bit ulps, so the sup
        // is attained by every member of the band
        let v = 1.75f64; // eb 1023
        let eb = biased_exponent(Precision::F64, v);
        for bit in 0..52u8 {
            assert_eq!(
                injected_error(Precision::F64, v, bit),
                flip_error_sup(Precision::F64, eb, bit)
            );
        }
    }

    #[test]
    fn flip_always_nonfinite_matches_exact_flips() {
        // where the predicate holds, every sampled member of the band
        // flips non-finite; where it doesn't, the sup being finite means
        // no member can
        for prec in [Precision::F32, Precision::F64] {
            for &v in &[1.0f64, -2.5, 0.75, 1e20] {
                let v = prec.quantize(v);
                let eb = biased_exponent(prec, v);
                for bit in 0..prec.bits() {
                    let flips_nonfinite = !prec.flip(v, bit).is_finite();
                    if flip_always_nonfinite(prec, eb, bit) {
                        assert!(flips_nonfinite, "{prec:?} v={v} bit={bit}");
                        assert_eq!(flip_error_sup(prec, eb, bit), f64::INFINITY);
                    }
                    if flip_error_sup(prec, eb, bit).is_finite() {
                        assert!(!flips_nonfinite, "{prec:?} v={v} bit={bit}");
                    }
                }
            }
        }
        // the canonical example: 1.0 loses its top exponent bit to Inf
        assert!(flip_always_nonfinite(Precision::F64, 1023, 62));
        assert!(flip_always_nonfinite(Precision::F32, 127, 30));
        assert!(!flip_always_nonfinite(Precision::F64, 1023, 61));
    }

    #[test]
    fn flip_error_sup_zero_band_covers_the_paper_example() {
        // §4.2: a 32-bit zero's top exponent-bit flip perturbs by 2; the
        // band-0 sup must dominate it
        let sup = flip_error_sup(Precision::F32, 0, 30);
        assert!(sup >= 2.0, "sup {sup}");
        assert!(sup.is_finite());
    }
}
