//! Operand-provenance recording: the data-dependence graph (DDG) behind
//! the static error-propagation analyzer (`ftb-core::staticbound`).
//!
//! In provenance mode the golden run records, for every dynamic
//! instruction it produces, *which earlier dynamic instructions feed it
//! and how strongly*: each edge `(def_site, use_site)` carries a local
//! **amplification factor** — an upper bound on `|∂ use / ∂ def|` at the
//! golden operand values, valid for perturbations up to the edge's
//! curvature cap. The derivative table ([`OpKind`]):
//!
//! | op (use as a function of def) | amplification        | cap        |
//! |-------------------------------|----------------------|------------|
//! | `def + c`, `c − def`, `±def`  | `1`                  | —          |
//! | `c · def`                     | `\|c\|`              | —          |
//! | `def / den`                   | `1 / \|den\|`        | —          |
//! | `num / def`                   | `2\|num\| / den²`    | `\|den\|/2`|
//! | `Σ … + def²` (reductions)     | `3\|def\|` (`1` at 0)| `\|def\|` (`1` at 0) |
//!
//! The non-linear rows are *secant* bounds, not tangent slopes: as long
//! as the perturbation at the def stays within the cap, the true output
//! change is bounded by `amp × |δ|` — no first-order approximation error.
//! Perturbations beyond a cap are outside the certificate, which is why
//! the backward pass never certifies a threshold above the def's cap.
//!
//! Two kinds of **sink** anchor the graph to the outcome classifier:
//!
//! * an *output sink* `(def, amp)` — the def feeds an output element with
//!   the given amplification; the L∞ tolerance `T` applies there;
//! * a *branch sink* `(def, amp, margin)` — the def feeds the data value
//!   of a [`Tracer::branch`](crate::Tracer::branch) condition whose golden
//!   value sits `margin` away from its decision threshold; a perturbation
//!   below `margin / amp` provably cannot flip the branch.
//!
//! Construction is strictly deterministic: edges are appended in the
//! order the golden run registers them, which is a pure function of the
//! kernel configuration.

use serde::{Deserialize, Serialize};

/// The operation through which a def's value reaches the next traced
/// use, carrying the golden operand values the amplification needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpKind {
    /// `use = def + c`, `c − def`, `±def` (add, sub, copy, negate):
    /// `|∂use/∂def| = 1`, exact.
    Linear,
    /// `use = c · def` where `c` is the *other* operand's golden value:
    /// `|∂use/∂def| = |c|`, exact for a single perturbed operand.
    Scale(f64),
    /// `use = def / den` (def is the numerator): `|∂use/∂def| = 1/|den|`,
    /// exact.
    DivNum(f64),
    /// `use = num / def` (def is the denominator at golden value `den`,
    /// with golden numerator `num`): secant bound `2|num|/den²`, valid
    /// for `|δ| ≤ |den|/2`.
    DivDen {
        /// Golden numerator value.
        num: f64,
        /// Golden denominator value (the def's own golden value).
        den: f64,
    },
    /// The def contributes `def²` to a sum (dot products, norms): secant
    /// bound `3|def|` valid for `|δ| ≤ |def|`; at `def = 0` the bound
    /// `δ² ≤ |δ|` for `|δ| ≤ 1` gives amplification 1 with cap 1.
    Square(f64),
}

impl OpKind {
    /// The edge's `(amplification, cap)` pair. `cap` is
    /// `f64::INFINITY` for the exact (linear) rows.
    pub fn amplification(self) -> (f64, f64) {
        match self {
            OpKind::Linear => (1.0, f64::INFINITY),
            OpKind::Scale(c) => (c.abs(), f64::INFINITY),
            OpKind::DivNum(den) => (1.0 / den.abs(), f64::INFINITY),
            OpKind::DivDen { num, den } => (2.0 * num.abs() / (den * den), den.abs() / 2.0),
            OpKind::Square(x) => {
                let a = x.abs();
                if a > 0.0 {
                    (3.0 * a, a)
                } else {
                    (1.0, 1.0)
                }
            }
        }
    }
}

/// The recorded data-dependence graph of one golden run.
///
/// Edges are stored def-parallel/use-parallel (`defs[k] → uses[k]` with
/// amplification `amps[k]`), with `uses` non-decreasing — the recording
/// order. Every def strictly precedes its use in the dynamic-instruction
/// order, so a single reverse sweep over the edge list visits each use's
/// out-edges only after that use's own accumulator is final: the graph is
/// topologically sorted by construction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ddg {
    /// Number of dynamic instructions in the golden run this graph spans.
    pub n_sites: usize,
    /// Edge def sites (dynamic-instruction indices).
    pub defs: Vec<u32>,
    /// Edge use sites, non-decreasing.
    pub uses: Vec<u32>,
    /// Edge amplification factors (`≥ 0`, possibly `+∞` for a
    /// degenerate operand).
    #[serde(with = "crate::serde_float::vec")]
    pub amps: Vec<f64>,
    /// Curvature caps: `(site, cap)` pairs bounding the perturbation at
    /// `site` for which that site's out-edge amplifications are valid.
    pub caps: Vec<(u32, f64)>,
    /// Output sinks `(def, amp)`: the def feeds an output element.
    pub out_sinks: Vec<(u32, f64)>,
    /// Branch sinks `(def, amp, margin)`: the def feeds a branch
    /// condition whose golden data value is `margin` from flipping.
    pub branch_sinks: Vec<(u32, f64, f64)>,
}

impl Ddg {
    /// Number of value-flow edges.
    pub fn n_edges(&self) -> usize {
        self.defs.len()
    }

    /// Whether the graph carries any provenance at all. A kernel without
    /// `dep()` instrumentation yields an empty graph (no edges, no
    /// sinks), which the static analyzer rejects explicitly.
    pub fn is_instrumented(&self) -> bool {
        !self.out_sinks.is_empty() || !self.branch_sinks.is_empty()
    }

    /// Collapse the dynamic graph to its static quotient: one row per
    /// `(static_def, static_use)` pair with the edge count and the
    /// largest amplification, using the golden run's site → static-id
    /// map. Rows are sorted by `(def_id, use_id)`.
    pub fn static_quotient(&self, static_ids: &[u32]) -> Vec<StaticEdge> {
        use std::collections::BTreeMap;
        let mut agg: BTreeMap<(u32, u32), (u64, f64)> = BTreeMap::new();
        for ((&d, &u), &a) in self.defs.iter().zip(&self.uses).zip(&self.amps) {
            let key = (static_ids[d as usize], static_ids[u as usize]);
            let e = agg.entry(key).or_insert((0, 0.0));
            e.0 += 1;
            e.1 = e.1.max(a);
        }
        agg.into_iter()
            .map(|((def_id, use_id), (count, max_amp))| StaticEdge {
                def_id,
                use_id,
                count,
                max_amp,
            })
            .collect()
    }
}

/// One row of the per-static-instruction quotient graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticEdge {
    /// Static id of the defining instruction.
    pub def_id: u32,
    /// Static id of the using instruction.
    pub use_id: u32,
    /// Number of dynamic edges collapsed into this row.
    pub count: u64,
    /// Largest dynamic amplification among them.
    pub max_amp: f64,
}

/// Incremental DDG builder owned by a provenance-mode
/// [`Tracer`](crate::Tracer). Pending deps registered via
/// [`Tracer::dep`](crate::Tracer::dep) attach to the *next* traced value.
#[derive(Debug, Default)]
pub struct DdgBuilder {
    pending: Vec<(u32, f64, f64)>,
    graph: Ddg,
}

impl DdgBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an edge from `def` into the next traced value.
    pub(crate) fn push_dep(&mut self, def: usize, op: OpKind) {
        let (amp, cap) = op.amplification();
        self.pending.push((def as u32, amp, cap));
    }

    /// Attach all pending deps to the value produced at `use_site`.
    pub(crate) fn flush_value(&mut self, use_site: usize) {
        for (def, amp, cap) in self.pending.drain(..) {
            debug_assert!(
                (def as usize) < use_site,
                "DDG edge must point backward: def {def} !< use {use_site}"
            );
            self.graph.defs.push(def);
            self.graph.uses.push(use_site as u32);
            self.graph.amps.push(amp);
            if cap.is_finite() {
                self.graph.caps.push((def, cap));
            }
        }
    }

    /// Register a branch sink for `def` with the given amplification
    /// into the condition's data value and the condition's margin.
    pub(crate) fn push_branch_sink(&mut self, def: usize, amp: f64, margin: f64) {
        self.graph.branch_sinks.push((def as u32, amp, margin));
    }

    /// Register an explicit curvature cap for `def` (used when a sink's
    /// amplification is a secant bound whose validity the edge list
    /// cannot carry, e.g. a squared term inside a branch condition).
    pub(crate) fn push_cap(&mut self, def: usize, cap: f64) {
        if cap.is_finite() {
            self.graph.caps.push((def as u32, cap));
        }
    }

    /// Register an output sink for `def`.
    pub(crate) fn push_out_sink(&mut self, def: usize, amp: f64) {
        self.graph.out_sinks.push((def as u32, amp));
    }

    /// Finalize the graph over `n_sites` dynamic instructions.
    ///
    /// # Panics
    /// Panics if deps were queued but never attached to a value (an
    /// instrumentation bug in the kernel).
    pub(crate) fn finish(mut self, n_sites: usize) -> Ddg {
        assert!(
            self.pending.is_empty(),
            "{} dangling dep(s) never attached to a traced value",
            self.pending.len()
        );
        self.graph.n_sites = n_sites;
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivative_table_matches_docs() {
        assert_eq!(OpKind::Linear.amplification(), (1.0, f64::INFINITY));
        assert_eq!(OpKind::Scale(-2.5).amplification(), (2.5, f64::INFINITY));
        assert_eq!(OpKind::DivNum(4.0).amplification(), (0.25, f64::INFINITY));
        let (amp, cap) = OpKind::DivDen { num: 3.0, den: 2.0 }.amplification();
        assert_eq!(amp, 1.5); // 2·3 / 4
        assert_eq!(cap, 1.0);
        assert_eq!(OpKind::Square(2.0).amplification(), (6.0, 2.0));
        assert_eq!(OpKind::Square(0.0).amplification(), (1.0, 1.0));
    }

    #[test]
    fn div_den_secant_bound_is_sound() {
        // |num/(den+δ) − num/den| ≤ amp·|δ| for |δ| ≤ cap, sampled
        let num = 3.0;
        let den = 2.0;
        let (amp, cap) = OpKind::DivDen { num, den }.amplification();
        for i in -100..=100 {
            let delta = cap * (i as f64) / 100.0;
            let err = (num / (den + delta) - num / den).abs();
            assert!(
                err <= amp * delta.abs() + 1e-12,
                "δ={delta}: {err} > {}",
                amp * delta.abs()
            );
        }
    }

    #[test]
    fn square_secant_bound_is_sound() {
        for x in [0.0, 0.3, -2.0, 17.5] {
            let (amp, cap) = OpKind::Square(x).amplification();
            for i in -100..=100 {
                let delta = cap * (i as f64) / 100.0;
                let err = ((x + delta) * (x + delta) - x * x).abs();
                assert!(
                    err <= amp * delta.abs() + 1e-12,
                    "x={x} δ={delta}: {err} > {}",
                    amp * delta.abs()
                );
            }
        }
    }

    #[test]
    fn builder_attaches_pending_to_next_value() {
        let mut b = DdgBuilder::new();
        b.push_dep(0, OpKind::Linear);
        b.push_dep(1, OpKind::Scale(2.0));
        b.flush_value(2);
        b.push_out_sink(2, 1.0);
        let g = b.finish(3);
        assert_eq!(g.defs, vec![0, 1]);
        assert_eq!(g.uses, vec![2, 2]);
        assert_eq!(g.amps, vec![1.0, 2.0]);
        assert_eq!(g.out_sinks, vec![(2, 1.0)]);
        assert!(g.is_instrumented());
    }

    #[test]
    fn uninstrumented_graph_detected() {
        let g = DdgBuilder::new().finish(10);
        assert!(!g.is_instrumented());
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    #[should_panic]
    fn dangling_dep_panics() {
        let mut b = DdgBuilder::new();
        b.push_dep(0, OpKind::Linear);
        let _ = b.finish(1);
    }

    #[test]
    fn static_quotient_aggregates() {
        let mut b = DdgBuilder::new();
        b.push_dep(0, OpKind::Scale(2.0));
        b.flush_value(2);
        b.push_dep(1, OpKind::Scale(5.0));
        b.flush_value(3);
        b.push_out_sink(3, 1.0);
        let g = b.finish(4);
        // sites 0,1 are static id 7; sites 2,3 are static id 9
        let q = g.static_quotient(&[7, 7, 9, 9]);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].def_id, 7);
        assert_eq!(q[0].use_id, 9);
        assert_eq!(q[0].count, 2);
        assert_eq!(q[0].max_amp, 5.0);
    }
}
