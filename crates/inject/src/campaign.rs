//! Campaign execution: single experiments, experiment batches, and the
//! exhaustive ground-truth campaign.
//!
//! Fault-injection campaigns are embarrassingly parallel — every
//! experiment is an independent re-execution of the kernel — so batches
//! fan out over Rayon. Kernels are immutable (`&dyn Kernel` is `Sync`)
//! and each worker owns its run's tracer, so there is no shared mutable
//! state at all.

use crate::experiment::Experiment;
use crate::extraction::ExtractionMode;
use crate::lockstep::{
    fold_propagation_lockstep, fold_propagation_lockstep_resumed, LockstepResume,
};
use crate::outcome::{Classifier, Outcome};
use crate::snapshot::{Snapshot, SnapshotStore};
use ftb_kernels::Kernel;
use ftb_trace::{
    propagation, CompactGolden, CompareScratch, FaultSpec, GoldenRun, Propagation, RecordMode,
    RunTrace, Tracer,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Per-worker scratch for streamed extraction, reused across every
    /// experiment a worker executes (no per-experiment heap traffic).
    static SCRATCH: RefCell<CompareScratch> = RefCell::new(CompareScratch::new());
}

/// Bound experiment runner: a kernel, its golden run (full and compact
/// forms), a classifier, and the propagation-extraction mode.
pub struct Injector<'k> {
    kernel: &'k dyn Kernel,
    golden: GoldenRun,
    /// Shared read-only golden buffer for the streamed extraction path.
    compact: CompactGolden,
    classifier: Classifier,
    extraction: ExtractionMode,
    /// Golden-run boundary snapshots; when present, outcome and
    /// propagation experiments resume from the latest snapshot preceding
    /// their fault site instead of re-executing from `t = 0`.
    snapshots: Option<SnapshotStore>,
    /// Allow contraction-certificate early exits
    /// ([`Kernel::masked_exit_bound`]) on snapshot-resumed runs. Off by
    /// default: a certified exit proves the *outcome code* (Masked) but
    /// reports an upper bound instead of the exact `output_err`, so only
    /// code-only consumers opt in.
    certified_exits: bool,
}

/// Why a snapshot-resumed run stopped at a boundary before completing.
enum EarlyExit {
    /// Live state became bit-identical to a stored golden boundary: the
    /// suffix replays the golden run exactly, `output_err` is exactly 0.
    Bitwise,
    /// The kernel's contraction certificate proved the final deviation
    /// cannot exceed this bound, which is within tolerance.
    Certified(f64),
}

impl<'k> Injector<'k> {
    /// Record the golden run and bind the classifier.
    pub fn new(kernel: &'k dyn Kernel, classifier: Classifier) -> Self {
        let golden = kernel.golden();
        Self::with_golden(kernel, golden, classifier)
    }

    /// Bind to an already-recorded golden run (avoids re-recording when
    /// several analyses share one kernel).
    pub fn with_golden(kernel: &'k dyn Kernel, golden: GoldenRun, classifier: Classifier) -> Self {
        let compact = CompactGolden::from_golden(&golden);
        Injector {
            kernel,
            golden,
            compact,
            classifier,
            extraction: ExtractionMode::default(),
            snapshots: None,
            certified_exits: false,
        }
    }

    /// Capture golden-run boundary snapshots (at most `max_snapshots`,
    /// evenly thinned) and serve every subsequent experiment from the
    /// snapshot immediately preceding its fault site. A no-op when the
    /// kernel is not snapshot-capable. Results stay bit-identical to
    /// from-scratch execution in every extraction mode — the skipped
    /// prefix is replayed from recorded golden state, not recomputed.
    pub fn with_snapshots(mut self, max_snapshots: usize) -> Self {
        self.snapshots = SnapshotStore::capture(self.kernel, &self.golden, max_snapshots);
        self
    }

    /// The snapshot store serving resumed experiments, if one was
    /// captured.
    pub fn snapshot_store(&self) -> Option<&SnapshotStore> {
        self.snapshots.as_ref()
    }

    /// Allow contraction-certificate early exits on snapshot-resumed
    /// runs: at each boundary the kernel may *prove*
    /// ([`Kernel::masked_exit_bound`]) that the final-output deviation
    /// cannot exceed the classifier tolerance, in which case the
    /// experiment exits immediately as `Masked` — the same outcome code
    /// from-scratch execution would produce.
    ///
    /// Outcome *codes* stay exactly identical to from-scratch execution;
    /// `Experiment::output_err` of a certificate-exited experiment is the
    /// certified upper bound (≤ tolerance) rather than the exact final
    /// deviation. Campaigns that compare experiment records byte-for-byte
    /// must leave this off; campaigns that consume outcome tables
    /// ([`ExhaustiveResult`]) lose nothing. Only effective with the L∞
    /// norm (what the certificates bound) and on snapshot-serving,
    /// certificate-capable kernels; otherwise a silent no-op.
    pub fn with_certified_exits(mut self) -> Self {
        self.certified_exits = true;
        self
    }

    /// The boundary-monitor certificate check: with certified exits
    /// enabled, measure the live state's deviation from the golden
    /// boundary and ask the kernel to bound the final-output deviation.
    /// Accepts only a finite bound within the classifier tolerance.
    fn certified_exit(
        &self,
        store: &SnapshotStore,
        cursor: usize,
        step: u64,
        arrays: &[&[f64]],
    ) -> Option<f64> {
        if !self.certified_exits || !matches!(self.classifier.norm, ftb_trace::norms::Norm::LInf) {
            return None;
        }
        let budget = self.classifier.tolerance;
        let (devs, mags) = store.state_deviations(cursor, arrays)?;
        let bound = self.kernel.masked_exit_bound(step, &devs, mags, budget)?;
        (bound.is_finite() && bound <= budget).then_some(bound)
    }

    /// The serving snapshot for a fault, if resumed execution applies:
    /// the store must exist and hold a boundary at or before the site.
    fn resume_for(&self, fault: FaultSpec) -> Option<(&SnapshotStore, &Snapshot)> {
        let store = self.snapshots.as_ref()?;
        let (_, snap) = store.for_site(fault.site)?;
        Some((store, snap))
    }

    /// Select the propagation-extraction path (default
    /// [`ExtractionMode::Streamed`]). All modes produce identical
    /// results; this is a pure performance/memory choice.
    ///
    /// # Panics
    /// Panics on a lockstep mode with zero capacity.
    pub fn with_extraction(mut self, mode: ExtractionMode) -> Self {
        if let ExtractionMode::Lockstep { capacity } = mode {
            assert!(capacity > 0, "lockstep capacity must be positive");
        }
        self.extraction = mode;
        self
    }

    /// The extraction mode in use.
    pub fn extraction(&self) -> ExtractionMode {
        self.extraction
    }

    /// The kernel under injection.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel
    }

    /// The golden reference run.
    pub fn golden(&self) -> &GoldenRun {
        &self.golden
    }

    /// The compact, read-only golden buffer (the streamed path's shared
    /// reference state).
    pub fn compact_golden(&self) -> &CompactGolden {
        &self.compact
    }

    /// The outcome classifier in use.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }

    /// Number of fault-injection sites.
    pub fn n_sites(&self) -> usize {
        self.golden.n_sites()
    }

    /// Bits per site.
    pub fn bits(&self) -> u8 {
        self.golden.precision.bits()
    }

    /// Run one experiment (outcome only — the fast path).
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    pub fn run_one(&self, site: usize, bit: u8) -> Experiment {
        assert!(site < self.n_sites(), "site {site} out of range");
        let fault = FaultSpec { site, bit };
        if let Some(e) = self.try_run_one_resumed(fault) {
            return e;
        }
        let run = self.kernel.run_injected(fault, RecordMode::OutputOnly);
        let (outcome, output_err) = self.classifier.classify(&self.golden, &run);
        Experiment {
            site,
            bit,
            injected_err: run.injected_err.unwrap_or(0.0),
            output_err,
            outcome,
        }
    }

    /// Outcome-only experiment resumed from the snapshot preceding its
    /// fault site, with two boundary early exits once the fault has
    /// executed: bitwise reconvergence (live state bit-identical to a
    /// stored golden boundary — the rest of the run would replay the
    /// golden suffix exactly, so the experiment is `(Masked, 0.0)`,
    /// precisely what from-scratch execution would classify) and, when
    /// enabled, the contraction certificate
    /// ([`Injector::with_certified_exits`]). `None` when no snapshot
    /// serves the site.
    fn try_run_one_resumed(&self, fault: FaultSpec) -> Option<Experiment> {
        let (store, snap) = self.resume_for(fault)?;
        let state = store.state(snap);
        let mut t = Tracer::inject(self.kernel.precision(), fault, RecordMode::OutputOnly)
            .resume_at(snap.cursor, snap.branch_count);
        let mut exit = None;
        let out = self
            .kernel
            .run_resumed(&mut t, &state, &mut |cursor, step, arrays| {
                if cursor <= fault.site {
                    return false;
                }
                if store.state_matches(cursor, arrays) {
                    exit = Some(EarlyExit::Bitwise);
                } else if let Some(b) = self.certified_exit(store, cursor, step, arrays) {
                    exit = Some(EarlyExit::Certified(b));
                }
                exit.is_some()
            });
        let run = t.finish(out);
        Some(self.classify_resumed(fault, &run, exit))
    }

    /// Classify a resumed run: either via the normal classifier (the run
    /// completed, so output/instruction-count/nonfinite state are exactly
    /// the from-scratch ones), or by early-exit synthesis.
    fn classify_resumed(
        &self,
        fault: FaultSpec,
        run: &RunTrace,
        exit: Option<EarlyExit>,
    ) -> Experiment {
        let (outcome, output_err) = match exit {
            Some(early) => {
                // kernels stop before the boundary callback when a traced
                // value went non-finite, so an early-exited run is clean
                debug_assert!(run.first_nonfinite.is_none());
                match early {
                    EarlyExit::Bitwise => (Outcome::Masked, 0.0),
                    EarlyExit::Certified(bound) => (Outcome::Masked, bound),
                }
            }
            None => self.classifier.classify(&self.golden, run),
        };
        Experiment {
            site: fault.site,
            bit: fault.bit,
            injected_err: run.injected_err.unwrap_or(0.0),
            output_err,
            outcome,
        }
    }

    /// Run one experiment with full tracing and extract its propagation
    /// data (used for masked experiments feeding Algorithm 1).
    pub fn run_one_traced(&self, site: usize, bit: u8) -> (Experiment, Propagation) {
        assert!(site < self.n_sites(), "site {site} out of range");
        let run = self
            .kernel
            .run_injected(FaultSpec { site, bit }, RecordMode::Full);
        let (outcome, output_err) = self.classifier.classify(&self.golden, &run);
        let prop = propagation(&self.golden, &run);
        (
            Experiment {
                site,
                bit,
                injected_err: run.injected_err.unwrap_or(0.0),
                output_err,
                outcome,
            },
            prop,
        )
    }

    /// Run one experiment through the streamed (one-sided comparing)
    /// path, folding the nonzero window deltas into `fold` when given.
    /// When the golden trace is branch-free (no possible late
    /// divergence), the fold runs *online* through a delta sink with zero
    /// scratch retention — the deltas of a slowly-decaying perturbation
    /// never materialise in memory.
    fn run_one_streamed(
        &self,
        fault: FaultSpec,
        mut fold: Option<&mut dyn FnMut(usize, f64)>,
    ) -> (Experiment, ftb_trace::StreamedWindow) {
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let online = self.compact.n_branches() == 0;
            let (run, window) = if online {
                match fold.take() {
                    // branch-free + caller fold: block-batched online
                    // sink, zero scratch retention
                    Some(f) => {
                        let mut batched = |block: &[(usize, f64)]| {
                            for &(site, d) in block {
                                f(site, d);
                            }
                        };
                        let mut t = Tracer::comparing(fault, &self.compact, &mut scratch)
                            .with_delta_sink(&mut batched);
                        let out = self.kernel.run(&mut t);
                        t.finish_compare(out)
                    }
                    // branch-free + no fold (the exhaustive-campaign hot
                    // path): only the window summary is accumulated —
                    // no delta is materialised or emitted at all
                    None => {
                        let mut t =
                            Tracer::comparing(fault, &self.compact, &mut scratch).summary_only();
                        let out = self.kernel.run(&mut t);
                        t.finish_compare(out)
                    }
                }
            } else {
                let mut t = Tracer::comparing(fault, &self.compact, &mut scratch);
                let out = self.kernel.run(&mut t);
                t.finish_compare(out)
            };
            let (outcome, output_err) = self.classifier.classify(&self.golden, &run);
            if let Some(f) = fold {
                for &(site, d) in scratch.deltas() {
                    f(site, d);
                }
            }
            (
                Experiment {
                    site: fault.site,
                    bit: fault.bit,
                    injected_err: run.injected_err.unwrap_or(0.0),
                    output_err,
                    outcome,
                },
                window,
            )
        })
    }

    /// Streamed experiment resumed from the snapshot preceding its fault
    /// site, with the same boundary early exits as
    /// [`Injector::try_run_one_resumed`]. The comparing tracer skips
    /// nothing semantically: dynamic instructions before the fault site
    /// are never compared on the from-scratch path either, and the
    /// preset branch index keeps divergence detection aligned with the
    /// golden branch stream.
    fn try_run_one_streamed_resumed(&self, fault: FaultSpec) -> Option<Experiment> {
        let (store, snap) = self.resume_for(fault)?;
        let state = store.state(snap);
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let mut exit = None;
            let (run, _window) = {
                let mut t = Tracer::comparing(fault, &self.compact, &mut scratch);
                if self.compact.n_branches() == 0 {
                    t = t.summary_only();
                }
                let mut t = t.resume_at(snap.cursor, snap.branch_count);
                let out = self
                    .kernel
                    .run_resumed(&mut t, &state, &mut |cursor, step, arrays| {
                        if cursor <= fault.site {
                            return false;
                        }
                        if store.state_matches(cursor, arrays) {
                            exit = Some(EarlyExit::Bitwise);
                        } else if let Some(b) = self.certified_exit(store, cursor, step, arrays) {
                            exit = Some(EarlyExit::Certified(b));
                        }
                        exit.is_some()
                    });
                t.finish_compare(out)
            };
            Some(self.classify_resumed(fault, &run, exit))
        })
    }

    /// Buffered experiment resumed from the snapshot preceding its fault
    /// site. The buffered contract includes a full propagation record, so
    /// there is no early exit; instead the recorded suffix is stitched
    /// onto the golden prefix — which the skipped execution would have
    /// reproduced bit-for-bit — before the comparison.
    fn try_run_one_buffered_resumed(&self, fault: FaultSpec) -> Option<(Experiment, Propagation)> {
        let (store, snap) = self.resume_for(fault)?;
        let state = store.state(snap);
        let mut t = Tracer::inject(self.kernel.precision(), fault, RecordMode::Full)
            .resume_at(snap.cursor, snap.branch_count);
        let out = self
            .kernel
            .run_resumed(&mut t, &state, &mut |_, _, _| false);
        let run = t.finish(out);

        let mut values = self.golden.values[..snap.cursor].to_vec();
        values.extend_from_slice(run.values.as_deref().unwrap_or(&[]));
        let mut branches = self.golden.branches[..snap.branch_count].to_vec();
        branches.extend_from_slice(run.branches.as_deref().unwrap_or(&[]));
        let stitched = RunTrace {
            values: Some(values),
            branches: Some(branches),
            ..run
        };
        let (outcome, output_err) = self.classifier.classify(&self.golden, &stitched);
        let prop = propagation(&self.golden, &stitched);
        Some((
            Experiment {
                site: fault.site,
                bit: fault.bit,
                injected_err: stitched.injected_err.unwrap_or(0.0),
                output_err,
                outcome,
            },
            prop,
        ))
    }

    /// Lockstep resume coordinates for a fault, if a snapshot serves it.
    fn lockstep_resume_for(&self, fault: FaultSpec) -> Option<LockstepResume> {
        let (store, snap) = self.resume_for(fault)?;
        Some(LockstepResume {
            cursor: snap.cursor,
            branch_count: snap.branch_count,
            state: store.state(snap),
        })
    }

    /// Run one propagation-extracting experiment via the configured
    /// extraction path, discarding the propagation fold.
    fn run_one_via(&self, fault: FaultSpec) -> Experiment {
        assert!(
            fault.site < self.n_sites(),
            "site {} out of range",
            fault.site
        );
        match self.extraction {
            ExtractionMode::Buffered => match self.try_run_one_buffered_resumed(fault) {
                Some((e, _)) => e,
                None => self.run_one_traced(fault.site, fault.bit).0,
            },
            ExtractionMode::Lockstep { capacity } => {
                let report = match self.lockstep_resume_for(fault) {
                    Some(rs) => fold_propagation_lockstep_resumed(
                        self.kernel,
                        fault,
                        &self.classifier,
                        capacity,
                        &rs,
                        |_, _| {},
                    ),
                    None => fold_propagation_lockstep(
                        self.kernel,
                        fault,
                        &self.classifier,
                        capacity,
                        |_, _| {},
                    ),
                };
                Experiment {
                    site: fault.site,
                    bit: fault.bit,
                    injected_err: report.injected_err.unwrap_or(0.0),
                    output_err: report.output_err,
                    outcome: report.outcome,
                }
            }
            ExtractionMode::Streamed => match self.try_run_one_streamed_resumed(fault) {
                Some(e) => e,
                None => self.run_one_streamed(fault, None).0,
            },
        }
    }

    /// Run one experiment and fold its propagation window (`(site, Δx)`
    /// pairs, zero deltas skipped) through the configured extraction
    /// path. All paths produce identical folds, experiments and window
    /// summaries — the dispatch is a pure performance choice.
    pub fn extract_propagation(
        &self,
        site: usize,
        bit: u8,
        mut fold: impl FnMut(usize, f64),
    ) -> ExtractionSummary {
        match self.extraction {
            ExtractionMode::Buffered => {
                let (experiment, prop) = self.run_one_traced(site, bit);
                let mut max_err = 0.0f64;
                for (s, d) in prop.iter() {
                    if d > 0.0 {
                        fold(s, d);
                        max_err = max_err.max(d);
                    }
                }
                ExtractionSummary {
                    experiment,
                    compare_len: prop.compare_len,
                    diverged: prop.diverged,
                    max_err,
                }
            }
            ExtractionMode::Lockstep { capacity } => {
                let report = fold_propagation_lockstep(
                    self.kernel,
                    FaultSpec { site, bit },
                    &self.classifier,
                    capacity,
                    fold,
                );
                ExtractionSummary {
                    experiment: Experiment {
                        site,
                        bit,
                        injected_err: report.injected_err.unwrap_or(0.0),
                        output_err: report.output_err,
                        outcome: report.outcome,
                    },
                    compare_len: report.compare_len,
                    diverged: report.diverged,
                    max_err: report.max_err,
                }
            }
            ExtractionMode::Streamed => {
                let (experiment, window) =
                    self.run_one_streamed(FaultSpec { site, bit }, Some(&mut fold));
                ExtractionSummary {
                    experiment,
                    compare_len: window.compare_len,
                    diverged: window.diverged,
                    max_err: window.max_err,
                }
            }
        }
    }

    /// Run a batch of experiments in parallel. Results are returned in
    /// input order. Outcome-only: no propagation extraction regardless of
    /// the configured mode (the fast path for samplers and Monte-Carlo).
    pub fn run_many(&self, faults: &[FaultSpec]) -> Vec<Experiment> {
        faults
            .par_iter()
            .map(|f| self.run_one(f.site, f.bit))
            .collect()
    }

    /// Run a batch of propagation-extracting experiments in parallel via
    /// the configured extraction path, in input order. This is what
    /// ledger campaigns execute: every experiment pays the extraction
    /// cost of its path, which is exactly what the benchmark suite's
    /// per-path throughput numbers compare.
    pub fn run_batch(&self, faults: &[FaultSpec]) -> Vec<Experiment> {
        faults.par_iter().map(|f| self.run_one_via(*f)).collect()
    }

    /// The exhaustive ground-truth campaign: every bit of every site
    /// (`n_sites × bits` kernel executions), parallel over sites, via the
    /// configured extraction path.
    pub fn run_exhaustive(&self) -> ExhaustiveResult {
        let bits = self.bits();
        let n = self.n_sites();
        let codes: Vec<u8> = (0..n)
            .into_par_iter()
            .flat_map_iter(|site| {
                (0..bits).map(move |bit| self.run_one_via(FaultSpec { site, bit }).outcome.code())
            })
            .collect();
        ExhaustiveResult {
            n_sites: n,
            bits,
            codes,
        }
    }

    /// Alias for [`Injector::run_exhaustive`] (the historical name).
    pub fn exhaustive(&self) -> ExhaustiveResult {
        self.run_exhaustive()
    }
}

/// Summary of one propagation-extracting experiment
/// ([`Injector::extract_propagation`]), identical across extraction
/// paths.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionSummary {
    /// The classified experiment.
    pub experiment: Experiment,
    /// Dynamic instructions `0 .. compare_len` were comparable.
    pub compare_len: usize,
    /// Whether control flow diverged from the golden run.
    pub diverged: bool,
    /// Largest perturbation inside the window (`0.0` if none).
    pub max_err: f64,
}

/// Dense outcome table of an exhaustive campaign: one code per
/// `(site, bit)` experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExhaustiveResult {
    /// Number of sites covered.
    pub n_sites: usize,
    /// Bits per site.
    pub bits: u8,
    /// Outcome codes, laid out `site * bits + bit`.
    pub codes: Vec<u8>,
}

impl ExhaustiveResult {
    /// Outcome of experiment `(site, bit)`.
    #[inline]
    pub fn outcome(&self, site: usize, bit: u8) -> Outcome {
        Outcome::from_code(self.codes[site * self.bits as usize + bit as usize])
    }

    /// Total number of experiments.
    pub fn n_experiments(&self) -> u64 {
        self.codes.len() as u64
    }

    /// Per-site SDC ratio: SDC outcomes over all experiments at the site
    /// (the paper's per-dynamic-instruction vulnerability metric).
    pub fn sdc_ratio_per_site(&self) -> Vec<f64> {
        let b = self.bits as usize;
        self.codes
            .chunks_exact(b)
            .map(|chunk| {
                let sdc = chunk.iter().filter(|&&c| c == Outcome::Sdc.code()).count();
                sdc as f64 / b as f64
            })
            .collect()
    }

    /// Overall `SDC_ratio = n_sdc / N` over the whole campaign.
    pub fn overall_sdc_ratio(&self) -> f64 {
        let sdc = self
            .codes
            .iter()
            .filter(|&&c| c == Outcome::Sdc.code())
            .count();
        sdc as f64 / self.codes.len() as f64
    }

    /// Counts of (masked, sdc, crash) outcomes.
    pub fn counts(&self) -> (u64, u64, u64) {
        let (mut m, mut s, mut c) = (0, 0, 0);
        for &code in &self.codes {
            match code {
                0 => m += 1,
                1 => s += 1,
                _ => c += 1,
            }
        }
        (m, s, c)
    }

    /// Iterate over every experiment as `(site, bit, outcome)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u8, Outcome)> + '_ {
        let b = self.bits as usize;
        self.codes
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i / b, (i % b) as u8, Outcome::from_code(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_kernels::{MatvecConfig, MatvecKernel};

    fn tiny_kernel() -> MatvecKernel {
        MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        })
    }

    fn injector(k: &MatvecKernel) -> Injector<'_> {
        Injector::new(k, Classifier::new(1e-6))
    }

    #[test]
    fn run_one_sign_flip_of_used_input_is_sdc() {
        let k = tiny_kernel();
        let inj = injector(&k);
        // sign-flip an element of A (site 0): y row 0 is corrupted
        let e = inj.run_one(0, 63);
        assert_eq!(e.outcome, Outcome::Sdc);
        assert!(e.injected_err > 0.0);
        assert!(e.output_err > 1e-6);
    }

    #[test]
    fn run_one_low_bit_is_masked() {
        let k = tiny_kernel();
        let inj = injector(&k);
        let e = inj.run_one(0, 0);
        assert_eq!(e.outcome, Outcome::Masked);
        assert!(e.output_err <= 1e-6);
    }

    #[test]
    fn traced_run_agrees_with_untraced() {
        let k = tiny_kernel();
        let inj = injector(&k);
        for (site, bit) in [(0usize, 63u8), (5, 0), (10, 52)] {
            let fast = inj.run_one(site, bit);
            let (slow, prop) = inj.run_one_traced(site, bit);
            assert_eq!(fast, slow, "record mode must not change the outcome");
            assert_eq!(prop.injected_at, site);
        }
    }

    #[test]
    fn run_many_preserves_order() {
        let k = tiny_kernel();
        let inj = injector(&k);
        let faults: Vec<FaultSpec> = (0..8).map(|s| FaultSpec { site: s, bit: 1 }).collect();
        let res = inj.run_many(&faults);
        assert_eq!(res.len(), 8);
        for (i, e) in res.iter().enumerate() {
            assert_eq!(e.site, i);
            assert_eq!(e.bit, 1);
        }
    }

    #[test]
    fn exhaustive_covers_every_pair_and_matches_run_one() {
        let k = tiny_kernel();
        let inj = injector(&k);
        let ex = inj.exhaustive();
        assert_eq!(ex.n_experiments(), inj.n_sites() as u64 * 64);
        // spot-check agreement with single runs
        for (site, bit) in [(0usize, 63u8), (3, 10), (17, 62)] {
            assert_eq!(ex.outcome(site, bit), inj.run_one(site, bit).outcome);
        }
        let (m, s, c) = ex.counts();
        assert_eq!(m + s + c, ex.n_experiments());
        assert!(m > 0, "some flips must be masked");
        assert!(s > 0, "some flips must be SDC");
    }

    #[test]
    fn per_site_ratios_average_to_overall() {
        let k = tiny_kernel();
        let inj = injector(&k);
        let ex = inj.exhaustive();
        let per = ex.sdc_ratio_per_site();
        assert_eq!(per.len(), inj.n_sites());
        let avg = per.iter().sum::<f64>() / per.len() as f64;
        assert!((avg - ex.overall_sdc_ratio()).abs() < 1e-12);
    }

    #[test]
    fn iter_layout_matches_outcome_accessor() {
        let k = tiny_kernel();
        let inj = injector(&k);
        let ex = inj.exhaustive();
        for (site, bit, o) in ex.iter().take(130) {
            assert_eq!(o, ex.outcome(site, bit));
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_site_panics() {
        let k = tiny_kernel();
        let inj = injector(&k);
        let _ = inj.run_one(1_000_000, 0);
    }

    #[test]
    fn run_batch_is_identical_across_extraction_modes() {
        use crate::extraction::ExtractionMode;
        let k = tiny_kernel();
        let faults: Vec<FaultSpec> = (0..12)
            .map(|i| FaultSpec {
                site: i,
                bit: (i * 7 % 64) as u8,
            })
            .collect();
        let buffered = injector(&k)
            .with_extraction(ExtractionMode::Buffered)
            .run_batch(&faults);
        let lockstep = injector(&k)
            .with_extraction(ExtractionMode::Lockstep { capacity: 8 })
            .run_batch(&faults);
        let streamed = injector(&k)
            .with_extraction(ExtractionMode::Streamed)
            .run_batch(&faults);
        assert_eq!(buffered, streamed);
        assert_eq!(buffered, lockstep);
    }

    #[test]
    fn extract_propagation_folds_identically_across_modes() {
        use crate::extraction::ExtractionMode;
        let k = tiny_kernel();
        let collect = |mode: ExtractionMode| {
            let inj = injector(&k).with_extraction(mode);
            let mut folded = Vec::new();
            let summary = inj.extract_propagation(3, 30, |s, d| folded.push((s, d)));
            (summary, folded)
        };
        let b = collect(ExtractionMode::Buffered);
        let l = collect(ExtractionMode::Lockstep { capacity: 4 });
        let s = collect(ExtractionMode::Streamed);
        assert!(b.0.max_err > 0.0);
        assert_eq!(b, s);
        assert_eq!(b, l);
    }

    #[test]
    fn snapshots_are_a_noop_for_incapable_kernels() {
        let k = tiny_kernel();
        let inj = injector(&k).with_snapshots(8);
        assert!(inj.snapshot_store().is_none());
        // and execution still works, from scratch
        let e = inj.run_one(0, 63);
        assert_eq!(e.outcome, Outcome::Sdc);
    }

    #[test]
    fn snapshot_resumed_experiments_match_from_scratch_in_every_mode() {
        use crate::extraction::ExtractionMode;
        use ftb_kernels::{JacobiConfig, JacobiKernel};
        let k = JacobiKernel::new(JacobiConfig {
            sweeps: 8,
            ..JacobiConfig::small()
        });
        let n = k.golden().n_sites();
        // sites spread over the whole trace (early ones have no serving
        // snapshot), bits spread over the word (low bits reconverge)
        let faults: Vec<FaultSpec> = (0..24)
            .map(|i| FaultSpec {
                site: i * (n - 1) / 23,
                bit: (i * 11 % 64) as u8,
            })
            .collect();
        for mode in [
            ExtractionMode::Buffered,
            ExtractionMode::Lockstep { capacity: 32 },
            ExtractionMode::Streamed,
        ] {
            let scratch = Injector::new(&k, Classifier::new(1e-6))
                .with_extraction(mode)
                .run_batch(&faults);
            let inj = Injector::new(&k, Classifier::new(1e-6))
                .with_extraction(mode)
                .with_snapshots(usize::MAX);
            assert!(inj.snapshot_store().is_some());
            assert_eq!(scratch, inj.run_batch(&faults), "{mode:?} diverged");
            // the outcome-only path resumes too
            assert_eq!(
                Injector::new(&k, Classifier::new(1e-6)).run_many(&faults),
                inj.run_many(&faults),
                "outcome-only path diverged"
            );
        }
    }

    #[test]
    fn certified_exits_preserve_outcome_codes() {
        use ftb_kernels::{JacobiConfig, JacobiKernel};
        let k = JacobiKernel::new(JacobiConfig {
            sweeps: 8,
            ..JacobiConfig::small()
        });
        let n = k.golden().n_sites();
        let faults: Vec<FaultSpec> = (0..48)
            .map(|i| FaultSpec {
                site: i * (n - 1) / 47,
                bit: (i * 13 % 64) as u8,
            })
            .collect();
        let scratch = Injector::new(&k, Classifier::new(1e-6)).run_batch(&faults);
        let inj = Injector::new(&k, Classifier::new(1e-6))
            .with_snapshots(usize::MAX)
            .with_certified_exits();
        let certified = inj.run_batch(&faults);
        // the certified contract: outcome codes identical to from-scratch,
        // and a certificate-exited experiment reports a bound ≤ tolerance
        for (s, c) in scratch.iter().zip(&certified) {
            assert_eq!((s.site, s.bit, s.outcome), (c.site, c.bit, c.outcome));
            if c.outcome == Outcome::Masked {
                assert!(c.output_err <= 1e-6);
            }
        }
        // ...and the certificate actually fired somewhere: at least one
        // masked experiment exited early with a bound instead of running
        // to completion for the exact deviation
        assert!(
            scratch
                .iter()
                .zip(&certified)
                .any(|(s, c)| s.output_err != c.output_err),
            "no certificate exit fired — the fast path is dead"
        );
        // the outcome-only path agrees
        let fast = inj.run_many(&faults);
        for (f, c) in fast.iter().zip(&certified) {
            assert_eq!(f.outcome, c.outcome);
        }
    }

    #[test]
    #[should_panic]
    fn zero_capacity_lockstep_mode_rejected() {
        use crate::extraction::ExtractionMode;
        let k = tiny_kernel();
        let _ = injector(&k).with_extraction(ExtractionMode::Lockstep { capacity: 0 });
    }
}
