//! Campaign execution: single experiments, experiment batches, and the
//! exhaustive ground-truth campaign.
//!
//! Fault-injection campaigns are embarrassingly parallel — every
//! experiment is an independent re-execution of the kernel — so batches
//! fan out over Rayon. Kernels are immutable (`&dyn Kernel` is `Sync`)
//! and each worker owns its run's tracer, so there is no shared mutable
//! state at all.

use crate::experiment::Experiment;
use crate::outcome::{Classifier, Outcome};
use ftb_kernels::Kernel;
use ftb_trace::{propagation, FaultSpec, GoldenRun, Propagation, RecordMode};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Bound experiment runner: a kernel, its golden run, and a classifier.
pub struct Injector<'k> {
    kernel: &'k dyn Kernel,
    golden: GoldenRun,
    classifier: Classifier,
}

impl<'k> Injector<'k> {
    /// Record the golden run and bind the classifier.
    pub fn new(kernel: &'k dyn Kernel, classifier: Classifier) -> Self {
        let golden = kernel.golden();
        Injector {
            kernel,
            golden,
            classifier,
        }
    }

    /// Bind to an already-recorded golden run (avoids re-recording when
    /// several analyses share one kernel).
    pub fn with_golden(kernel: &'k dyn Kernel, golden: GoldenRun, classifier: Classifier) -> Self {
        Injector {
            kernel,
            golden,
            classifier,
        }
    }

    /// The golden reference run.
    pub fn golden(&self) -> &GoldenRun {
        &self.golden
    }

    /// The outcome classifier in use.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }

    /// Number of fault-injection sites.
    pub fn n_sites(&self) -> usize {
        self.golden.n_sites()
    }

    /// Bits per site.
    pub fn bits(&self) -> u8 {
        self.golden.precision.bits()
    }

    /// Run one experiment (outcome only — the fast path).
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    pub fn run_one(&self, site: usize, bit: u8) -> Experiment {
        assert!(site < self.n_sites(), "site {site} out of range");
        let run = self
            .kernel
            .run_injected(FaultSpec { site, bit }, RecordMode::OutputOnly);
        let (outcome, output_err) = self.classifier.classify(&self.golden, &run);
        Experiment {
            site,
            bit,
            injected_err: run.injected_err.unwrap_or(0.0),
            output_err,
            outcome,
        }
    }

    /// Run one experiment with full tracing and extract its propagation
    /// data (used for masked experiments feeding Algorithm 1).
    pub fn run_one_traced(&self, site: usize, bit: u8) -> (Experiment, Propagation) {
        assert!(site < self.n_sites(), "site {site} out of range");
        let run = self
            .kernel
            .run_injected(FaultSpec { site, bit }, RecordMode::Full);
        let (outcome, output_err) = self.classifier.classify(&self.golden, &run);
        let prop = propagation(&self.golden, &run);
        (
            Experiment {
                site,
                bit,
                injected_err: run.injected_err.unwrap_or(0.0),
                output_err,
                outcome,
            },
            prop,
        )
    }

    /// Run a batch of experiments in parallel. Results are returned in
    /// input order.
    pub fn run_many(&self, faults: &[FaultSpec]) -> Vec<Experiment> {
        faults
            .par_iter()
            .map(|f| self.run_one(f.site, f.bit))
            .collect()
    }

    /// The exhaustive ground-truth campaign: every bit of every site
    /// (`n_sites × bits` kernel executions), parallel over sites.
    pub fn exhaustive(&self) -> ExhaustiveResult {
        let bits = self.bits();
        let n = self.n_sites();
        let codes: Vec<u8> = (0..n)
            .into_par_iter()
            .flat_map_iter(|site| (0..bits).map(move |bit| self.run_one(site, bit).outcome.code()))
            .collect();
        ExhaustiveResult {
            n_sites: n,
            bits,
            codes,
        }
    }
}

/// Dense outcome table of an exhaustive campaign: one code per
/// `(site, bit)` experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExhaustiveResult {
    /// Number of sites covered.
    pub n_sites: usize,
    /// Bits per site.
    pub bits: u8,
    /// Outcome codes, laid out `site * bits + bit`.
    pub codes: Vec<u8>,
}

impl ExhaustiveResult {
    /// Outcome of experiment `(site, bit)`.
    #[inline]
    pub fn outcome(&self, site: usize, bit: u8) -> Outcome {
        Outcome::from_code(self.codes[site * self.bits as usize + bit as usize])
    }

    /// Total number of experiments.
    pub fn n_experiments(&self) -> u64 {
        self.codes.len() as u64
    }

    /// Per-site SDC ratio: SDC outcomes over all experiments at the site
    /// (the paper's per-dynamic-instruction vulnerability metric).
    pub fn sdc_ratio_per_site(&self) -> Vec<f64> {
        let b = self.bits as usize;
        self.codes
            .chunks_exact(b)
            .map(|chunk| {
                let sdc = chunk.iter().filter(|&&c| c == Outcome::Sdc.code()).count();
                sdc as f64 / b as f64
            })
            .collect()
    }

    /// Overall `SDC_ratio = n_sdc / N` over the whole campaign.
    pub fn overall_sdc_ratio(&self) -> f64 {
        let sdc = self
            .codes
            .iter()
            .filter(|&&c| c == Outcome::Sdc.code())
            .count();
        sdc as f64 / self.codes.len() as f64
    }

    /// Counts of (masked, sdc, crash) outcomes.
    pub fn counts(&self) -> (u64, u64, u64) {
        let (mut m, mut s, mut c) = (0, 0, 0);
        for &code in &self.codes {
            match code {
                0 => m += 1,
                1 => s += 1,
                _ => c += 1,
            }
        }
        (m, s, c)
    }

    /// Iterate over every experiment as `(site, bit, outcome)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u8, Outcome)> + '_ {
        let b = self.bits as usize;
        self.codes
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i / b, (i % b) as u8, Outcome::from_code(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_kernels::{MatvecConfig, MatvecKernel};

    fn tiny_kernel() -> MatvecKernel {
        MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        })
    }

    fn injector(k: &MatvecKernel) -> Injector<'_> {
        Injector::new(k, Classifier::new(1e-6))
    }

    #[test]
    fn run_one_sign_flip_of_used_input_is_sdc() {
        let k = tiny_kernel();
        let inj = injector(&k);
        // sign-flip an element of A (site 0): y row 0 is corrupted
        let e = inj.run_one(0, 63);
        assert_eq!(e.outcome, Outcome::Sdc);
        assert!(e.injected_err > 0.0);
        assert!(e.output_err > 1e-6);
    }

    #[test]
    fn run_one_low_bit_is_masked() {
        let k = tiny_kernel();
        let inj = injector(&k);
        let e = inj.run_one(0, 0);
        assert_eq!(e.outcome, Outcome::Masked);
        assert!(e.output_err <= 1e-6);
    }

    #[test]
    fn traced_run_agrees_with_untraced() {
        let k = tiny_kernel();
        let inj = injector(&k);
        for (site, bit) in [(0usize, 63u8), (5, 0), (10, 52)] {
            let fast = inj.run_one(site, bit);
            let (slow, prop) = inj.run_one_traced(site, bit);
            assert_eq!(fast, slow, "record mode must not change the outcome");
            assert_eq!(prop.injected_at, site);
        }
    }

    #[test]
    fn run_many_preserves_order() {
        let k = tiny_kernel();
        let inj = injector(&k);
        let faults: Vec<FaultSpec> = (0..8).map(|s| FaultSpec { site: s, bit: 1 }).collect();
        let res = inj.run_many(&faults);
        assert_eq!(res.len(), 8);
        for (i, e) in res.iter().enumerate() {
            assert_eq!(e.site, i);
            assert_eq!(e.bit, 1);
        }
    }

    #[test]
    fn exhaustive_covers_every_pair_and_matches_run_one() {
        let k = tiny_kernel();
        let inj = injector(&k);
        let ex = inj.exhaustive();
        assert_eq!(ex.n_experiments(), inj.n_sites() as u64 * 64);
        // spot-check agreement with single runs
        for (site, bit) in [(0usize, 63u8), (3, 10), (17, 62)] {
            assert_eq!(ex.outcome(site, bit), inj.run_one(site, bit).outcome);
        }
        let (m, s, c) = ex.counts();
        assert_eq!(m + s + c, ex.n_experiments());
        assert!(m > 0, "some flips must be masked");
        assert!(s > 0, "some flips must be SDC");
    }

    #[test]
    fn per_site_ratios_average_to_overall() {
        let k = tiny_kernel();
        let inj = injector(&k);
        let ex = inj.exhaustive();
        let per = ex.sdc_ratio_per_site();
        assert_eq!(per.len(), inj.n_sites());
        let avg = per.iter().sum::<f64>() / per.len() as f64;
        assert!((avg - ex.overall_sdc_ratio()).abs() < 1e-12);
    }

    #[test]
    fn iter_layout_matches_outcome_accessor() {
        let k = tiny_kernel();
        let inj = injector(&k);
        let ex = inj.exhaustive();
        for (site, bit, o) in ex.iter().take(130) {
            assert_eq!(o, ex.outcome(site, bit));
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_site_panics() {
        let k = tiny_kernel();
        let inj = injector(&k);
        let _ = inj.run_one(1_000_000, 0);
    }
}
