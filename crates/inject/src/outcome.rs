//! Outcome classification of fault-injected runs.

use ftb_trace::norms::Norm;
use ftb_trace::{GoldenRun, RunTrace};
use serde::{Deserialize, Serialize};

/// Why a run is considered crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrashKind {
    /// A non-finite value was produced (the NaN-exception model — the
    /// paper's example: "a variable value could be corrupted such that it
    /// causes a NaN exception").
    NonFinite,
    /// The run executed far more dynamic instructions than the golden run
    /// (an iterative solver spinning without converging).
    Hang,
}

/// The paper's three outcome categories (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Output acceptable within the domain tolerance.
    Masked,
    /// Silent data corruption: normal termination, unacceptable output.
    Sdc,
    /// Abnormal termination.
    Crash(CrashKind),
}

impl Outcome {
    /// Compact code for dense campaign storage (2 bits of information).
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            Outcome::Masked => 0,
            Outcome::Sdc => 1,
            Outcome::Crash(CrashKind::NonFinite) => 2,
            Outcome::Crash(CrashKind::Hang) => 3,
        }
    }

    /// Inverse of [`Outcome::code`].
    ///
    /// # Panics
    /// Panics on codes ≥ 4.
    #[inline]
    pub fn from_code(c: u8) -> Self {
        match c {
            0 => Outcome::Masked,
            1 => Outcome::Sdc,
            2 => Outcome::Crash(CrashKind::NonFinite),
            3 => Outcome::Crash(CrashKind::Hang),
            _ => panic!("invalid outcome code {c}"),
        }
    }

    /// Whether this outcome is Masked.
    #[inline]
    pub fn is_masked(self) -> bool {
        matches!(self, Outcome::Masked)
    }

    /// Whether this outcome is SDC.
    #[inline]
    pub fn is_sdc(self) -> bool {
        matches!(self, Outcome::Sdc)
    }

    /// Whether this outcome is a crash of either kind.
    #[inline]
    pub fn is_crash(self) -> bool {
        matches!(self, Outcome::Crash(_))
    }
}

/// Classifies run outcomes against a golden run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Classifier {
    /// The domain user's output tolerance `T`: outputs within `T` under
    /// `norm` are acceptable (Masked).
    pub tolerance: f64,
    /// Output-comparison norm (the paper uses L∞).
    pub norm: Norm,
    /// A run executing more than `hang_factor × golden` dynamic
    /// instructions is a crash (hang). Set to `f64::INFINITY` to disable.
    pub hang_factor: f64,
    /// Whether a produced non-finite value is a crash (the NaN-exception
    /// model). When `false`, non-finite outputs classify as SDC via the
    /// norm (which reports `∞` distance for them).
    pub trap_nonfinite: bool,
}

impl Classifier {
    /// A classifier with the paper's defaults: L∞ norm, NaN trap on,
    /// hang bound 4× golden length.
    pub fn new(tolerance: f64) -> Self {
        Classifier {
            tolerance,
            norm: Norm::LInf,
            hang_factor: 4.0,
            trap_nonfinite: true,
        }
    }

    /// Classify a fault-injected run. Returns the outcome and the output
    /// error under the classifier's norm.
    pub fn classify(&self, golden: &GoldenRun, run: &RunTrace) -> (Outcome, f64) {
        let dist = self.norm.distance(&golden.output, &run.output);
        if self.trap_nonfinite && run.first_nonfinite.is_some() {
            return (Outcome::Crash(CrashKind::NonFinite), dist);
        }
        if (run.n_dynamic as f64) > self.hang_factor * golden.n_dynamic as f64 {
            return (Outcome::Crash(CrashKind::Hang), dist);
        }
        if dist <= self.tolerance {
            (Outcome::Masked, dist)
        } else {
            (Outcome::Sdc, dist)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_trace::{Precision, StaticId, Tracer};

    fn golden_of(vals: &[f64]) -> GoldenRun {
        let mut t = Tracer::golden(Precision::F64);
        for &v in vals {
            t.value(StaticId(0), v);
        }
        t.finish_golden(vals.to_vec())
    }

    fn run_of(vals: &[f64]) -> RunTrace {
        RunTrace {
            values: None,
            branches: None,
            output: vals.to_vec(),
            n_dynamic: vals.len(),
            first_nonfinite: None,
            fault: None,
            injected_err: Some(0.0),
        }
    }

    #[test]
    fn within_tolerance_is_masked() {
        let g = golden_of(&[1.0, 2.0]);
        let c = Classifier::new(1e-6);
        let (o, d) = c.classify(&g, &run_of(&[1.0 + 1e-7, 2.0]));
        assert_eq!(o, Outcome::Masked);
        assert!(d > 0.0 && d < 1e-6);
    }

    #[test]
    fn beyond_tolerance_is_sdc() {
        let g = golden_of(&[1.0, 2.0]);
        let c = Classifier::new(1e-6);
        let (o, _) = c.classify(&g, &run_of(&[1.1, 2.0]));
        assert_eq!(o, Outcome::Sdc);
    }

    #[test]
    fn exactly_at_tolerance_is_masked() {
        let g = golden_of(&[1.0]);
        let c = Classifier::new(0.5);
        let (o, _) = c.classify(&g, &run_of(&[1.5]));
        assert_eq!(o, Outcome::Masked, "tolerance is inclusive (ε ≤ T)");
    }

    #[test]
    fn nonfinite_trap_is_crash() {
        let g = golden_of(&[1.0]);
        let c = Classifier::new(1e-6);
        let mut r = run_of(&[1.0]);
        r.first_nonfinite = Some(0);
        let (o, _) = c.classify(&g, &r);
        assert_eq!(o, Outcome::Crash(CrashKind::NonFinite));
    }

    #[test]
    fn trap_disabled_classifies_nan_output_as_sdc() {
        let g = golden_of(&[1.0]);
        let mut c = Classifier::new(1e-6);
        c.trap_nonfinite = false;
        let mut r = run_of(&[f64::NAN]);
        r.first_nonfinite = Some(0);
        let (o, d) = c.classify(&g, &r);
        assert_eq!(o, Outcome::Sdc);
        assert_eq!(d, f64::INFINITY);
    }

    #[test]
    fn runaway_execution_is_hang() {
        let g = golden_of(&[1.0]);
        let c = Classifier::new(1e-6);
        let mut r = run_of(&[1.0]);
        r.n_dynamic = 100;
        let (o, _) = c.classify(&g, &r);
        assert_eq!(o, Outcome::Crash(CrashKind::Hang));
    }

    #[test]
    fn output_length_mismatch_is_sdc() {
        let g = golden_of(&[1.0, 2.0]);
        let c = Classifier::new(1e-6);
        let (o, d) = c.classify(&g, &run_of(&[1.0]));
        assert_eq!(o, Outcome::Sdc);
        assert_eq!(d, f64::INFINITY);
    }

    #[test]
    fn code_roundtrip() {
        for o in [
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::Crash(CrashKind::NonFinite),
            Outcome::Crash(CrashKind::Hang),
        ] {
            assert_eq!(Outcome::from_code(o.code()), o);
        }
    }

    #[test]
    fn predicates() {
        assert!(Outcome::Masked.is_masked());
        assert!(Outcome::Sdc.is_sdc());
        assert!(Outcome::Crash(CrashKind::Hang).is_crash());
        assert!(!Outcome::Masked.is_sdc());
    }

    #[test]
    #[should_panic]
    fn bad_code_panics() {
        let _ = Outcome::from_code(7);
    }
}
