//! Serial-vs-parallel outcome characterization.
//!
//! The paper's campaigns are embarrassingly parallel, and the whole
//! analysis stack leans on that: a fault-injection outcome must not
//! depend on how many workers executed the campaign. This module makes
//! that claim *measurable*. It re-runs the exhaustive campaign under
//! dedicated Rayon pools of different sizes (1, 4, 8 threads by
//! default), builds a per-site outcome histogram (Masked/SDC/Crash
//! counts over the bit axis) for each pool size, and compares the
//! per-site distributions across pool sizes with the total-variation
//! distance
//!
//! ```text
//! TVD(p, q) = ½ · Σ_o |p(o) − q(o)|,   o ∈ {Masked, SDC, Crash}
//! ```
//!
//! Because every experiment is an independent re-execution over
//! immutable inputs, the expected TVD is exactly zero for every site —
//! a nonzero distance is a reproducibility bug (shared mutable state, a
//! reduction-order dependence, a data race), and the report's
//! `deterministic` flag is designed to be gated in CI.

use crate::campaign::{ExhaustiveResult, Injector};
use crate::outcome::Outcome;
use serde::{Deserialize, Serialize};

/// Outcome histogram of one site over the bit axis; the three counts
/// sum to the word width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SiteHistogram {
    /// Masked outcomes at this site.
    pub masked: u32,
    /// SDC outcomes at this site.
    pub sdc: u32,
    /// Crash outcomes at this site.
    pub crash: u32,
}

impl SiteHistogram {
    /// Total experiments at the site.
    pub fn total(&self) -> u32 {
        self.masked + self.sdc + self.crash
    }
}

/// One pool size's complete campaign summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadRun {
    /// Rayon pool size the campaign ran under.
    pub threads: usize,
    /// Total masked outcomes.
    pub masked: u64,
    /// Total SDC outcomes.
    pub sdc: u64,
    /// Total crash outcomes.
    pub crash: u64,
    /// Per-site outcome histograms (`n_sites` entries).
    pub histograms: Vec<SiteHistogram>,
}

/// Distribution distance between two pool sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairDelta {
    /// Smaller pool of the pair.
    pub threads_a: usize,
    /// Larger pool of the pair.
    pub threads_b: usize,
    /// Largest per-site total-variation distance.
    pub max_tvd: f64,
    /// Mean per-site total-variation distance.
    pub mean_tvd: f64,
    /// Number of sites whose outcome distributions differ at all.
    pub diverging_sites: usize,
    /// The site with the largest distance, when any diverge.
    pub worst_site: Option<usize>,
}

/// The full serial-vs-parallel characterization artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizeReport {
    /// Kernel under test.
    pub kernel: String,
    /// Classifier tolerance the outcomes were judged against.
    pub tolerance: f64,
    /// Fault-injection sites per campaign.
    pub n_sites: usize,
    /// Bits per site.
    pub bits: u8,
    /// Experiments per campaign (`n_sites × bits`).
    pub n_experiments: u64,
    /// Pool sizes exercised, in input order.
    pub thread_counts: Vec<usize>,
    /// One campaign summary per pool size.
    pub runs: Vec<ThreadRun>,
    /// Pairwise distances between consecutive-larger pool pairs
    /// (every pool size compared against the first, serial, one —
    /// plus each adjacent pair).
    pub pairs: Vec<PairDelta>,
    /// True iff every pairwise per-site distance is exactly zero: the
    /// campaign outcome is independent of worker count. This is the
    /// CI-gated reproducibility bit.
    pub deterministic: bool,
}

/// Per-site outcome histograms of an exhaustive table.
fn histograms(ex: &ExhaustiveResult) -> Vec<SiteHistogram> {
    let b = ex.bits as usize;
    ex.codes
        .chunks_exact(b)
        .map(|chunk| {
            let mut h = SiteHistogram::default();
            for &code in chunk {
                match code {
                    c if c == Outcome::Masked.code() => h.masked += 1,
                    c if c == Outcome::Sdc.code() => h.sdc += 1,
                    _ => h.crash += 1,
                }
            }
            h
        })
        .collect()
}

/// Total-variation distance between two site histograms over the same
/// bit count: `½ Σ |p − q|` with counts normalised to probabilities.
pub fn site_tvd(a: &SiteHistogram, b: &SiteHistogram, bits: u8) -> f64 {
    let n = f64::from(bits);
    0.5 * ([(a.masked, b.masked), (a.sdc, b.sdc), (a.crash, b.crash)]
        .iter()
        .map(|&(x, y)| (f64::from(x) / n - f64::from(y) / n).abs())
        .sum::<f64>())
}

fn pair_delta(a: &ThreadRun, b: &ThreadRun, bits: u8) -> PairDelta {
    let mut max_tvd = 0.0f64;
    let mut sum = 0.0f64;
    let mut diverging = 0usize;
    let mut worst = None;
    for (site, (ha, hb)) in a.histograms.iter().zip(&b.histograms).enumerate() {
        let d = site_tvd(ha, hb, bits);
        sum += d;
        if d > 0.0 {
            diverging += 1;
        }
        if d > max_tvd {
            max_tvd = d;
            worst = Some(site);
        }
    }
    let n = a.histograms.len().max(1);
    PairDelta {
        threads_a: a.threads,
        threads_b: b.threads,
        max_tvd,
        mean_tvd: sum / n as f64,
        diverging_sites: diverging,
        worst_site: worst,
    }
}

/// Run the exhaustive campaign once per pool size and compare the
/// per-site outcome distributions.
///
/// Each campaign runs inside its own dedicated
/// `rayon::ThreadPoolBuilder` pool, so the ambient global pool never
/// leaks into the measurement. The injector (and its recorded golden
/// run) is shared across pool sizes — only the execution schedule
/// changes between runs, which is exactly the variable under test.
///
/// # Panics
/// Panics if `thread_counts` is empty, contains a zero, or a pool
/// fails to build.
pub fn characterize(injector: &Injector<'_>, thread_counts: &[usize]) -> CharacterizeReport {
    assert!(!thread_counts.is_empty(), "need at least one pool size");
    let bits = injector.bits();
    let runs: Vec<ThreadRun> = thread_counts
        .iter()
        .map(|&threads| {
            assert!(threads > 0, "pool size must be at least 1");
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("building a characterization pool");
            let ex = pool.install(|| injector.run_exhaustive());
            let (masked, sdc, crash) = ex.counts();
            ThreadRun {
                threads,
                masked,
                sdc,
                crash,
                histograms: histograms(&ex),
            }
        })
        .collect();

    // Compare everything against the serial baseline (the first entry),
    // plus adjacent pairs — for [1, 4, 8] that yields 1↔4, 1↔8, 4↔8.
    let mut pairs = Vec::new();
    for i in 1..runs.len() {
        pairs.push(pair_delta(&runs[0], &runs[i], bits));
        if i >= 2 {
            pairs.push(pair_delta(&runs[i - 1], &runs[i], bits));
        }
    }
    let deterministic = pairs.iter().all(|p| p.max_tvd == 0.0);

    CharacterizeReport {
        kernel: injector.kernel().name().to_string(),
        tolerance: injector.classifier().tolerance,
        n_sites: injector.n_sites(),
        bits,
        n_experiments: injector.n_sites() as u64 * u64::from(bits),
        thread_counts: thread_counts.to_vec(),
        runs,
        pairs,
        deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Classifier;
    use ftb_kernels::{MatvecConfig, MatvecKernel};

    fn tiny_kernel() -> MatvecKernel {
        MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        })
    }

    #[test]
    fn pool_size_does_not_change_outcomes() {
        let k = tiny_kernel();
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let r = characterize(&inj, &[1, 2, 4]);
        assert_eq!(r.runs.len(), 3);
        assert_eq!(r.pairs.len(), 3, "1↔2, 1↔4, 2↔4");
        assert!(r.deterministic, "{r:?}");
        for p in &r.pairs {
            assert_eq!(p.max_tvd, 0.0);
            assert_eq!(p.diverging_sites, 0);
            assert_eq!(p.worst_site, None);
        }
        // all pool sizes agree on the aggregate counts too
        for w in r.runs.windows(2) {
            assert_eq!(
                (w[0].masked, w[0].sdc, w[0].crash),
                (w[1].masked, w[1].sdc, w[1].crash)
            );
        }
    }

    #[test]
    fn histograms_partition_the_bit_axis() {
        let k = tiny_kernel();
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let r = characterize(&inj, &[1]);
        assert_eq!(r.n_sites, inj.n_sites());
        assert_eq!(r.n_experiments, inj.n_sites() as u64 * 64);
        let run = &r.runs[0];
        assert_eq!(run.histograms.len(), r.n_sites);
        for h in &run.histograms {
            assert_eq!(h.total(), u32::from(r.bits));
        }
        let total: u64 = run.histograms.iter().map(|h| u64::from(h.total())).sum();
        assert_eq!(total, r.n_experiments);
        assert_eq!(run.masked + run.sdc + run.crash, r.n_experiments);
    }

    fn h(masked: u32, sdc: u32, crash: u32) -> SiteHistogram {
        SiteHistogram { masked, sdc, crash }
    }

    #[test]
    fn tvd_is_half_l1_on_probabilities() {
        // identical → 0
        assert_eq!(site_tvd(&h(32, 16, 16), &h(32, 16, 16), 64), 0.0);
        // disjoint → 1
        assert_eq!(site_tvd(&h(64, 0, 0), &h(0, 64, 0), 64), 1.0);
        // half the mass moved → ½
        let d = site_tvd(&h(64, 0, 0), &h(32, 32, 0), 64);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn synthetic_divergence_is_detected() {
        let a = ThreadRun {
            threads: 1,
            masked: 64,
            sdc: 0,
            crash: 0,
            histograms: vec![h(64, 0, 0), h(64, 0, 0)],
        };
        let mut b = a.clone();
        b.threads = 8;
        b.histograms[1] = h(48, 16, 0); // a quarter of site 1 flipped to SDC
        let p = pair_delta(&a, &b, 64);
        assert_eq!(p.diverging_sites, 1);
        assert_eq!(p.worst_site, Some(1));
        assert!((p.max_tvd - 0.25).abs() < 1e-12);
        assert!((p.mean_tvd - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_pool_size_rejected() {
        let k = tiny_kernel();
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let _ = characterize(&inj, &[0]);
    }
}
