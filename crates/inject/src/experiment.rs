//! Experiment records.

use crate::outcome::Outcome;
use serde::{Deserialize, Serialize};

/// One completed fault-injection experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Dynamic-instruction index the fault was injected at.
    pub site: usize,
    /// Bit that was flipped.
    pub bit: u8,
    /// Magnitude of the injected perturbation `|flip(v) − v|`
    /// (`+∞` when the flip itself produced a non-finite value).
    #[serde(with = "ftb_trace::serde_float")]
    pub injected_err: f64,
    /// Error of the final output under the classifier's norm.
    #[serde(with = "ftb_trace::serde_float")]
    pub output_err: f64,
    /// Classified outcome.
    pub outcome: Outcome,
}

impl Experiment {
    /// Sort key grouping experiments by site then bit.
    #[inline]
    pub fn key(&self) -> (usize, u8) {
        (self.site, self.bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_orders_by_site_then_bit() {
        let a = Experiment {
            site: 1,
            bit: 5,
            injected_err: 0.0,
            output_err: 0.0,
            outcome: Outcome::Masked,
        };
        let b = Experiment {
            site: 1,
            bit: 9,
            ..a
        };
        let c = Experiment {
            site: 2,
            bit: 0,
            ..a
        };
        assert!(a.key() < b.key());
        assert!(b.key() < c.key());
    }

    #[test]
    fn serde_roundtrip() {
        let e = Experiment {
            site: 42,
            bit: 63,
            injected_err: 2.0,
            output_err: 0.5,
            outcome: Outcome::Sdc,
        };
        let s = serde_json::to_string(&e).unwrap();
        let back: Experiment = serde_json::from_str(&s).unwrap();
        assert_eq!(e, back);
    }
}
