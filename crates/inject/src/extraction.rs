//! Extraction-path selection for propagation-extracting campaigns.
//!
//! The paper's §5 identifies the cost of propagation extraction as the
//! limit on campaign scale: either `8 bytes × dynamic instructions` of
//! golden state per faulty trace (buffering), or a duplicated golden
//! computation per experiment (lockstep). This workspace implements both
//! and a third, one-sided path:
//!
//! * [`ExtractionMode::Buffered`] — the faulty run records its full value
//!   and branch streams ([`ftb_trace::RecordMode::Full`]); propagation is
//!   extracted afterwards by [`ftb_trace::propagation`]. Reference
//!   semantics; `O(dynamic instructions)` fresh heap per experiment.
//! * [`ExtractionMode::Lockstep`] — golden and faulty executions run
//!   concurrently, streaming into bounded channels
//!   ([`crate::lockstep`]). `O(capacity)` memory, but two extra threads
//!   and a full golden re-execution per experiment.
//! * [`ExtractionMode::Streamed`] — the faulty run compares itself
//!   against the shared read-only [`ftb_trace::CompactGolden`] *while it
//!   executes* ([`ftb_trace::Tracer::comparing`]): no second thread, no
//!   channels, no per-experiment trace buffer — only a per-worker scratch
//!   of nonzero `(site, Δx)` pairs, reused across experiments. The
//!   default.
//!
//! All three produce bit-identical [`ftb_trace::Propagation`] folds,
//! outcomes and error magnitudes (proven by
//! `tests/tests/extraction_equivalence.rs`), so the mode is a pure
//! performance choice and is deliberately **not** part of the campaign
//! ledger binding: ledgers written under different modes are
//! byte-identical and freely resumable across modes.

use std::fmt;

/// How propagation data is extracted from a faulty execution. See the
/// module docs for the trade-offs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtractionMode {
    /// Record the full faulty trace, compare afterwards (paper §2.2).
    Buffered,
    /// Computation duplication over bounded channels (paper §5).
    Lockstep {
        /// Per-stream channel capacity; bounds peak extraction memory.
        /// Must be positive.
        capacity: usize,
    },
    /// One-sided streaming comparison against the shared compact golden
    /// trace (the fast path, and the default).
    #[default]
    Streamed,
}

impl ExtractionMode {
    /// The CLI names, in display order.
    pub const NAMES: [&'static str; 3] = ["buffered", "lockstep", "streamed"];

    /// Parse a CLI name; `capacity` supplies the lockstep channel bound.
    /// Returns `None` for an unknown name or a zero lockstep capacity.
    pub fn from_name(name: &str, capacity: usize) -> Option<Self> {
        match name {
            "buffered" => Some(ExtractionMode::Buffered),
            "lockstep" if capacity > 0 => Some(ExtractionMode::Lockstep { capacity }),
            "streamed" => Some(ExtractionMode::Streamed),
            _ => None,
        }
    }

    /// The CLI name of this mode.
    pub fn name(&self) -> &'static str {
        match self {
            ExtractionMode::Buffered => "buffered",
            ExtractionMode::Lockstep { .. } => "lockstep",
            ExtractionMode::Streamed => "streamed",
        }
    }
}

impl fmt::Display for ExtractionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_streamed() {
        assert_eq!(ExtractionMode::default(), ExtractionMode::Streamed);
    }

    #[test]
    fn names_round_trip() {
        for name in ExtractionMode::NAMES {
            let mode = ExtractionMode::from_name(name, 64).unwrap();
            assert_eq!(mode.name(), name);
            assert_eq!(mode.to_string(), name);
        }
    }

    #[test]
    fn unknown_and_zero_capacity_rejected() {
        assert_eq!(ExtractionMode::from_name("fancy", 64), None);
        assert_eq!(ExtractionMode::from_name("lockstep", 0), None);
        assert!(ExtractionMode::from_name("buffered", 0).is_some());
    }
}
