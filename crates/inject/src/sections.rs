//! Per-section fault-injection campaigns and the sectioned campaign
//! ledger — the data-gathering half of compositional boundary analysis
//! (`ftb-core::compose`).
//!
//! A section campaign injects faults *inside* one section of the golden
//! run (see [`ftb_trace::SectionMap`]) plus a probe set at the previous
//! section's output frontier, and distills everything the composer needs
//! into a compact [`SectionSummary`]:
//!
//! * the **local fold** — the §3.5-filtered Algorithm-1 max of masked
//!   perturbations at each site of the section, exactly the statistic
//!   the monolithic `infer_boundary` computes, restricted to this
//!   section's own injections;
//! * the **transfer summary** — the largest observed amplification from
//!   a frontier-of-the-previous-section perturbation to this section's
//!   own output frontier (`amp_in`), the largest inlet perturbation seen
//!   to cross while staying masked (`cap_in`), and per-output-slot
//!   amplification maxima ([`SlotAmp`]);
//! * per-site frontier amplifications (`site_amp`) used to extrapolate a
//!   downstream error budget back onto individual sites.
//!
//! Amplifications are *secant* estimates — finite-difference quotients
//! `Δout/Δin` at observed perturbation magnitudes, the same notion of
//! bound the static analyzer's derivative table uses — fitted from whole-
//! program runs, so every recorded outcome is ground truth, never a
//! model prediction.
//!
//! The sectioned ledger (`ftb-sections-v1`) persists one completed
//! [`SectionRecord`] per line after a binding header, with the same
//! torn-tail crash-recovery contract as the experiment ledger: a
//! campaign killed mid-flight loses at most the section it was running.

use crate::campaign::Injector;
use crate::experiment::Experiment;
use crate::ledger::{read_records, CampaignBinding, LedgerError, LedgerHeader, LedgerWriter};
use crate::outcome::Outcome;
use ftb_stats::sampling::{sample_without_replacement, seeded_rng};
use ftb_trace::{FaultSpec, Region, SectionMap, StaticId, StaticRegistry};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Format tag of the sectioned campaign ledger.
pub const SECTIONS_FORMAT: &str = "ftb-sections-v1";

/// Sampling knobs of a per-section campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SectionCampaignConfig {
    /// Fraction of a section's sites to inject at (each sampled site is
    /// tested on every bit, following the paper's §3.3 site sampling).
    pub rate: f64,
    /// Base seed; each section derives its own sampling streams from it.
    pub seed: u64,
}

impl SectionCampaignConfig {
    /// A config with the given rate and seed.
    pub fn new(rate: f64, seed: u64) -> Self {
        SectionCampaignConfig { rate, seed }
    }

    /// Stable plan string for ledger bindings.
    pub fn plan(&self, n_sections: usize) -> String {
        format!(
            "compose rate={} seed={} sections={n_sections}",
            self.rate, self.seed
        )
    }
}

/// Per-output-slot (static instruction on the frontier) amplification
/// maximum: the largest observed `Δslot / Δinjected` among masked runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotAmp {
    /// Static id of the frontier slot.
    pub static_id: u32,
    /// Largest observed secant amplification into the slot.
    #[serde(with = "ftb_trace::serde_float")]
    pub amp: f64,
}

/// The empirical error-transfer summary of one section — everything the
/// backward composition sweep needs, independent of the experiments that
/// produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectionSummary {
    /// Section index within the map.
    pub index: usize,
    /// First site of the section.
    pub lo: usize,
    /// One past the last site.
    pub hi: usize,
    /// Kernel executions this campaign spent.
    pub n_experiments: u64,
    /// §3.5-filtered Algorithm-1 fold per site (dense over `[lo, hi)`):
    /// the largest masked perturbation observed at the site that stayed
    /// strictly below the site's smallest SDC-causing injection.
    #[serde(with = "ftb_trace::serde_float::vec")]
    pub local_max: Vec<f64>,
    /// Smallest SDC-causing injected error per site (dense over
    /// `[lo, hi)`; `+∞` where no SDC was observed).
    #[serde(with = "ftb_trace::serde_float::vec")]
    pub min_sdc: Vec<f64>,
    /// Largest observed frontier amplification of an injection at each
    /// site (dense over `[lo, hi)`; `0` where nothing masked was
    /// observed or every perturbation fully decayed before the
    /// frontier).
    #[serde(with = "ftb_trace::serde_float::vec")]
    pub site_amp: Vec<f64>,
    /// Transfer amplification: largest observed `Δfrontier(t)/ε` over
    /// masked probes injected at the *previous* section's frontier.
    #[serde(with = "ftb_trace::serde_float")]
    pub amp_in: f64,
    /// Largest inlet perturbation observed to cross the section with a
    /// masked whole-program outcome (the certificate's reach: budgets
    /// beyond it are unobserved).
    #[serde(with = "ftb_trace::serde_float")]
    pub cap_in: f64,
    /// Smallest inlet perturbation that caused SDC (`+∞` if none did).
    #[serde(with = "ftb_trace::serde_float")]
    pub min_sdc_in: f64,
    /// Per-output-slot amplification maxima, sorted by static id.
    pub slot_amp: Vec<SlotAmp>,
    /// Per-static-instruction maxima of `site_amp` over the sampled
    /// sites, sorted by static id — the amplification prior an
    /// *unsampled* site inherits from its static instruction when the
    /// composer extrapolates (dynamic instances of one source
    /// instruction share propagation behaviour; paper §4.2 reads its
    /// results through exactly this grouping).
    pub static_amp: Vec<SlotAmp>,
}

/// One line of the sectioned ledger: a completed section campaign plus
/// the content signature it was computed under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectionRecord {
    /// Content signature of the section (see
    /// [`SectionMap::signature`]) at campaign time.
    pub signature: u64,
    /// The campaign's distilled result.
    pub summary: SectionSummary,
}

/// A completed section campaign: the distilled summary plus the raw
/// experiments behind it (kept separate so ledgers stay compact — only
/// the summary is persisted).
#[derive(Debug, Clone)]
pub struct SectionCampaign {
    /// The distilled transfer summary.
    pub summary: SectionSummary,
    /// Experiments injected at this section's own sites.
    pub local_experiments: Vec<Experiment>,
    /// Probe experiments injected at the previous section's frontier.
    pub inlet_experiments: Vec<Experiment>,
}

/// Fold of one masked propagation-extracting run, reduced over the merge.
struct MaskedFold {
    site: usize,
    injected_err: f64,
    /// Nonzero deltas at this section's sites, `(local index, Δ)`.
    deltas: Vec<(usize, f64)>,
    /// Largest delta over the section's frontier sites.
    frontier_max: f64,
    /// Largest delta per frontier slot, `(static id, Δ)`, sorted.
    slot_max: Vec<(u32, f64)>,
}

/// Run the campaign for section `t` of `map`: classify injections at a
/// sampled subset of the section's own sites (all bits each) plus probes
/// at the previous section's output frontier, then re-run the masked
/// ones through the configured extraction path to fold their
/// propagation. Deterministic for a fixed `(config, t)` regardless of
/// thread count.
pub fn run_section_campaign(
    injector: &Injector<'_>,
    registry: &StaticRegistry,
    map: &SectionMap,
    t: usize,
    cfg: &SectionCampaignConfig,
) -> SectionCampaign {
    let golden = injector.golden();
    let (lo, hi) = map.range(t);
    let len = hi - lo;
    let bits = injector.bits();

    // frontier membership of this section, dense over [lo, hi)
    let is_frontier: Vec<bool> = (lo..hi)
        .map(|s| registry.get(StaticId(golden.static_ids[s])).region != Region::Reduction)
        .collect();

    // sample the section's own sites (stream 0) and inlet probes at the
    // previous section's frontier (stream 1)
    let sample = |pool_len: usize, floor: usize, stream: u64| -> Vec<usize> {
        let k = ((cfg.rate * pool_len as f64).ceil() as usize)
            .max(floor)
            .min(pool_len);
        let mut rng =
            seeded_rng(cfg.seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ stream);
        sample_without_replacement(pool_len, k, &mut rng)
    };
    let local_sites: Vec<usize> = sample(len, 2, 0).into_iter().map(|i| lo + i).collect();
    let inlet_pool: Vec<usize> = if t > 0 {
        map.frontier(golden, registry, t - 1)
    } else {
        Vec::new()
    };
    let inlet_sites: Vec<usize> = sample(inlet_pool.len(), usize::from(t > 0), 1)
        .into_iter()
        .map(|i| inlet_pool[i])
        .collect();

    let plan = |sites: &[usize]| -> Vec<FaultSpec> {
        sites
            .iter()
            .flat_map(|&site| (0..bits).map(move |bit| FaultSpec { site, bit }))
            .collect()
    };
    let local_plan = plan(&local_sites);
    let inlet_plan = plan(&inlet_sites);

    // phase 1: outcome-only classification (fast path)
    let local_experiments = injector.run_many(&local_plan);
    let inlet_experiments = injector.run_many(&inlet_plan);

    // the §3.5 per-site SDC caps, from this section's own injections
    let mut min_sdc = vec![f64::INFINITY; len];
    for e in &local_experiments {
        if e.outcome == Outcome::Sdc {
            let li = e.site - lo;
            min_sdc[li] = min_sdc[li].min(e.injected_err);
        }
    }
    let mut min_sdc_in = f64::INFINITY;
    for e in &inlet_experiments {
        if e.outcome == Outcome::Sdc {
            min_sdc_in = min_sdc_in.min(e.injected_err);
        }
    }

    // phase 2: re-run masked experiments with propagation extraction,
    // folding only this section's sites. A fold truncated to `< hi`
    // depends only on the execution prefix the section covers.
    let extract = |faults: &[FaultSpec]| -> Vec<MaskedFold> {
        faults
            .par_iter()
            .flat_map_iter(|f| {
                let mut deltas = Vec::new();
                let mut frontier_max = 0.0f64;
                let mut slots: Vec<(u32, f64)> = Vec::new();
                let summary = injector.extract_propagation(f.site, f.bit, |s, d| {
                    if s < lo || s >= hi {
                        return;
                    }
                    let li = s - lo;
                    deltas.push((li, d));
                    if is_frontier[li] {
                        frontier_max = frontier_max.max(d);
                        let id = golden.static_ids[s];
                        match slots.binary_search_by_key(&id, |&(i, _)| i) {
                            Ok(p) => slots[p].1 = slots[p].1.max(d),
                            Err(p) => slots.insert(p, (id, d)),
                        }
                    }
                });
                (summary.experiment.outcome == Outcome::Masked
                    && summary.experiment.injected_err > 0.0)
                    .then_some(MaskedFold {
                        site: f.site,
                        injected_err: summary.experiment.injected_err,
                        deltas,
                        frontier_max,
                        slot_max: slots,
                    })
            })
            .collect()
    };
    let masked_local: Vec<FaultSpec> = local_experiments
        .iter()
        .filter(|e| e.outcome == Outcome::Masked)
        .map(|e| FaultSpec {
            site: e.site,
            bit: e.bit,
        })
        .collect();
    let masked_inlet: Vec<FaultSpec> = inlet_experiments
        .iter()
        .filter(|e| e.outcome == Outcome::Masked)
        .map(|e| FaultSpec {
            site: e.site,
            bit: e.bit,
        })
        .collect();
    let local_folds = extract(&masked_local);
    let inlet_folds = extract(&masked_inlet);

    // sequential merge (max-folds are order-independent anyway)
    let mut local_max = vec![0.0f64; len];
    let mut site_amp = vec![0.0f64; len];
    let mut slot_amp: Vec<SlotAmp> = Vec::new();
    let mut fold_slots = |slot_max: &[(u32, f64)], scale: f64| {
        for &(id, d) in slot_max {
            let a = d / scale;
            match slot_amp.binary_search_by_key(&id, |s| s.static_id) {
                Ok(p) => slot_amp[p].amp = slot_amp[p].amp.max(a),
                Err(p) => slot_amp.insert(
                    p,
                    SlotAmp {
                        static_id: id,
                        amp: a,
                    },
                ),
            }
        }
    };
    for f in &local_folds {
        for &(li, d) in &f.deltas {
            // the incremental §3.5 filter: strictly below the site's cap
            if d.is_finite() && d < min_sdc[li] {
                local_max[li] = local_max[li].max(d);
            }
        }
        let li = f.site - lo;
        site_amp[li] = site_amp[li].max(f.frontier_max / f.injected_err);
        fold_slots(&f.slot_max, f.injected_err);
    }
    // per-static-instruction amplification maxima over the sampled sites
    let mut static_amp: Vec<SlotAmp> = Vec::new();
    for (li, &a) in site_amp.iter().enumerate() {
        if a <= 0.0 {
            continue;
        }
        let id = golden.static_ids[lo + li];
        match static_amp.binary_search_by_key(&id, |s| s.static_id) {
            Ok(p) => static_amp[p].amp = static_amp[p].amp.max(a),
            Err(p) => static_amp.insert(
                p,
                SlotAmp {
                    static_id: id,
                    amp: a,
                },
            ),
        }
    }
    let mut amp_in = 0.0f64;
    let mut cap_in = 0.0f64;
    for f in &inlet_folds {
        amp_in = amp_in.max(f.frontier_max / f.injected_err);
        cap_in = cap_in.max(f.injected_err);
        fold_slots(&f.slot_max, f.injected_err);
    }

    let n_experiments =
        (local_experiments.len() + inlet_experiments.len() + local_folds.len() + inlet_folds.len())
            as u64;
    SectionCampaign {
        summary: SectionSummary {
            index: t,
            lo,
            hi,
            n_experiments,
            local_max,
            min_sdc,
            site_amp,
            amp_in,
            cap_in,
            min_sdc_in,
            slot_amp,
            static_amp,
        },
        local_experiments,
        inlet_experiments,
    }
}

/// What [`read_section_ledger`] recovered from disk.
#[derive(Debug)]
pub struct SectionLedgerRecovery {
    /// The parsed header line.
    pub header: LedgerHeader,
    /// All intact section records, in completion order.
    pub sections: Vec<SectionRecord>,
    /// Byte length of the intact prefix.
    pub valid_len: u64,
    /// Whether a truncated/garbled trailing line was dropped.
    pub dropped_trailing: bool,
}

/// Read and validate a sectioned ledger, tolerating a torn final line —
/// the same crash-recovery contract as [`crate::read_ledger`].
pub fn read_section_ledger(path: &Path) -> Result<SectionLedgerRecovery, LedgerError> {
    let (header, sections, valid_len, dropped_trailing) = read_records(path, SECTIONS_FORMAT)?;
    Ok(SectionLedgerRecovery {
        header,
        sections,
        valid_len,
        dropped_trailing,
    })
}

/// Create (or truncate) a sectioned ledger and write its header.
pub fn create_section_ledger(
    path: &Path,
    binding: CampaignBinding,
) -> Result<LedgerWriter, LedgerError> {
    LedgerWriter::create(path, &LedgerHeader::with_format(SECTIONS_FORMAT, binding))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Classifier;
    use ftb_kernels::{JacobiConfig, JacobiKernel, Kernel};
    use std::io::Write;
    use std::path::PathBuf;

    fn tiny_jacobi() -> JacobiKernel {
        JacobiKernel::new(JacobiConfig {
            grid: 3,
            sweeps: 4,
            ..JacobiConfig::small()
        })
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ftb-sections-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn campaign_summaries_are_well_formed() {
        let k = tiny_jacobi();
        let inj = Injector::new(&k, Classifier::new(1e-4));
        let registry = k.registry();
        let map = SectionMap::phases(inj.golden(), &registry);
        assert!(map.n_sections() > 2, "jacobi must split into sweeps");
        let cfg = SectionCampaignConfig::new(0.5, 7);
        for t in 0..map.n_sections() {
            let c = run_section_campaign(&inj, &registry, &map, t, &cfg);
            let s = &c.summary;
            let (lo, hi) = map.range(t);
            assert_eq!((s.index, s.lo, s.hi), (t, lo, hi));
            assert_eq!(s.local_max.len(), hi - lo);
            assert!(s.n_experiments > 0);
            // the filter invariant: every fold sits strictly below its cap
            for (li, &m) in s.local_max.iter().enumerate() {
                assert!(m < s.min_sdc[li], "site {} fold above cap", lo + li);
            }
            // an injection reaching its own frontier site amplifies >= 1
            // only through growth; all amps are finite and non-negative
            for &a in &s.site_amp {
                assert!(a.is_finite() && a >= 0.0);
            }
            assert!(s.amp_in >= 0.0 && s.amp_in.is_finite());
            if t > 0 {
                assert!(
                    !c.inlet_experiments.is_empty(),
                    "section {t} probed no inlets"
                );
            } else {
                assert!(c.inlet_experiments.is_empty());
            }
            // local experiments stay inside the section
            for e in &c.local_experiments {
                assert!(e.site >= lo && e.site < hi);
            }
        }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let k = tiny_jacobi();
        let inj = Injector::new(&k, Classifier::new(1e-4));
        let registry = k.registry();
        let map = SectionMap::phases(inj.golden(), &registry);
        let cfg = SectionCampaignConfig::new(0.4, 3);
        let a = run_section_campaign(&inj, &registry, &map, 2, &cfg);
        let b = run_section_campaign(&inj, &registry, &map, 2, &cfg);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.local_experiments, b.local_experiments);
    }

    fn binding(k: &JacobiKernel, inj: &Injector<'_>, plan: String) -> CampaignBinding {
        CampaignBinding {
            kernel: ftb_kernels::KernelConfig::Jacobi(k.config().clone()),
            classifier: *inj.classifier(),
            n_sites: inj.n_sites(),
            bits: inj.bits(),
            plan,
            bit_prune: None,
            snapshot: None,
        }
    }

    #[test]
    fn section_ledger_roundtrip_and_torn_tail() {
        let k = tiny_jacobi();
        let inj = Injector::new(&k, Classifier::new(1e-4));
        let registry = k.registry();
        let map = SectionMap::phases(inj.golden(), &registry);
        let cfg = SectionCampaignConfig::new(0.5, 7);
        let records: Vec<SectionRecord> = (0..2)
            .map(|t| SectionRecord {
                signature: map.signature(inj.golden(), t, 0),
                summary: run_section_campaign(&inj, &registry, &map, t, &cfg).summary,
            })
            .collect();

        let path = tmp("roundtrip.jsonl");
        let b = binding(&k, &inj, cfg.plan(map.n_sections()));
        let mut w = create_section_ledger(&path, b.clone()).unwrap();
        w.append_records(&records).unwrap();
        drop(w);

        let rec = read_section_ledger(&path).unwrap();
        assert!(rec.header.binding.matches(&b));
        assert_eq!(rec.sections, records);
        assert!(!rec.dropped_trailing);

        // torn tail: half a record, no newline — dropped on recovery
        let intact = rec.valid_len;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"signature\":12,\"summ").unwrap();
        drop(f);
        let rec = read_section_ledger(&path).unwrap();
        assert!(rec.dropped_trailing);
        assert_eq!(rec.sections.len(), 2);
        assert_eq!(rec.valid_len, intact);

        // resume appends cleanly after truncation
        let mut w = LedgerWriter::resume(&path, rec.valid_len).unwrap();
        w.append_records(&records[..1]).unwrap();
        drop(w);
        let rec = read_section_ledger(&path).unwrap();
        assert_eq!(rec.sections.len(), 3);
        assert!(!rec.dropped_trailing);
    }

    #[test]
    fn experiment_ledger_tag_is_rejected() {
        let k = tiny_jacobi();
        let inj = Injector::new(&k, Classifier::new(1e-4));
        let path = tmp("wrong-tag.jsonl");
        let b = binding(&k, &inj, "exhaustive".into());
        LedgerWriter::create(&path, &LedgerHeader::new(b)).unwrap();
        assert!(matches!(
            read_section_ledger(&path),
            Err(LedgerError::Format { line: 1, .. })
        ));
    }

    #[test]
    fn summaries_roundtrip_nonfinite_fields() {
        // min_sdc is +inf where no SDC was seen — must survive JSON
        let s = SectionSummary {
            index: 0,
            lo: 0,
            hi: 2,
            n_experiments: 4,
            local_max: vec![0.5, 0.0],
            min_sdc: vec![f64::INFINITY, 1.5],
            site_amp: vec![1.0, 0.0],
            amp_in: 0.0,
            cap_in: 0.0,
            min_sdc_in: f64::INFINITY,
            slot_amp: vec![SlotAmp {
                static_id: 3,
                amp: 1.25,
            }],
            static_amp: vec![SlotAmp {
                static_id: 2,
                amp: 1.0,
            }],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: SectionSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
