//! Content-addressed snapshot store for snapshot-resume campaign execution.
//!
//! During (or rather, immediately after) the golden run the full kernel
//! state is captured at each section boundary: the live arrays, the
//! kernel's own loop counter, and the tracer position (dynamic cursor +
//! branch count). An injection experiment at site `s` can then start from
//! the latest snapshot whose cursor is `≤ s`, skipping almost all
//! pre-fault execution for late-trace sites.
//!
//! Array payloads are interned in a content-addressed pool keyed by an
//! FNV-1a digest of the raw f64 bits (with bitwise verification on hash
//! collision), so arrays that do not change between boundaries — e.g. the
//! Jacobi right-hand side `b` — are stored exactly once. The store digest
//! binds the snapshot content *and* the golden run it was captured
//! against, and is persisted into campaign ledgers (see
//! [`CampaignBinding::snapshot`](crate::ledger::CampaignBinding)) so a
//! resumed campaign cannot silently mix snapshots from a different golden.
//!
//! Correctness rests on two bitwise invariants, both enforced here:
//!
//! 1. **Capture fidelity** — the capture run must reproduce the recorded
//!    golden run exactly (same output bits, same dynamic-instruction
//!    count). Asserted in [`SnapshotStore::capture`].
//! 2. **Reconvergence** — an injected run whose live state becomes
//!    bitwise identical to a stored golden snapshot *after* the fault
//!    site has executed will replay the golden suffix exactly, so its
//!    outcome is `(Masked, 0.0)` with no further execution. Callers test
//!    this with [`SnapshotStore::state_matches`].

use ftb_kernels::{Kernel, KernelState};
use ftb_trace::{FaultSpec, Fnv1a, GoldenRun, Tracer};
use std::collections::HashMap;

/// Default number of retained snapshots per store.
///
/// Paper-scale kernels run hundreds of outer-loop steps; retaining every
/// boundary would multiply the resident state by that factor for almost
/// no extra prefix skipping. 128 evenly spaced boundaries bound the skip
/// granularity to <1% of the trace.
pub const DEFAULT_MAX_SNAPSHOTS: usize = 128;

/// One captured section-boundary snapshot. Array payloads live in the
/// store's content-addressed pool; this is metadata plus pool indices.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Tracer cursor at the boundary (dynamic instructions executed).
    pub cursor: usize,
    /// Tracer branch count at the boundary.
    pub branch_count: usize,
    /// Kernel loop step at the boundary (sweeps / rows / iterations done).
    pub step: u64,
    /// Pool indices of the state arrays, in kernel order.
    arrays: Vec<u32>,
    /// Per-array upper bound on the golden state magnitudes over the
    /// *remaining* run — every boundary at or after this one (including
    /// boundaries later dropped by thinning) plus the final output. Feeds
    /// the contraction certificate's rounding-slack term
    /// ([`ftb_kernels::Kernel::masked_exit_bound`]).
    suffix_mags: Vec<f64>,
}

/// Snapshot store: boundary snapshots sorted by cursor over a shared
/// content-addressed array pool.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    snapshots: Vec<Snapshot>,
    pool: Vec<Vec<f64>>,
    digest: u64,
}

#[inline]
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn hash_array(a: &[f64]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(a.len() as u64);
    for v in a {
        h.write_u64(v.to_bits());
    }
    h.finish()
}

impl SnapshotStore {
    /// Capture a snapshot store for `kernel` against its recorded
    /// `golden` run. Returns `None` if the kernel is not
    /// snapshot-capable.
    ///
    /// The capture re-runs the kernel under an untraced tracer (site
    /// counting and value quantisation only — no recording), which is
    /// cheap next to the golden run itself, and asserts bitwise
    /// agreement with `golden` so a capture that drifted from the
    /// recorded trace can never serve resumed experiments.
    pub fn capture(
        kernel: &dyn Kernel,
        golden: &GoldenRun,
        max_snapshots: usize,
    ) -> Option<SnapshotStore> {
        if !kernel.snapshot_capable() {
            return None;
        }
        assert!(max_snapshots > 0, "snapshot store needs at least one slot");

        let mut pool: Vec<Vec<f64>> = Vec::new();
        let mut interned: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut snapshots: Vec<Snapshot> = Vec::new();

        let mut t = Tracer::untraced(kernel.precision());
        let out = kernel.run_snapshotting(&mut t, &mut |cursor, branch_count, step, arrays| {
            let idxs = arrays
                .iter()
                .map(|a| {
                    let candidates = interned.entry(hash_array(a)).or_default();
                    for &i in candidates.iter() {
                        if bits_eq(&pool[i as usize], a) {
                            return i;
                        }
                    }
                    let i = u32::try_from(pool.len()).expect("snapshot pool overflow");
                    pool.push(a.to_vec());
                    candidates.push(i);
                    i
                })
                .collect();
            let own_mags = arrays
                .iter()
                .map(|a| a.iter().fold(0.0f64, |m, v| m.max(v.abs())))
                .collect();
            snapshots.push(Snapshot {
                cursor,
                branch_count,
                step,
                arrays: idxs,
                // per-boundary magnitudes for now; folded into suffix
                // maxima below, once the whole run has been seen
                suffix_mags: own_mags,
            });
        });

        // capture fidelity: the capture run must be the golden run
        assert_eq!(
            t.cursor(),
            golden.n_dynamic,
            "snapshot capture executed a different dynamic-instruction count than the golden run"
        );
        assert!(
            bits_eq(&out, &golden.output),
            "snapshot capture output diverged bitwise from the golden run"
        );
        debug_assert!(
            snapshots.windows(2).all(|w| w[0].cursor < w[1].cursor),
            "boundary cursors must be strictly increasing"
        );

        // turn per-boundary magnitudes into suffix maxima, seeded with
        // the final output (whose values no boundary state holds): the
        // certificate needs a magnitude cap over the *whole* remaining
        // run, and it must survive thinning, so it is computed before
        let out_mag = out.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let mut suffix: Vec<f64> = Vec::new();
        for s in snapshots.iter_mut().rev() {
            if suffix.is_empty() {
                suffix = vec![out_mag; s.suffix_mags.len()];
            }
            for (acc, own) in suffix.iter_mut().zip(&s.suffix_mags) {
                *acc = acc.max(*own);
            }
            s.suffix_mags.copy_from_slice(&suffix);
        }

        // thin to the cap: keep evenly spaced boundaries including the
        // first (earliest resume point) and the last
        if snapshots.len() > max_snapshots {
            let n = snapshots.len();
            let mut keep = vec![false; n];
            for k in 0..max_snapshots {
                keep[k * (n - 1) / (max_snapshots - 1).max(1)] = true;
            }
            let mut it = keep.iter();
            snapshots.retain(|_| *it.next().unwrap());
        }

        // garbage-collect pool entries orphaned by thinning, remapping
        // the surviving indices
        let mut remap = vec![u32::MAX; pool.len()];
        let mut compact: Vec<Vec<f64>> = Vec::new();
        for s in &mut snapshots {
            for idx in &mut s.arrays {
                let old = *idx as usize;
                if remap[old] == u32::MAX {
                    remap[old] = compact.len() as u32;
                    compact.push(std::mem::take(&mut pool[old]));
                }
                *idx = remap[old];
            }
        }
        let pool = compact;

        // digest: snapshot content + the golden identity it was captured
        // against
        let mut h = Fnv1a::new();
        h.write_u64(pool.len() as u64);
        for arr in &pool {
            h.write_u64(arr.len() as u64);
            for v in arr {
                h.write_u64(v.to_bits());
            }
        }
        h.write_u64(snapshots.len() as u64);
        for s in &snapshots {
            h.write_u64(s.cursor as u64);
            h.write_u64(s.branch_count as u64);
            h.write_u64(s.step);
            for &i in &s.arrays {
                h.write_u64(u64::from(i));
            }
            for &m in &s.suffix_mags {
                h.write_u64(m.to_bits());
            }
        }
        h.write_u64(golden.n_dynamic as u64);
        for v in &golden.output {
            h.write_u64(v.to_bits());
        }

        Some(SnapshotStore {
            snapshots,
            pool,
            digest: h.finish(),
        })
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True if no snapshot was captured.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Content digest (also binds the golden run the store was captured
    /// against).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Resident payload size of the content-addressed pool, in bytes.
    pub fn store_bytes(&self) -> usize {
        self.pool.iter().map(|a| a.len() * 8).sum()
    }

    /// Ledger-side identity of this store.
    pub fn binding(&self) -> crate::ledger::SnapshotBinding {
        crate::ledger::SnapshotBinding {
            snapshots: self.snapshots.len() as u64,
            digest: self.digest,
        }
    }

    /// The snapshot a fault at `site` should resume from: the latest
    /// boundary whose cursor is `≤ site` (the fault must not lie inside
    /// the skipped prefix). Returns the snapshot's index for scheduling
    /// plus the snapshot itself; `None` means run from `t = 0`.
    pub fn for_site(&self, site: usize) -> Option<(usize, &Snapshot)> {
        let i = self.snapshots.partition_point(|s| s.cursor <= site);
        i.checked_sub(1).map(|i| (i, &self.snapshots[i]))
    }

    /// Materialise the kernel state of a snapshot (clones the pooled
    /// arrays; cheap next to the execution it saves).
    pub fn state(&self, snap: &Snapshot) -> KernelState {
        KernelState {
            step: snap.step,
            arrays: snap
                .arrays
                .iter()
                .map(|&i| self.pool[i as usize].clone())
                .collect(),
        }
    }

    /// Does the golden state at exactly boundary-cursor `cursor` match
    /// `arrays` bitwise? Used as the reconvergence test by resumed
    /// experiments: a bitwise match after the fault site proves the rest
    /// of the run replays the golden suffix.
    pub fn state_matches(&self, cursor: usize, arrays: &[&[f64]]) -> bool {
        let i = self.snapshots.partition_point(|s| s.cursor < cursor);
        let Some(s) = self.snapshots.get(i) else {
            return false;
        };
        s.cursor == cursor
            && s.arrays.len() == arrays.len()
            && s.arrays
                .iter()
                .zip(arrays)
                .all(|(&pi, a)| bits_eq(&self.pool[pi as usize], a))
    }

    /// Per-array L∞ deviations of `arrays` from the golden boundary
    /// state at exactly cursor `cursor`, paired with that boundary's
    /// golden suffix-magnitude bounds — the inputs of the contraction
    /// certificate ([`ftb_kernels::Kernel::masked_exit_bound`]). `None`
    /// when no snapshot sits at this cursor or the state shapes differ;
    /// a non-finite faulty element yields an infinite deviation (which
    /// no certificate can accept).
    pub fn state_deviations(&self, cursor: usize, arrays: &[&[f64]]) -> Option<(Vec<f64>, &[f64])> {
        let i = self.snapshots.partition_point(|s| s.cursor < cursor);
        let s = self.snapshots.get(i)?;
        if s.cursor != cursor || s.arrays.len() != arrays.len() {
            return None;
        }
        let mut devs = Vec::with_capacity(arrays.len());
        for (&pi, a) in s.arrays.iter().zip(arrays) {
            let g = &self.pool[pi as usize];
            if g.len() != a.len() {
                return None;
            }
            let mut m = 0.0f64;
            for (x, y) in g.iter().zip(*a) {
                let d = (x - y).abs();
                if d.is_nan() {
                    m = f64::INFINITY;
                    break;
                }
                m = m.max(d);
            }
            devs.push(m);
        }
        Some((devs, s.suffix_mags.as_slice()))
    }
}

/// Reorder an experiment plan section-major: stable-sort by the serving
/// snapshot so one warm snapshot serves a whole contiguous batch before
/// the next is touched. Faults with no serving snapshot (pre-first-boundary
/// sites, run from `t = 0`) come first; within each group the original
/// order is preserved, so a site-major exhaustive plan — whose serving
/// snapshot is already monotone in the site — passes through unchanged.
pub fn schedule_snapshot_major(plan: &[FaultSpec], store: &SnapshotStore) -> Vec<FaultSpec> {
    let mut out = plan.to_vec();
    out.sort_by_key(|f| store.for_site(f.site).map_or(0, |(i, _)| i + 1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_kernels::jacobi::{JacobiConfig, JacobiKernel};
    use ftb_kernels::Kernel;

    fn kernel() -> JacobiKernel {
        JacobiKernel::new(JacobiConfig {
            sweeps: 12,
            ..JacobiConfig::small()
        })
    }

    #[test]
    fn capture_interns_unchanged_arrays() {
        let k = kernel();
        let g = k.golden();
        let store = SnapshotStore::capture(&k, &g, usize::MAX).unwrap();
        assert_eq!(store.len(), k.config().sweeps);
        // every snapshot holds [x, b]; b never changes, so the pool has
        // one distinct x per boundary plus exactly one b
        assert_eq!(store.pool.len(), store.len() + 1);
    }

    #[test]
    fn thinning_keeps_first_and_last_boundary() {
        let k = kernel();
        let g = k.golden();
        let full = SnapshotStore::capture(&k, &g, usize::MAX).unwrap();
        let thin = SnapshotStore::capture(&k, &g, 5).unwrap();
        assert_eq!(thin.len(), 5);
        assert_eq!(thin.snapshots[0].cursor, full.snapshots[0].cursor);
        assert_eq!(
            thin.snapshots.last().unwrap().cursor,
            full.snapshots.last().unwrap().cursor
        );
        // thinning must GC orphaned pool arrays
        assert_eq!(thin.pool.len(), thin.len() + 1);
        assert!(thin.store_bytes() < full.store_bytes());
    }

    #[test]
    fn for_site_picks_latest_preceding_boundary() {
        let k = kernel();
        let g = k.golden();
        let store = SnapshotStore::capture(&k, &g, usize::MAX).unwrap();
        let first = store.snapshots[0].cursor;
        assert!(store.for_site(first - 1).is_none());
        let (i, snap) = store.for_site(first).unwrap();
        assert_eq!((i, snap.cursor), (0, first));
        let (i, snap) = store.for_site(g.n_dynamic - 1).unwrap();
        assert_eq!(i, store.len() - 1);
        assert!(snap.cursor < g.n_dynamic);
    }

    #[test]
    fn state_matches_is_exact_cursor_and_bitwise() {
        let k = kernel();
        let g = k.golden();
        let store = SnapshotStore::capture(&k, &g, usize::MAX).unwrap();
        let snap = &store.snapshots[3];
        let st = store.state(snap);
        let views: Vec<&[f64]> = st.arrays.iter().map(|a| a.as_slice()).collect();
        assert!(store.state_matches(snap.cursor, &views));
        assert!(!store.state_matches(snap.cursor + 1, &views));
        let mut bent = st.clone();
        bent.arrays[0][0] = f64::from_bits(bent.arrays[0][0].to_bits() ^ 1);
        let views: Vec<&[f64]> = bent.arrays.iter().map(|a| a.as_slice()).collect();
        assert!(!store.state_matches(snap.cursor, &views));
    }

    #[test]
    fn digest_binds_golden_identity() {
        let k = kernel();
        let g = k.golden();
        let a = SnapshotStore::capture(&k, &g, usize::MAX).unwrap();
        let b = SnapshotStore::capture(&k, &g, usize::MAX).unwrap();
        assert_eq!(a.digest(), b.digest());
        let thin = SnapshotStore::capture(&k, &g, 5).unwrap();
        assert_ne!(a.digest(), thin.digest());
        let other = JacobiKernel::new(JacobiConfig {
            sweeps: 12,
            seed: 99,
            ..JacobiConfig::small()
        });
        let og = other.golden();
        let o = SnapshotStore::capture(&other, &og, usize::MAX).unwrap();
        assert_ne!(a.digest(), o.digest());
    }

    #[test]
    fn suffix_mags_are_nonincreasing_suffix_maxima() {
        let k = kernel();
        let g = k.golden();
        let store = SnapshotStore::capture(&k, &g, usize::MAX).unwrap();
        let n_arrays = store.snapshots[0].arrays.len();
        // suffix maxima are non-increasing front-to-back, per array slot
        for slot in 0..n_arrays {
            for w in store.snapshots.windows(2) {
                assert!(w[0].suffix_mags[slot] >= w[1].suffix_mags[slot]);
            }
        }
        // every boundary's suffix bound dominates its own state and the
        // final golden output (the fold is seeded with the output max)
        let out_mag = g.output.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for s in &store.snapshots {
            for (&pi, &sm) in s.arrays.iter().zip(&s.suffix_mags) {
                let own = store.pool[pi as usize]
                    .iter()
                    .fold(0.0f64, |m, v| m.max(v.abs()));
                assert!(sm >= own);
            }
            assert!(s.suffix_mags[0] >= out_mag);
        }
        // thinning keeps the pre-thinning bounds (covering dropped
        // boundaries), so digest changes but bounds stay sound
        let thin = SnapshotStore::capture(&k, &g, 5).unwrap();
        for s in &thin.snapshots {
            let full = store
                .snapshots
                .iter()
                .find(|f| f.cursor == s.cursor)
                .unwrap();
            assert_eq!(s.suffix_mags, full.suffix_mags);
        }
    }

    #[test]
    fn state_deviations_measure_linf_from_golden() {
        let k = kernel();
        let g = k.golden();
        let store = SnapshotStore::capture(&k, &g, usize::MAX).unwrap();
        let snap = &store.snapshots[3];
        let st = store.state(snap);
        let views: Vec<&[f64]> = st.arrays.iter().map(|a| a.as_slice()).collect();
        let (devs, mags) = store.state_deviations(snap.cursor, &views).unwrap();
        assert!(devs.iter().all(|&d| d == 0.0));
        assert_eq!(mags, snap.suffix_mags.as_slice());
        // off-boundary cursor: no certificate inputs
        assert!(store.state_deviations(snap.cursor + 1, &views).is_none());
        // a perturbation shows up as exactly its L∞ distance
        let mut bent = st.clone();
        bent.arrays[0][5] += 3e-4;
        let views: Vec<&[f64]> = bent.arrays.iter().map(|a| a.as_slice()).collect();
        let (devs, _) = store.state_deviations(snap.cursor, &views).unwrap();
        assert!((devs[0] - 3e-4).abs() < 1e-12);
        assert_eq!(devs[1], 0.0);
        // non-finite state must yield an unacceptable (infinite) deviation
        bent.arrays[0][0] = f64::NAN;
        let views: Vec<&[f64]> = bent.arrays.iter().map(|a| a.as_slice()).collect();
        let (devs, _) = store.state_deviations(snap.cursor, &views).unwrap();
        assert_eq!(devs[0], f64::INFINITY);
    }

    #[test]
    fn snapshot_major_schedule_is_stable_and_grouped() {
        let k = kernel();
        let g = k.golden();
        let store = SnapshotStore::capture(&k, &g, usize::MAX).unwrap();
        let c0 = store.snapshots[0].cursor;
        let c2 = store.snapshots[2].cursor;
        // interleave sites served by snapshot 2, snapshot 0, and none
        let plan = vec![
            FaultSpec {
                site: c2 + 1,
                bit: 0,
            },
            FaultSpec { site: 0, bit: 1 },
            FaultSpec { site: c0, bit: 2 },
            FaultSpec { site: c2, bit: 3 },
            FaultSpec { site: 1, bit: 4 },
        ];
        let sched = schedule_snapshot_major(&plan, &store);
        let bits: Vec<u8> = sched.iter().map(|f| f.bit).collect();
        // group order: from-scratch (orig order), snap 0, snap 2 (orig order)
        assert_eq!(bits, vec![1, 4, 2, 0, 3]);
        // a site-major plan passes through unchanged
        let monotone: Vec<FaultSpec> = (0..g.n_sites())
            .step_by(97)
            .map(|site| FaultSpec { site, bit: 0 })
            .collect();
        assert_eq!(schedule_snapshot_major(&monotone, &store), monotone);
    }
}
