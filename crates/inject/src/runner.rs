//! Checkpointed, observable campaign execution.
//!
//! [`ChunkedCampaign`] runs a deterministic fault plan one chunk at a
//! time, streaming every completed chunk into a crash-safe
//! [`ledger`](crate::ledger) and folding outcomes into live
//! [`CampaignMetrics`]. A campaign killed between (or during) chunks is
//! resumed by reloading the ledger: the intact record prefix is checked
//! against the plan and only the remaining `(site, bit)` pairs are
//! re-executed, so a resumed campaign produces the exact experiment
//! sequence an uninterrupted one would have.

use crate::campaign::{ExhaustiveResult, Injector};
use crate::experiment::Experiment;
use crate::ledger::{read_ledger, CampaignBinding, LedgerError, LedgerHeader, LedgerWriter};
use crate::obs::{CampaignMetrics, MetricsSnapshot, ProgressReporter};
use ftb_stats::sampling::seeded_rng;
use ftb_trace::FaultSpec;
use rand::Rng;
use std::path::Path;
use std::time::{Duration, Instant};

/// Default number of experiments per chunk (one ledger write each).
pub const DEFAULT_CHUNK: usize = 256;

/// The exhaustive plan: every bit of every site, site-major — the same
/// layout as [`ExhaustiveResult::codes`].
pub fn exhaustive_plan(n_sites: usize, bits: u8) -> Vec<FaultSpec> {
    (0..n_sites)
        .flat_map(|site| (0..bits).map(move |bit| FaultSpec { site, bit }))
        .collect()
}

/// The bit-pruned exhaustive plan: every bit of every site in site-major
/// order, *except* the `(site, bit)` cells whose bit is set in
/// `certified[site]` — those are statically certified masked
/// (`BitClass::CertifiedMasked` in `ftb-core`) and need no execution.
/// Crash-likely bits are **not** skipped: the prediction there is about
/// the corrupted value being non-finite, not about the outcome being
/// ignorable, so they stay in the plan and keep the ground truth honest.
///
/// The surviving pairs appear in exactly the order [`exhaustive_plan`]
/// would visit them, so a pruned ledger replays deterministically and
/// the differential harness can compare pruned and unpruned campaigns
/// cell-for-cell on every non-certified pair.
///
/// # Panics
/// Panics if `certified` does not have one mask word per site.
pub fn pruned_exhaustive_plan(n_sites: usize, bits: u8, certified: &[u64]) -> Vec<FaultSpec> {
    assert_eq!(
        certified.len(),
        n_sites,
        "certified masks cover a different fault space"
    );
    (0..n_sites)
        .flat_map(|site| {
            (0..bits)
                .filter(move |&bit| certified[site] & (1u64 << bit) == 0)
                .map(move |bit| FaultSpec { site, bit })
        })
        .collect()
}

/// The uniform Monte-Carlo plan: `n` pairs drawn with replacement,
/// identical to the sequence `monte_carlo` executes for this seed.
pub fn monte_carlo_plan(n_sites: usize, bits: u8, n: u64, seed: u64) -> Vec<FaultSpec> {
    let mut rng = seeded_rng(seed);
    (0..n)
        .map(|_| FaultSpec {
            site: rng.gen_range(0..n_sites),
            bit: rng.gen_range(0..bits),
        })
        .collect()
}

/// A resumable chunk-at-a-time campaign over a fixed fault plan.
pub struct ChunkedCampaign<'k> {
    injector: &'k Injector<'k>,
    plan: Vec<FaultSpec>,
    /// Index into `plan` of the first pair not yet executed.
    next: usize,
    completed: Vec<Experiment>,
    writer: Option<LedgerWriter>,
    chunk_size: usize,
    metrics: CampaignMetrics,
    reporter: Option<ProgressReporter>,
}

impl<'k> ChunkedCampaign<'k> {
    /// A fresh in-memory campaign (no ledger) over `plan`.
    pub fn new(injector: &'k Injector<'k>, plan: Vec<FaultSpec>, chunk_size: usize) -> Self {
        let total = plan.len() as u64;
        ChunkedCampaign {
            injector,
            plan,
            next: 0,
            completed: Vec::new(),
            writer: None,
            chunk_size: chunk_size.max(1),
            metrics: CampaignMetrics::new(total),
            reporter: None,
        }
    }

    /// Attach a crash-safe ledger at `path`.
    ///
    /// With `resume` set and an existing file present, the ledger is
    /// recovered: its binding must match, its record prefix must agree
    /// with the plan pair-for-pair, and execution continues from the
    /// first missing pair. Otherwise a fresh ledger is created.
    pub fn with_ledger(
        mut self,
        path: &Path,
        binding: CampaignBinding,
        resume: bool,
    ) -> Result<Self, LedgerError> {
        if resume && path.exists() {
            let rec = read_ledger(path)?;
            if !rec.header.binding.matches(&binding) {
                return Err(LedgerError::BindingMismatch {
                    found: Box::new(rec.header.binding),
                });
            }
            if rec.experiments.len() > self.plan.len() {
                return Err(LedgerError::Format {
                    line: rec.experiments.len() + 1,
                    msg: format!(
                        "ledger has {} records but the plan only has {} experiments",
                        rec.experiments.len(),
                        self.plan.len()
                    ),
                });
            }
            for (i, (e, f)) in rec.experiments.iter().zip(&self.plan).enumerate() {
                if e.key() != (f.site, f.bit) {
                    return Err(LedgerError::Format {
                        line: i + 2,
                        msg: format!(
                            "record {:?} does not match planned pair ({}, {})",
                            e.key(),
                            f.site,
                            f.bit
                        ),
                    });
                }
            }
            self.next = rec.experiments.len();
            self.metrics.note_resumed(&rec.experiments);
            self.completed = rec.experiments;
            self.writer = Some(LedgerWriter::resume(path, rec.valid_len)?);
        } else {
            let header = LedgerHeader::new(binding);
            self.writer = Some(LedgerWriter::create(path, &header)?);
        }
        Ok(self)
    }

    /// Attach a throttled stderr progress reporter.
    pub fn with_reporter(mut self, label: impl Into<String>, every: Duration) -> Self {
        self.reporter = Some(ProgressReporter::new(label, every));
        self
    }

    /// Experiments not yet executed.
    pub fn remaining(&self) -> usize {
        self.plan.len() - self.next
    }

    /// Whether every planned pair has run.
    pub fn is_done(&self) -> bool {
        self.next == self.plan.len()
    }

    /// Run one chunk (parallel inside the chunk, via the injector's
    /// extraction path), append it to the ledger, update metrics.
    /// Returns how many experiments ran — 0 means the campaign was
    /// already complete.
    pub fn step(&mut self) -> Result<usize, LedgerError> {
        let end = (self.next + self.chunk_size).min(self.plan.len());
        if self.next == end {
            return Ok(0);
        }
        let started = Instant::now();
        let chunk = self.injector.run_batch(&self.plan[self.next..end]);
        if let Some(w) = &mut self.writer {
            w.append_chunk(&chunk)?;
        }
        self.metrics.record_chunk(&chunk, started.elapsed());
        self.next = end;
        self.completed.extend_from_slice(&chunk);
        let done = self.is_done();
        if let Some(r) = &mut self.reporter {
            r.report(&self.metrics, done);
        }
        Ok(chunk.len())
    }

    /// Run every remaining chunk.
    pub fn run_to_completion(&mut self) -> Result<(), LedgerError> {
        while self.step()? > 0 {}
        Ok(())
    }

    /// All completed experiments in plan order (resumed + executed).
    pub fn experiments(&self) -> &[Experiment] {
        &self.completed
    }

    /// Current metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Consume the campaign, returning its experiments.
    pub fn into_experiments(self) -> Vec<Experiment> {
        self.completed
    }

    /// Convert a finished exhaustive campaign into the dense outcome
    /// table.
    ///
    /// # Panics
    /// Panics if the campaign is not complete or its plan is not the
    /// exhaustive site-major layout.
    pub fn into_exhaustive(self) -> ExhaustiveResult {
        assert!(self.is_done(), "campaign still has pending experiments");
        let n_sites = self.injector.n_sites();
        let bits = self.injector.bits();
        assert_eq!(
            self.plan.len(),
            n_sites * bits as usize,
            "plan does not cover the full fault space"
        );
        let codes: Vec<u8> = self
            .completed
            .iter()
            .enumerate()
            .map(|(i, e)| {
                assert_eq!(
                    e.key(),
                    (i / bits as usize, (i % bits as usize) as u8),
                    "plan is not in exhaustive site-major order"
                );
                e.outcome.code()
            })
            .collect();
        ExhaustiveResult {
            n_sites,
            bits,
            codes,
        }
    }

    /// Convert a finished [`pruned_exhaustive_plan`] campaign into the
    /// dense outcome table, filling every certified (skipped) cell with
    /// `Masked` — exactly the outcome the certificate guarantees. The
    /// result has the same layout as [`into_exhaustive`](Self::into_exhaustive),
    /// so everything downstream (inference, metrics, reports) consumes it
    /// unchanged.
    ///
    /// # Panics
    /// Panics if the campaign is not complete or its plan is not the
    /// pruned site-major layout for these masks.
    pub fn into_exhaustive_with_certified(self, certified: &[u64]) -> ExhaustiveResult {
        assert!(self.is_done(), "campaign still has pending experiments");
        let n_sites = self.injector.n_sites();
        let bits = self.injector.bits();
        assert_eq!(
            certified.len(),
            n_sites,
            "certified masks cover a different fault space"
        );
        let masked = crate::outcome::Outcome::Masked.code();
        let mut codes = vec![masked; n_sites * bits as usize];
        let mut executed = self.completed.iter();
        for site in 0..n_sites {
            for bit in 0..bits {
                if certified[site] & (1u64 << bit) != 0 {
                    continue;
                }
                let e = executed
                    .next()
                    .expect("plan does not cover every non-certified pair");
                assert_eq!(
                    e.key(),
                    (site, bit),
                    "plan is not in pruned site-major order"
                );
                codes[site * bits as usize + bit as usize] = e.outcome.code();
            }
        }
        assert!(
            executed.next().is_none(),
            "plan has experiments beyond the pruned fault space"
        );
        ExhaustiveResult {
            n_sites,
            bits,
            codes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Classifier;
    use ftb_kernels::{KernelConfig, MatvecConfig, MatvecKernel};
    use std::path::PathBuf;

    fn tiny_kernel() -> MatvecKernel {
        MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        })
    }

    fn binding(inj: &Injector<'_>, plan: &str) -> CampaignBinding {
        CampaignBinding {
            kernel: KernelConfig::Matvec(MatvecConfig {
                n: 4,
                ..MatvecConfig::small()
            }),
            classifier: *inj.classifier(),
            n_sites: inj.n_sites(),
            bits: inj.bits(),
            plan: plan.to_string(),
            bit_prune: None,
            snapshot: None,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ftb-runner-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn exhaustive_plan_matches_result_layout() {
        let plan = exhaustive_plan(3, 4);
        assert_eq!(plan.len(), 12);
        assert_eq!((plan[0].site, plan[0].bit), (0, 0));
        assert_eq!((plan[5].site, plan[5].bit), (1, 1));
        assert_eq!((plan[11].site, plan[11].bit), (2, 3));
    }

    #[test]
    fn pruned_plan_skips_exactly_the_certified_bits() {
        // site 0: bits 1 and 3 certified; site 1: nothing; site 2: all 4
        let certified = vec![0b1010u64, 0, 0b1111];
        let plan = pruned_exhaustive_plan(3, 4, &certified);
        let pairs: Vec<(usize, u8)> = plan.iter().map(|f| (f.site, f.bit)).collect();
        assert_eq!(pairs, vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 2), (1, 3)]);
        // empty masks degenerate to the exhaustive plan
        let full = pruned_exhaustive_plan(3, 4, &[0, 0, 0]);
        assert_eq!(full.len(), exhaustive_plan(3, 4).len());
    }

    #[test]
    fn pruned_campaign_fills_certified_cells_with_masked() {
        let k = tiny_kernel();
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let truth = inj.exhaustive();
        // certify only bits that really are masked, from the ground
        // truth itself: the pruned table must then equal the full one.
        let masked_code = crate::outcome::Outcome::Masked.code();
        let bits = inj.bits() as usize;
        let certified: Vec<u64> = (0..inj.n_sites())
            .map(|site| {
                (0..bits.min(8)) // prune a slice of the low mantissa bits
                    .filter(|&b| truth.codes[site * bits + b] == masked_code)
                    .fold(0u64, |m, b| m | 1 << b)
            })
            .collect();
        let skipped: u64 = certified.iter().map(|m| m.count_ones() as u64).sum();
        assert!(skipped > 0, "tiny matvec should mask some low bits");

        let plan = pruned_exhaustive_plan(inj.n_sites(), inj.bits(), &certified);
        assert_eq!(plan.len() as u64 + skipped, (inj.n_sites() * bits) as u64);
        let mut cc = ChunkedCampaign::new(&inj, plan, 37);
        cc.run_to_completion().unwrap();
        assert_eq!(cc.into_exhaustive_with_certified(&certified), truth);
    }

    #[test]
    #[should_panic(expected = "pruned site-major order")]
    fn pruned_completion_rejects_foreign_plans() {
        let k = tiny_kernel();
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let certified = vec![1u64; inj.n_sites()]; // claims bit 0 skipped
        let mut cc = ChunkedCampaign::new(&inj, exhaustive_plan(inj.n_sites(), inj.bits()), 64);
        cc.run_to_completion().unwrap();
        let _ = cc.into_exhaustive_with_certified(&certified);
    }

    #[test]
    fn monte_carlo_plan_is_deterministic_and_in_range() {
        let a = monte_carlo_plan(20, 64, 50, 9);
        let b = monte_carlo_plan(20, 64, 50, 9);
        assert_eq!(a.len(), 50);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| (x.site, x.bit) == (y.site, y.bit)));
        assert!(a.iter().all(|f| f.site < 20 && f.bit < 64));
        let c = monte_carlo_plan(20, 64, 50, 10);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| (x.site, x.bit) != (y.site, y.bit)));
    }

    #[test]
    fn chunked_run_matches_direct_exhaustive() {
        let k = tiny_kernel();
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let mut cc = ChunkedCampaign::new(&inj, exhaustive_plan(inj.n_sites(), inj.bits()), 37);
        cc.run_to_completion().unwrap();
        let m = cc.metrics();
        assert_eq!(m.completed, m.total);
        assert!(m.chunks > 1, "37-wide chunks over the space need >1 step");
        let table = cc.into_exhaustive();
        assert_eq!(table, inj.exhaustive());
    }

    #[test]
    fn killed_campaign_resumes_and_reruns_only_the_tail() {
        let k = tiny_kernel();
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let plan = exhaustive_plan(inj.n_sites(), inj.bits());
        let total = plan.len();
        let path = tmp("resume.jsonl");
        let _ = std::fs::remove_file(&path);

        // run 3 chunks, then "crash" (drop mid-campaign)
        let mut first = ChunkedCampaign::new(&inj, plan.clone(), 50)
            .with_ledger(&path, binding(&inj, "exhaustive"), false)
            .unwrap();
        for _ in 0..3 {
            assert_eq!(first.step().unwrap(), 50);
        }
        drop(first);

        // resume: 150 pairs come from the ledger, the rest execute
        let mut second = ChunkedCampaign::new(&inj, plan, 50)
            .with_ledger(&path, binding(&inj, "exhaustive"), true)
            .unwrap();
        assert_eq!(second.remaining(), total - 150);
        let m = second.metrics();
        assert_eq!(m.resumed, 150);
        second.run_to_completion().unwrap();
        let m = second.metrics();
        assert_eq!(m.completed as usize, total);
        assert_eq!(m.executed as usize, total - 150);
        assert_eq!(second.into_exhaustive(), inj.exhaustive());

        // and the finished ledger replays to the same table
        let rec = read_ledger(&path).unwrap();
        assert_eq!(rec.experiments.len(), total);
    }

    #[test]
    fn resume_rejects_mismatched_binding() {
        let k = tiny_kernel();
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let plan = exhaustive_plan(inj.n_sites(), inj.bits());
        let path = tmp("mismatch.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut cc = ChunkedCampaign::new(&inj, plan.clone(), 64)
            .with_ledger(&path, binding(&inj, "exhaustive"), false)
            .unwrap();
        cc.step().unwrap();
        drop(cc);

        let other = binding(&inj, "monte-carlo n=5 seed=0");
        match ChunkedCampaign::new(&inj, plan, 64).with_ledger(&path, other, true) {
            Err(LedgerError::BindingMismatch { found }) => {
                assert_eq!(found.plan, "exhaustive");
            }
            other => panic!("expected BindingMismatch, got {:?}", other.err()),
        }
    }

    #[test]
    fn resume_rejects_plan_disagreement() {
        let k = tiny_kernel();
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let path = tmp("plan-disagree.jsonl");
        let _ = std::fs::remove_file(&path);

        let plan = exhaustive_plan(inj.n_sites(), inj.bits());
        let mut cc = ChunkedCampaign::new(&inj, plan, 64)
            .with_ledger(&path, binding(&inj, "exhaustive"), false)
            .unwrap();
        cc.step().unwrap();
        drop(cc);

        // same binding, but a plan whose pairs differ from the records
        let shifted = monte_carlo_plan(inj.n_sites(), inj.bits(), 64, 3);
        match ChunkedCampaign::new(&inj, shifted, 64).with_ledger(
            &path,
            binding(&inj, "exhaustive"),
            true,
        ) {
            Err(LedgerError::Format { .. }) => {}
            other => panic!("expected Format error, got {:?}", other.err()),
        }
    }

    #[test]
    fn resume_without_existing_file_starts_fresh() {
        let k = tiny_kernel();
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let path = tmp("fresh.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut cc = ChunkedCampaign::new(&inj, exhaustive_plan(inj.n_sites(), inj.bits()), 512)
            .with_ledger(&path, binding(&inj, "exhaustive"), true)
            .unwrap();
        assert_eq!(cc.metrics().resumed, 0);
        cc.run_to_completion().unwrap();
        assert!(path.exists());
    }

    #[test]
    fn monte_carlo_chunked_matches_monte_carlo() {
        let k = tiny_kernel();
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let direct = crate::monte_carlo::monte_carlo(&inj, 100, 0.95, 5);
        let plan = monte_carlo_plan(inj.n_sites(), inj.bits(), 100, 5);
        let mut cc = ChunkedCampaign::new(&inj, plan, 33);
        cc.run_to_completion().unwrap();
        let est = crate::monte_carlo::summarize(cc.experiments(), 0.95);
        assert_eq!(est.n_sdc, direct.n_sdc);
        assert_eq!(est.n_masked, direct.n_masked);
        assert_eq!(est.distinct_sites, direct.distinct_sites);
    }
}
