//! Campaign observability: live metrics and throttled progress lines.
//!
//! [`CampaignMetrics`] accumulates per-outcome counters, chunk timings
//! (Welford, via [`ftb_stats::online::OnlineStats`]), throughput and an
//! ETA while a campaign runs. [`MetricsSnapshot`] is the serializable
//! summary written by `--metrics-out`; every float in it is finite so
//! the JSON stays plainly machine-readable. [`ProgressReporter`] prints
//! rate-limited single-line progress to stderr.

use crate::experiment::Experiment;
use ftb_stats::online::OnlineStats;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Live counters and timings for a running campaign.
#[derive(Debug, Clone)]
pub struct CampaignMetrics {
    total: u64,
    resumed: u64,
    masked: u64,
    sdc: u64,
    crash: u64,
    chunk_secs: OnlineStats,
    started: Instant,
}

impl CampaignMetrics {
    /// Metrics for a campaign of `total` planned experiments.
    pub fn new(total: u64) -> Self {
        CampaignMetrics {
            total,
            resumed: 0,
            masked: 0,
            sdc: 0,
            crash: 0,
            chunk_secs: OnlineStats::new(),
            started: Instant::now(),
        }
    }

    /// Record `n` experiments recovered from a ledger (counted as
    /// completed but excluded from throughput).
    pub fn note_resumed(&mut self, experiments: &[Experiment]) {
        self.resumed += experiments.len() as u64;
        for e in experiments {
            self.tally(e);
        }
    }

    /// Record one executed chunk and how long it took.
    pub fn record_chunk(&mut self, experiments: &[Experiment], elapsed: Duration) {
        for e in experiments {
            self.tally(e);
        }
        self.chunk_secs.push(elapsed.as_secs_f64());
    }

    fn tally(&mut self, e: &Experiment) {
        match e.outcome.code() {
            0 => self.masked += 1,
            1 => self.sdc += 1,
            _ => self.crash += 1,
        }
    }

    /// Experiments completed so far (resumed + executed).
    pub fn completed(&self) -> u64 {
        self.masked + self.sdc + self.crash
    }

    /// Experiments executed in this process (excludes resumed records).
    pub fn executed(&self) -> u64 {
        self.completed() - self.resumed
    }

    /// Experiments still to run.
    pub fn remaining(&self) -> u64 {
        self.total.saturating_sub(self.completed())
    }

    /// Wall-clock since construction.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Executed experiments per second (0 until work has happened).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs > 0.0 && self.executed() > 0 {
            self.executed() as f64 / secs
        } else {
            0.0
        }
    }

    /// Estimated seconds to completion, if a rate is established yet.
    pub fn eta_secs(&self) -> Option<f64> {
        let rate = self.throughput();
        if rate > 0.0 {
            Some(self.remaining() as f64 / rate)
        } else {
            None
        }
    }

    /// Freeze the current state into a serializable summary.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let chunks = self.chunk_secs.count();
        MetricsSnapshot {
            total: self.total,
            completed: self.completed(),
            resumed: self.resumed,
            executed: self.executed(),
            masked: self.masked,
            sdc: self.sdc,
            crash: self.crash,
            elapsed_secs: self.elapsed().as_secs_f64(),
            experiments_per_sec: self.throughput(),
            eta_secs: self.eta_secs(),
            chunks,
            chunk_mean_secs: if chunks > 0 {
                self.chunk_secs.mean()
            } else {
                0.0
            },
            chunk_max_secs: if chunks > 0 {
                self.chunk_secs.max()
            } else {
                0.0
            },
        }
    }
}

/// Machine-readable campaign summary (the `--metrics-out` payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Planned experiment count.
    pub total: u64,
    /// Completed so far (resumed + executed).
    pub completed: u64,
    /// Recovered from a ledger rather than executed here.
    pub resumed: u64,
    /// Executed in this process.
    pub executed: u64,
    /// Masked outcomes among completed experiments.
    pub masked: u64,
    /// SDC outcomes among completed experiments.
    pub sdc: u64,
    /// Crash outcomes among completed experiments.
    pub crash: u64,
    /// Wall-clock seconds since the campaign (re)started.
    pub elapsed_secs: f64,
    /// Executed experiments per second.
    pub experiments_per_sec: f64,
    /// Estimated seconds remaining (`None` until a rate exists).
    pub eta_secs: Option<f64>,
    /// Chunks executed.
    pub chunks: u64,
    /// Mean chunk wall-clock seconds.
    pub chunk_mean_secs: f64,
    /// Slowest chunk wall-clock seconds.
    pub chunk_max_secs: f64,
}

/// Throttled stderr progress printer.
#[derive(Debug)]
pub struct ProgressReporter {
    every: Duration,
    last: Option<Instant>,
    label: String,
}

impl ProgressReporter {
    /// Reporter printing at most once per `every`.
    pub fn new(label: impl Into<String>, every: Duration) -> Self {
        ProgressReporter {
            every,
            last: None,
            label: label.into(),
        }
    }

    /// Print a progress line if the throttle interval has elapsed (or
    /// `force` is set — used for the first and final lines).
    pub fn report(&mut self, metrics: &CampaignMetrics, force: bool) {
        let due = match self.last {
            None => true,
            Some(t) => t.elapsed() >= self.every,
        };
        if !(due || force) {
            return;
        }
        self.last = Some(Instant::now());
        let s = metrics.snapshot();
        let pct = if s.total > 0 {
            100.0 * s.completed as f64 / s.total as f64
        } else {
            100.0
        };
        let eta = match s.eta_secs {
            Some(e) => format!("{e:.1}s"),
            None => "—".to_string(),
        };
        eprintln!(
            "[{}] {}/{} ({pct:.1}%) | {:.1} exp/s | ETA {eta} | \
             masked {} sdc {} crash {}",
            self.label, s.completed, s.total, s.experiments_per_sec, s.masked, s.sdc, s.crash,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Outcome;

    fn exp(outcome: Outcome) -> Experiment {
        Experiment {
            site: 0,
            bit: 0,
            injected_err: 1.0,
            output_err: 0.0,
            outcome,
        }
    }

    #[test]
    fn counters_split_by_outcome() {
        let mut m = CampaignMetrics::new(10);
        m.record_chunk(
            &[
                exp(Outcome::Masked),
                exp(Outcome::Sdc),
                exp(Outcome::Sdc),
                exp(Outcome::from_code(2)),
            ],
            Duration::from_millis(5),
        );
        let s = m.snapshot();
        assert_eq!((s.masked, s.sdc, s.crash), (1, 2, 1));
        assert_eq!(s.completed, 4);
        assert_eq!(s.executed, 4);
        assert_eq!(s.resumed, 0);
        assert_eq!(m.remaining(), 6);
        assert_eq!(s.chunks, 1);
        assert!(s.chunk_mean_secs > 0.0);
    }

    #[test]
    fn resumed_records_count_as_completed_not_executed() {
        let mut m = CampaignMetrics::new(8);
        m.note_resumed(&[exp(Outcome::Masked), exp(Outcome::Sdc)]);
        assert_eq!(m.completed(), 2);
        assert_eq!(m.executed(), 0);
        assert_eq!(m.remaining(), 6);
        // no executed work yet → no rate, no ETA
        assert_eq!(m.throughput(), 0.0);
        assert!(m.eta_secs().is_none());
    }

    #[test]
    fn snapshot_floats_are_finite_and_json_clean() {
        let m = CampaignMetrics::new(0);
        let s = m.snapshot();
        assert!(s.elapsed_secs.is_finite());
        assert!(s.experiments_per_sec.is_finite());
        assert!(s.chunk_mean_secs.is_finite());
        assert!(s.chunk_max_secs.is_finite());
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn eta_appears_once_rate_exists() {
        let mut m = CampaignMetrics::new(100);
        m.record_chunk(&[exp(Outcome::Masked)], Duration::from_millis(1));
        // elapsed > 0 and executed > 0 ⇒ throughput > 0 ⇒ ETA present
        assert!(m.throughput() > 0.0);
        assert!(m.eta_secs().unwrap() >= 0.0);
    }

    #[test]
    fn reporter_throttles() {
        let mut r = ProgressReporter::new("test", Duration::from_secs(3600));
        let m = CampaignMetrics::new(10);
        r.report(&m, false); // first call always prints
        let before = r.last.unwrap();
        r.report(&m, false); // throttled: timestamp unchanged
        assert_eq!(r.last.unwrap(), before);
        r.report(&m, true); // forced: timestamp advances
        assert!(r.last.unwrap() >= before);
    }
}
