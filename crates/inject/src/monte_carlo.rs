//! The statistical-fault-injection baseline.
//!
//! The traditional approach the paper compares against (its Figure 1,
//! left): uniformly sample `(site, bit)` experiments and report the
//! overall SDC ratio with a binomial confidence interval (Leveugle et
//! al., DATE'09 — reference 18 of the paper). It estimates the *overall*
//! ratio well but says nothing about unsampled instructions — exactly the
//! gap the fault tolerance boundary closes.

use crate::campaign::Injector;
use crate::experiment::Experiment;
use ftb_stats::ci::{proportion_ci_wilson, ConfidenceInterval};
use ftb_stats::sampling::seeded_rng;
use ftb_trace::FaultSpec;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Result of a uniform Monte-Carlo campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonteCarloEstimate {
    /// Number of experiments run.
    pub n: u64,
    /// Number of SDC outcomes.
    pub n_sdc: u64,
    /// Number of masked outcomes.
    pub n_masked: u64,
    /// Number of crash outcomes.
    pub n_crash: u64,
    /// Wilson confidence interval around the SDC ratio.
    pub sdc_ci: ConfidenceInterval,
    /// Number of *distinct sites* the campaign touched — the coverage
    /// number contrasted with the boundary method in Figure 1.
    pub distinct_sites: usize,
}

impl MonteCarloEstimate {
    /// Point estimate of the SDC ratio.
    pub fn sdc_ratio(&self) -> f64 {
        self.sdc_ci.estimate
    }
}

/// Run `n` uniform-random experiments (sites and bits drawn uniformly,
/// with replacement — the classic statistical-FI estimator) and summarise.
pub fn monte_carlo(injector: &Injector<'_>, n: u64, level: f64, seed: u64) -> MonteCarloEstimate {
    assert!(n > 0, "need at least one experiment");
    let mut rng = seeded_rng(seed);
    let n_sites = injector.n_sites();
    let bits = injector.bits();
    let faults: Vec<FaultSpec> = (0..n)
        .map(|_| FaultSpec {
            site: rng.gen_range(0..n_sites),
            bit: rng.gen_range(0..bits),
        })
        .collect();
    let results = injector.run_many(&faults);
    summarize(&results, level)
}

/// Summarise an arbitrary experiment list as a Monte-Carlo estimate.
pub fn summarize(results: &[Experiment], level: f64) -> MonteCarloEstimate {
    let n = results.len() as u64;
    let n_sdc = results.iter().filter(|e| e.outcome.is_sdc()).count() as u64;
    let n_masked = results.iter().filter(|e| e.outcome.is_masked()).count() as u64;
    let n_crash = n - n_sdc - n_masked;
    let mut sites: Vec<usize> = results.iter().map(|e| e.site).collect();
    sites.sort_unstable();
    sites.dedup();
    MonteCarloEstimate {
        n,
        n_sdc,
        n_masked,
        n_crash,
        sdc_ci: proportion_ci_wilson(n_sdc, n, level),
        distinct_sites: sites.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Classifier;
    use ftb_kernels::{MatvecConfig, MatvecKernel};

    #[test]
    fn estimate_tracks_exhaustive_truth() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let truth = inj.exhaustive().overall_sdc_ratio();
        let est = monte_carlo(&inj, 800, 0.95, 7);
        assert_eq!(est.n, 800);
        assert_eq!(est.n_sdc + est.n_masked + est.n_crash, 800);
        assert!(
            est.sdc_ci.contains(truth) || (est.sdc_ratio() - truth).abs() < 0.05,
            "MC estimate {} too far from truth {truth}",
            est.sdc_ratio()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let a = monte_carlo(&inj, 100, 0.95, 3);
        let b = monte_carlo(&inj, 100, 0.95, 3);
        assert_eq!(a.n_sdc, b.n_sdc);
        assert_eq!(a.distinct_sites, b.distinct_sites);
    }

    #[test]
    fn coverage_is_partial_at_low_sample_counts() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 8,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let est = monte_carlo(&inj, 20, 0.95, 1);
        assert!(est.distinct_sites <= 20);
        assert!(
            est.distinct_sites < inj.n_sites(),
            "20 samples cannot cover {} sites",
            inj.n_sites()
        );
    }
}
