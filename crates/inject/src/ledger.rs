//! Crash-safe streaming experiment ledger.
//!
//! A campaign ledger is an append-only JSONL file: the first line is a
//! [`LedgerHeader`] binding the file to a specific kernel configuration,
//! classifier, fault space, and campaign plan; every following line is
//! one completed [`Experiment`]. Records are appended and flushed one
//! chunk at a time, so a campaign killed at any point leaves a ledger
//! whose intact prefix is an exact record of the work already done.
//!
//! Recovery ([`read_ledger`]) tolerates exactly the damage a crash can
//! cause: a truncated or garbled *final* line (a torn write). Garbage
//! followed by further valid records means the file was corrupted by
//! something other than a crash mid-append and is rejected outright.

use crate::experiment::Experiment;
use crate::outcome::Classifier;
use ftb_kernels::KernelConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Format tag written into every ledger header.
pub const LEDGER_FORMAT: &str = "ftb-ledger-v1";

/// Everything a ledger (or adaptive checkpoint) must agree on before a
/// resume is allowed to skip already-completed work.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignBinding {
    /// Kernel configuration the campaign runs against.
    pub kernel: KernelConfig,
    /// Outcome classifier in use.
    pub classifier: Classifier,
    /// Number of injection sites in the golden run.
    pub n_sites: usize,
    /// Bits per site.
    pub bits: u8,
    /// Human-readable plan description, e.g. `"exhaustive"` or
    /// `"monte-carlo n=1000 seed=42"`. Part of the binding: resuming an
    /// exhaustive ledger under a Monte-Carlo plan must fail.
    pub plan: String,
    /// Bit-prune identity, present iff the campaign skips statically
    /// certified bits (`--bit-prune`). Part of the binding: a pruned
    /// ledger must not resume under different masks (the plans would
    /// silently disagree pair-for-pair). `None` on unpruned campaigns
    /// and defaulted on read, so pre-existing ledgers keep matching.
    #[serde(default)]
    pub bit_prune: Option<BitPruneBinding>,
    /// Snapshot-store identity, present iff the campaign resumes
    /// experiments from golden-run snapshots (`--snapshot`). Part of the
    /// binding: resumed execution is only byte-identical when every
    /// session serves experiments from the *same* capture, so a
    /// snapshot-run ledger must not resume under a different store (or
    /// none at all). `None` on from-scratch campaigns and defaulted on
    /// read, so pre-existing ledgers keep matching.
    #[serde(default)]
    pub snapshot: Option<SnapshotBinding>,
}

/// Identity of the snapshot store a campaign serves experiments from:
/// the retained boundary count plus a content digest that also binds the
/// golden run the store was captured against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotBinding {
    /// Number of retained boundary snapshots.
    pub snapshots: u64,
    /// `SnapshotStore::digest`: FNV-1a over pooled array bits, boundary
    /// coordinates, and the golden output bits.
    pub digest: u64,
}

/// Identity of the certified-bit masks a pruned campaign was planned
/// under: enough to detect any mask drift without embedding the full
/// per-site mask vector in every ledger header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitPruneBinding {
    /// Total number of certified (skipped) `(site, bit)` cells.
    pub certified: u64,
    /// Order-sensitive digest of the per-site certified masks
    /// (`BitMasks::digest` in `ftb-core`).
    pub digest: u64,
}

impl CampaignBinding {
    /// Structural equality via canonical JSON (avoids requiring
    /// `PartialEq` on every nested config type).
    pub fn matches(&self, other: &CampaignBinding) -> bool {
        serde_json::to_string(self).ok() == serde_json::to_string(other).ok()
    }
}

/// First line of every ledger file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LedgerHeader {
    /// Format tag ([`LEDGER_FORMAT`]).
    pub format: String,
    /// Campaign identity this ledger belongs to.
    pub binding: CampaignBinding,
}

impl LedgerHeader {
    /// Header for a binding, stamped with the current format tag.
    pub fn new(binding: CampaignBinding) -> Self {
        Self::with_format(LEDGER_FORMAT, binding)
    }

    /// Header with an explicit format tag (sectioned ledgers carry their
    /// own tag — see [`crate::sections`]).
    pub fn with_format(format: &str, binding: CampaignBinding) -> Self {
        LedgerHeader {
            format: format.to_string(),
            binding,
        }
    }
}

/// Ledger I/O failure.
#[derive(Debug)]
pub enum LedgerError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Structural damage beyond what a crash can explain (bad header,
    /// garbage followed by valid records, wrong format tag).
    Format {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The ledger belongs to a different campaign configuration.
    BindingMismatch {
        /// What the existing ledger was recorded under.
        found: Box<CampaignBinding>,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Io(e) => write!(f, "ledger I/O error: {e}"),
            LedgerError::Format { line, msg } => {
                write!(f, "ledger format error at line {line}: {msg}")
            }
            LedgerError::BindingMismatch { found } => write!(
                f,
                "ledger belongs to a different campaign (recorded plan: {:?})",
                found.plan
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<std::io::Error> for LedgerError {
    fn from(e: std::io::Error) -> Self {
        LedgerError::Io(e)
    }
}

/// What [`read_ledger`] recovered from disk.
#[derive(Debug)]
pub struct LedgerRecovery {
    /// The parsed header line.
    pub header: LedgerHeader,
    /// All intact experiment records, in ledger (= execution) order.
    pub experiments: Vec<Experiment>,
    /// Byte length of the intact prefix; resuming truncates the file to
    /// this length before appending.
    pub valid_len: u64,
    /// Whether a truncated/garbled trailing line was dropped.
    pub dropped_trailing: bool,
}

/// Read and validate a ledger, tolerating a torn final line.
pub fn read_ledger(path: &Path) -> Result<LedgerRecovery, LedgerError> {
    let (header, experiments, valid_len, dropped_trailing) = read_records(path, LEDGER_FORMAT)?;
    Ok(LedgerRecovery {
        header,
        experiments,
        valid_len,
        dropped_trailing,
    })
}

/// Generic JSONL-ledger recovery: parse the header (checking its format
/// tag), then every record line of type `T`, tolerating exactly a torn
/// *final* line. Shared by the experiment ledger ([`read_ledger`]) and
/// the sectioned campaign ledger ([`crate::sections::read_section_ledger`]),
/// so the two formats cannot drift in crash-recovery behaviour.
pub(crate) fn read_records<T: serde::de::DeserializeOwned>(
    path: &Path,
    expected_format: &str,
) -> Result<(LedgerHeader, Vec<T>, u64, bool), LedgerError> {
    let data = std::fs::read(path)?;
    let mut lines: Vec<(usize, &[u8])> = Vec::new(); // (start offset, bytes)
    let mut start = 0;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            lines.push((start, &data[start..i]));
            start = i + 1;
        }
    }
    if start < data.len() {
        lines.push((start, &data[start..]));
    }

    let (_, header_bytes) = *lines.first().ok_or(LedgerError::Format {
        line: 1,
        msg: "empty ledger file".into(),
    })?;
    let header: LedgerHeader =
        serde_json::from_slice(header_bytes).map_err(|e| LedgerError::Format {
            line: 1,
            msg: format!("unreadable header: {e}"),
        })?;
    if header.format != expected_format {
        return Err(LedgerError::Format {
            line: 1,
            msg: format!(
                "unsupported format tag {:?} (expected {expected_format:?})",
                header.format
            ),
        });
    }

    let mut records = Vec::new();
    let mut valid_len = lines
        .get(1)
        .map_or(data.len() as u64, |&(off, _)| off as u64);
    let mut dropped_trailing = false;
    for (idx, &(off, bytes)) in lines.iter().enumerate().skip(1) {
        if bytes.is_empty() {
            // A blank line can only be the torn remnant of a write that
            // got exactly the newline out; anything after it is damage.
            if idx + 1 != lines.len() {
                return Err(LedgerError::Format {
                    line: idx + 1,
                    msg: "blank line in the middle of the record stream".into(),
                });
            }
            valid_len = off as u64;
            break;
        }
        match serde_json::from_slice::<T>(bytes) {
            Ok(e) => {
                records.push(e);
                let end = off + bytes.len();
                // include the newline if one followed
                valid_len = if data.get(end) == Some(&b'\n') {
                    (end + 1) as u64
                } else {
                    end as u64
                };
            }
            Err(parse_err) => {
                if idx + 1 == lines.len() {
                    // torn final write — drop it, keep the intact prefix
                    valid_len = off as u64;
                    dropped_trailing = true;
                } else {
                    return Err(LedgerError::Format {
                        line: idx + 1,
                        msg: format!(
                            "unreadable record followed by later records \
                             (not a torn tail): {parse_err}"
                        ),
                    });
                }
            }
        }
    }

    Ok((header, records, valid_len, dropped_trailing))
}

/// Append-only ledger writer. Each [`append_chunk`](Self::append_chunk)
/// issues a single write followed by a flush, so a crash can tear at
/// most the final line.
#[derive(Debug)]
pub struct LedgerWriter {
    file: File,
    path: PathBuf,
}

impl LedgerWriter {
    /// Create (or truncate) a ledger at `path` and write its header.
    pub fn create(path: &Path, header: &LedgerHeader) -> Result<Self, LedgerError> {
        let mut file = File::create(path)?;
        let mut line = serde_json::to_string(header).map_err(|e| LedgerError::Format {
            line: 1,
            msg: format!("unserializable header: {e}"),
        })?;
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.flush()?;
        Ok(LedgerWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Reopen an existing ledger for appending, first truncating it to
    /// the intact prefix reported by [`read_ledger`].
    pub fn resume(path: &Path, valid_len: u64) -> Result<Self, LedgerError> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(LedgerWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Append one chunk of completed experiments: one JSON line per
    /// record, one write, one flush.
    pub fn append_chunk(&mut self, experiments: &[Experiment]) -> Result<(), LedgerError> {
        self.append_records(experiments)
    }

    /// Append arbitrary serialisable records (the sectioned ledger's
    /// record type differs from [`Experiment`]): one JSON line per
    /// record, one write, one flush.
    pub fn append_records<T: Serialize>(&mut self, records: &[T]) -> Result<(), LedgerError> {
        let mut buf = String::new();
        for e in records {
            buf.push_str(
                &serde_json::to_string(e).map_err(|err| LedgerError::Format {
                    line: 0,
                    msg: format!("unserializable record: {err}"),
                })?,
            );
            buf.push('\n');
        }
        self.file.write_all(buf.as_bytes())?;
        self.file.flush()?;
        Ok(())
    }

    /// Path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Outcome;
    use ftb_kernels::{KernelConfig, MatvecConfig};

    fn binding(plan: &str) -> CampaignBinding {
        CampaignBinding {
            kernel: KernelConfig::Matvec(MatvecConfig {
                n: 4,
                ..MatvecConfig::small()
            }),
            classifier: Classifier::new(1e-6),
            n_sites: 20,
            bits: 64,
            plan: plan.to_string(),
            bit_prune: None,
            snapshot: None,
        }
    }

    fn exp(site: usize, bit: u8) -> Experiment {
        Experiment {
            site,
            bit,
            injected_err: 1.5,
            output_err: 0.25,
            outcome: Outcome::Sdc,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ftb-ledger-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_header_and_records() {
        let path = tmp("roundtrip.jsonl");
        let header = LedgerHeader::new(binding("exhaustive"));
        let mut w = LedgerWriter::create(&path, &header).unwrap();
        w.append_chunk(&[exp(0, 1), exp(0, 2)]).unwrap();
        w.append_chunk(&[exp(1, 0)]).unwrap();
        drop(w);

        let rec = read_ledger(&path).unwrap();
        assert!(rec.header.binding.matches(&header.binding));
        assert_eq!(rec.experiments.len(), 3);
        assert_eq!(rec.experiments[2].key(), (1, 0));
        assert!(!rec.dropped_trailing);
        assert_eq!(rec.valid_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn truncated_trailing_line_is_dropped() {
        let path = tmp("torn.jsonl");
        let header = LedgerHeader::new(binding("exhaustive"));
        let mut w = LedgerWriter::create(&path, &header).unwrap();
        w.append_chunk(&[exp(0, 1), exp(0, 2)]).unwrap();
        drop(w);
        let intact = std::fs::metadata(&path).unwrap().len();

        // simulate a torn write: half a JSON record, no newline
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"site\":7,\"bit\":").unwrap();
        drop(f);

        let rec = read_ledger(&path).unwrap();
        assert!(rec.dropped_trailing);
        assert_eq!(rec.experiments.len(), 2);
        assert_eq!(rec.valid_len, intact);

        // resuming truncates the torn tail away
        let mut w = LedgerWriter::resume(&path, rec.valid_len).unwrap();
        w.append_chunk(&[exp(0, 3)]).unwrap();
        drop(w);
        let rec = read_ledger(&path).unwrap();
        assert!(!rec.dropped_trailing);
        assert_eq!(rec.experiments.len(), 3);
        assert_eq!(rec.experiments[2].key(), (0, 3));
    }

    #[test]
    fn garbled_trailing_line_is_dropped() {
        let path = tmp("garbled.jsonl");
        let header = LedgerHeader::new(binding("exhaustive"));
        let mut w = LedgerWriter::create(&path, &header).unwrap();
        w.append_chunk(&[exp(0, 1)]).unwrap();
        drop(w);
        let intact = std::fs::metadata(&path).unwrap().len();

        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"site\": 3, \"bit\": \"not-a-bit\"}\n")
            .unwrap();
        drop(f);

        let rec = read_ledger(&path).unwrap();
        assert!(rec.dropped_trailing);
        assert_eq!(rec.experiments.len(), 1);
        assert_eq!(rec.valid_len, intact);
    }

    #[test]
    fn garbage_followed_by_valid_records_is_rejected() {
        let path = tmp("midfile.jsonl");
        let header = LedgerHeader::new(binding("exhaustive"));
        let mut w = LedgerWriter::create(&path, &header).unwrap();
        w.append_chunk(&[exp(0, 1)]).unwrap();
        drop(w);

        let good = serde_json::to_string(&exp(0, 2)).unwrap();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(format!("NOT JSON\n{good}\n").as_bytes())
            .unwrap();
        drop(f);

        match read_ledger(&path) {
            Err(LedgerError::Format { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected mid-file Format error, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_headerless_files_are_format_errors() {
        let path = tmp("empty.jsonl");
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(
            read_ledger(&path),
            Err(LedgerError::Format { line: 1, .. })
        ));

        std::fs::write(&path, b"{\"half\": ").unwrap();
        assert!(matches!(
            read_ledger(&path),
            Err(LedgerError::Format { line: 1, .. })
        ));
    }

    #[test]
    fn wrong_format_tag_is_rejected() {
        let path = tmp("tag.jsonl");
        let mut header = LedgerHeader::new(binding("exhaustive"));
        header.format = "ftb-ledger-v0".into();
        LedgerWriter::create(&path, &header).unwrap();
        assert!(matches!(
            read_ledger(&path),
            Err(LedgerError::Format { line: 1, .. })
        ));
    }

    #[test]
    fn binding_match_is_sensitive_to_plan_and_config() {
        let a = binding("exhaustive");
        assert!(a.matches(&binding("exhaustive")));
        assert!(!a.matches(&binding("monte-carlo n=10 seed=1")));
        let mut c = binding("exhaustive");
        c.n_sites = 21;
        assert!(!a.matches(&c));
    }

    #[test]
    fn header_only_ledger_recovers_empty() {
        let path = tmp("header-only.jsonl");
        let header = LedgerHeader::new(binding("exhaustive"));
        LedgerWriter::create(&path, &header).unwrap();
        let rec = read_ledger(&path).unwrap();
        assert!(rec.experiments.is_empty());
        assert!(!rec.dropped_trailing);
        assert_eq!(rec.valid_len, std::fs::metadata(&path).unwrap().len());
    }
}
