//! # ftb-inject
//!
//! The fault-injection engine: runs single-bit-flip experiments against an
//! instrumented kernel and classifies their outcomes into the paper's
//! three categories (§2.1):
//!
//! * **Masked** — the output is within the domain tolerance `T` of the
//!   golden output (not necessarily bitwise identical);
//! * **SDC** — the run terminates normally but the output violates `T`;
//! * **Crash** — the run dies with a symptom: a non-finite value (the
//!   NaN-exception model) or an iteration blow-up (the hang model for
//!   iterative solvers).
//!
//! Campaign styles:
//!
//! * [`Injector::exhaustive`] — every bit of every dynamic instruction
//!   (the ground truth of the paper's §4.1, Rayon-parallel over sites);
//! * [`Injector::run_many`] — an arbitrary experiment list in parallel
//!   (used by the boundary samplers);
//! * [`monte_carlo()`] — the uniform statistical-fault-injection baseline
//!   (Leveugle et al., reference 18 of the paper) that reports an overall SDC
//!   ratio with a binomial confidence interval;
//! * [`ChunkedCampaign`] — any fixed fault plan run chunk-at-a-time with
//!   a crash-safe streaming [`ledger`], live [`obs`] metrics, and
//!   kill-and-resume recovery.
//!
//! Propagation-extracting campaigns select one of three equivalent
//! [`ExtractionMode`] paths (buffered, lockstep, streamed — see
//! [`extraction`]); `streamed` is the default and fastest.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod characterize;
pub mod experiment;
pub mod extraction;
pub mod ledger;
pub mod lockstep;
pub mod monte_carlo;
pub mod obs;
pub mod outcome;
pub mod runner;
pub mod sections;
pub mod snapshot;

pub use campaign::{ExhaustiveResult, ExtractionSummary, Injector};
pub use characterize::{
    characterize, site_tvd, CharacterizeReport, PairDelta, SiteHistogram, ThreadRun,
};
pub use experiment::Experiment;
pub use extraction::ExtractionMode;
pub use ledger::{
    read_ledger, BitPruneBinding, CampaignBinding, LedgerError, LedgerHeader, LedgerWriter,
    SnapshotBinding,
};
pub use lockstep::{
    fold_propagation_lockstep, fold_propagation_lockstep_resumed, LockstepReport, LockstepResume,
};
pub use monte_carlo::{monte_carlo, MonteCarloEstimate};
pub use obs::{CampaignMetrics, MetricsSnapshot, ProgressReporter};
pub use outcome::{Classifier, CrashKind, Outcome};
pub use runner::{
    exhaustive_plan, monte_carlo_plan, pruned_exhaustive_plan, ChunkedCampaign, DEFAULT_CHUNK,
};
pub use sections::{
    create_section_ledger, read_section_ledger, run_section_campaign, SectionCampaign,
    SectionCampaignConfig, SectionLedgerRecovery, SectionRecord, SectionSummary, SlotAmp,
    SECTIONS_FORMAT,
};
pub use snapshot::{schedule_snapshot_major, Snapshot, SnapshotStore, DEFAULT_MAX_SNAPSHOTS};
