//! Memory-bounded propagation extraction by computation duplication.
//!
//! The paper's §5 ("Overhead") notes that its approach must keep the
//! whole golden-run state in memory — `8 bytes × dynamic instructions` —
//! and suggests *computation duplication* as the fix. This module
//! implements that: the golden and the fault-injected executions run
//! concurrently, each streaming its dynamic-instruction values into a
//! **bounded** channel, and the comparison folds `Δx_i = |x_i − x'_i|`
//! on the fly. Peak memory is `O(channel capacity)` instead of
//! `O(dynamic instructions)` per run.
//!
//! Control-flow divergence is detected exactly as in the buffered path:
//! the first mismatching branch event ends the comparable window; value
//! comparison is truncated there. When a consumer stops early, the
//! producer tracers detach from their channels and the runs complete
//! without blocking (no deadlock on the scoped join).

use crate::outcome::{Classifier, Outcome};
use crossbeam::channel::{bounded, Receiver};
use ftb_kernels::{Kernel, KernelState};
use ftb_trace::{FaultSpec, StreamEvent, Tracer};

/// Where a lockstep extraction resumes from: both producer runs re-enter
/// the kernel at the same golden-run snapshot, so the skipped prefix —
/// identical in both by construction — contributes no deltas and no
/// branch events, exactly as when it is executed and compared.
#[derive(Debug, Clone)]
pub struct LockstepResume {
    /// Tracer cursor at the snapshot boundary.
    pub cursor: usize,
    /// Tracer branch count at the boundary.
    pub branch_count: usize,
    /// Kernel state at the boundary.
    pub state: KernelState,
}

/// Scan the tail of a stream (starting with `first`) for a branch
/// event. When one run's stream ends while the other still has events,
/// the runs diverged **only if** the longer side's remaining events
/// include a traced branch — the buffered comparison looks at branch
/// streams alone, and extra *values* past the common window never count
/// as divergence (untraced control flow shortened one run).
fn tail_has_branch(first: StreamEvent, rx: &Receiver<StreamEvent>) -> bool {
    if matches!(first, StreamEvent::Branch(_)) {
        return true;
    }
    while let Ok(ev) = rx.recv() {
        if matches!(ev, StreamEvent::Branch(_)) {
            return true;
        }
    }
    false
}

/// Summary of a lockstep comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockstepReport {
    /// Dynamic instructions compared (`0 .. compare_len`).
    pub compare_len: usize,
    /// Whether control flow diverged inside the window.
    pub diverged: bool,
    /// Largest perturbation seen in the window.
    pub max_err: f64,
    /// The realised injected error at the fault site (`None` if the site
    /// was never reached).
    pub injected_err: Option<f64>,
    /// Classified outcome of the faulty run.
    pub outcome: Outcome,
    /// Output error of the faulty run under the classifier's norm.
    pub output_err: f64,
}

/// Run the golden and fault-injected executions of `kernel` in lockstep
/// and fold every per-site perturbation into `fold(site, Δx)`; zero
/// perturbations are skipped. `capacity` bounds each stream's buffer
/// (values in flight), which bounds the peak memory of the whole
/// extraction.
///
/// The outcome classification uses the runs' outputs exactly like the
/// buffered path, so `report.outcome` matches `Injector::run_one`.
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn fold_propagation_lockstep(
    kernel: &dyn Kernel,
    fault: FaultSpec,
    classifier: &Classifier,
    capacity: usize,
    fold: impl FnMut(usize, f64),
) -> LockstepReport {
    lockstep_impl(kernel, fault, classifier, capacity, None, fold)
}

/// [`fold_propagation_lockstep`], but both producer runs start from a
/// golden-run snapshot instead of `t = 0`. The fault site must not lie
/// inside the skipped prefix (enforced by the tracer). The report is
/// identical to the from-scratch one: skipped sites are identical in
/// both runs, so they fold nothing and shift no coordinates.
pub fn fold_propagation_lockstep_resumed(
    kernel: &dyn Kernel,
    fault: FaultSpec,
    classifier: &Classifier,
    capacity: usize,
    resume: &LockstepResume,
    fold: impl FnMut(usize, f64),
) -> LockstepReport {
    lockstep_impl(kernel, fault, classifier, capacity, Some(resume), fold)
}

fn lockstep_impl(
    kernel: &dyn Kernel,
    fault: FaultSpec,
    classifier: &Classifier,
    capacity: usize,
    resume: Option<&LockstepResume>,
    mut fold: impl FnMut(usize, f64),
) -> LockstepReport {
    assert!(capacity > 0, "need a positive channel capacity");
    let precision = kernel.precision();

    let (gtx, grx) = bounded::<StreamEvent>(capacity);
    let (ftx, frx) = bounded::<StreamEvent>(capacity);

    std::thread::scope(|scope| {
        let golden_handle = scope.spawn(move || match resume {
            Some(rs) => {
                let mut t =
                    Tracer::streaming(precision, None, gtx).resume_at(rs.cursor, rs.branch_count);
                let out = kernel.run_resumed(&mut t, &rs.state, &mut |_, _, _| false);
                (t.finish(out), false)
            }
            None => {
                let mut t = Tracer::streaming(precision, None, gtx);
                let out = kernel.run(&mut t);
                (t.finish(out), false)
            }
        });
        let faulty_handle = scope.spawn(move || match resume {
            Some(rs) => {
                let mut t = Tracer::streaming(precision, Some(fault), ftx)
                    .resume_at(rs.cursor, rs.branch_count);
                let out = kernel.run_resumed(&mut t, &rs.state, &mut |_, _, _| false);
                (t.finish(out), true)
            }
            None => {
                let mut t = Tracer::streaming(precision, Some(fault), ftx);
                let out = kernel.run(&mut t);
                (t.finish(out), true)
            }
        });

        // the consumer: zip the two event streams. Under a resume the
        // skipped prefix was compared implicitly (identical by
        // construction), so site counting starts at the boundary cursor.
        let mut site = resume.map_or(0, |rs| rs.cursor);
        let mut compare_len_limit = usize::MAX;
        let mut diverged = false;
        let mut max_err = 0.0f64;
        loop {
            if site >= compare_len_limit {
                break;
            }
            match (grx.recv(), frx.recv()) {
                (Ok(StreamEvent::Value(g)), Ok(StreamEvent::Value(f))) => {
                    let mut d = (g - f).abs();
                    if d.is_nan() {
                        d = f64::INFINITY;
                    }
                    if d > 0.0 {
                        fold(site, d);
                        if d > max_err {
                            max_err = d;
                        }
                    }
                    site += 1;
                }
                (Ok(StreamEvent::Branch(gb)), Ok(StreamEvent::Branch(fb))) => {
                    if gb != fb {
                        // first mismatching branch: window ends at the
                        // earlier of the two cursors (as in the buffered
                        // comparison)
                        compare_len_limit = ((gb >> 1).min(fb >> 1)) as usize;
                        diverged = true;
                    }
                }
                // kind mismatch: one run branched where the other
                // produced a value — control flow has diverged here
                (Ok(_), Ok(_)) => {
                    diverged = true;
                    break;
                }
                // one stream ended: divergence only if the longer side's
                // branch stream keeps going (length divergence of values
                // alone is *not* divergence, matching the buffered path)
                (Err(_), Ok(f)) => {
                    diverged = tail_has_branch(f, &frx);
                    break;
                }
                (Ok(g), Err(_)) => {
                    diverged = tail_has_branch(g, &grx);
                    break;
                }
                (Err(_), Err(_)) => break,
            }
        }
        // stop consuming; producers detach when their send fails
        drop(grx);
        drop(frx);

        let (golden_run, _) = golden_handle.join().expect("golden thread panicked");
        let (faulty_run, _) = faulty_handle.join().expect("faulty thread panicked");

        let compare_len = site.min(compare_len_limit);
        // classification against the golden output, as in the buffered path
        let golden_full = ftb_trace::GoldenRun {
            precision,
            values: Vec::new(),
            static_ids: Vec::new(),
            branches: Vec::new(),
            output: golden_run.output,
            n_dynamic: golden_run.n_dynamic,
        };
        let (outcome, output_err) = classifier.classify(&golden_full, &faulty_run);

        LockstepReport {
            compare_len,
            diverged,
            max_err,
            injected_err: faulty_run.injected_err,
            outcome,
            output_err,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Injector;
    use ftb_kernels::{Kernel, LuConfig, LuKernel, StencilConfig, StencilKernel};

    #[test]
    fn lockstep_matches_buffered_propagation_exactly() {
        let kernel = StencilKernel::new(StencilConfig {
            grid: 8,
            sweeps: 4,
            ..StencilConfig::small()
        });
        let classifier = Classifier::new(1e-6);
        let injector = Injector::new(&kernel, classifier);
        let fault = FaultSpec { site: 80, bit: 30 };

        let (exp, prop) = injector.run_one_traced(fault.site, fault.bit);

        let mut folded: Vec<(usize, f64)> = Vec::new();
        let report = fold_propagation_lockstep(&kernel, fault, &classifier, 64, |s, d| {
            folded.push((s, d));
        });

        // identical nonzero error stream
        let buffered: Vec<(usize, f64)> = prop.iter().filter(|&(_, d)| d > 0.0).collect();
        assert_eq!(folded, buffered);
        assert_eq!(report.outcome, exp.outcome);
        assert_eq!(report.injected_err, Some(exp.injected_err));
        assert_eq!(report.compare_len, prop.compare_len);
        assert_eq!(report.diverged, prop.diverged);
    }

    #[test]
    fn lockstep_handles_branch_free_kernels_with_tiny_buffers() {
        let kernel = LuKernel::new(LuConfig {
            n: 8,
            block: 4,
            ..LuConfig::small()
        });
        let classifier = Classifier::new(3e-5);
        let fault = FaultSpec { site: 70, bit: 52 };
        // capacity 1: fully serialised hand-off, still exact
        let mut count = 0;
        let report = fold_propagation_lockstep(&kernel, fault, &classifier, 1, |_, _| count += 1);
        assert!(count > 0);
        assert!(!report.diverged);
        assert!(report.max_err > 0.0);
    }

    #[test]
    fn lockstep_detects_divergence_without_deadlock() {
        use ftb_kernels::{CgConfig, CgKernel};
        let kernel = CgKernel::new(CgConfig {
            grid: 4,
            max_iters: 100,
            ..CgConfig::small()
        });
        let classifier = Classifier::new(1e-1);
        let injector = Injector::new(&kernel, classifier);
        // find a fault that changes the iteration count (branch stream)
        let golden = kernel.golden();
        let mut checked = 0;
        for site in 0..golden.n_sites() {
            let (_, prop) = injector.run_one_traced(site, 30);
            if prop.diverged {
                let report = fold_propagation_lockstep(
                    &kernel,
                    FaultSpec { site, bit: 30 },
                    &classifier,
                    16,
                    |_, _| {},
                );
                assert!(report.diverged, "lockstep missed divergence at site {site}");
                assert_eq!(report.compare_len, prop.compare_len);
                checked += 1;
                if checked >= 3 {
                    break;
                }
            }
        }
        assert!(checked > 0, "no diverging fault found to exercise the test");
    }

    #[test]
    fn resumed_lockstep_matches_from_scratch() {
        use crate::snapshot::SnapshotStore;
        use ftb_kernels::{JacobiConfig, JacobiKernel};
        let kernel = JacobiKernel::new(JacobiConfig {
            sweeps: 10,
            ..JacobiConfig::small()
        });
        let g = kernel.golden();
        let store = SnapshotStore::capture(&kernel, &g, usize::MAX).unwrap();
        let classifier = Classifier::new(1e-6);
        let site = g.n_sites() - 5;
        let fault = FaultSpec { site, bit: 40 };

        let mut scratch_deltas = Vec::new();
        let scratch = fold_propagation_lockstep(&kernel, fault, &classifier, 64, |s, d| {
            scratch_deltas.push((s, d));
        });

        let (_, snap) = store.for_site(site).unwrap();
        assert!(snap.cursor > 0, "late site should resume past t = 0");
        let rs = LockstepResume {
            cursor: snap.cursor,
            branch_count: snap.branch_count,
            state: store.state(snap),
        };
        let mut resumed_deltas = Vec::new();
        let resumed =
            fold_propagation_lockstep_resumed(&kernel, fault, &classifier, 64, &rs, |s, d| {
                resumed_deltas.push((s, d));
            });

        assert_eq!(scratch, resumed);
        assert_eq!(scratch_deltas, resumed_deltas);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let kernel = StencilKernel::new(StencilConfig::small());
        let classifier = Classifier::new(1e-6);
        let _ = fold_propagation_lockstep(
            &kernel,
            FaultSpec { site: 0, bit: 0 },
            &classifier,
            0,
            |_, _| {},
        );
    }
}
