//! Property tests over the kernel implementations: numerical correctness
//! and tracing invariants across random seeds and sizes.

use ftb_kernels::{
    Csr, FftConfig, FftKernel, Kernel, LuConfig, LuKernel, MatvecConfig, MatvecKernel,
    StencilConfig, StencilKernel,
};
use ftb_trace::norms::Norm;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// LU: L·U reassembles to the input matrix for any seed and block
    /// split.
    #[test]
    fn lu_reassembles_for_any_seed(seed in 0u64..1000, block_choice in 0usize..3) {
        let n = 12;
        let block = [2, 3, 4][block_choice];
        let k = LuKernel::new(LuConfig { n, block, seed, ..LuConfig::small() });
        let g = k.golden();
        // reassemble
        let lu = &g.output;
        let mut back = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..=i.min(j) {
                    let l = if kk == i { 1.0 } else { lu[i * n + kk] };
                    s += l * lu[kk * n + j];
                }
                back[i * n + j] = s;
            }
        }
        let err = Norm::LInf.distance(&back, &ftb_kernels::inputs::diag_dominant_matrix(seed, n));
        prop_assert!(err < 1e-9, "reassembly error {err}");
    }

    /// FFT matches the naive DFT for any seed and factorisation.
    #[test]
    fn fft_matches_dft_for_any_seed(seed in 0u64..1000, shape in 0usize..3) {
        let (n1, n2) = [(4usize, 4usize), (4, 8), (8, 4)][shape];
        let k = FftKernel::new(FftConfig { n1, n2, seed, ..FftConfig::small() });
        let g = k.golden();
        let n = n1 * n2;
        // naive DFT over the kernel's own inputs (recover from the trace:
        // the first 2n sites are the interleaved input loads)
        let re: Vec<f64> = (0..n).map(|i| g.values[2 * i]).collect();
        let im: Vec<f64> = (0..n).map(|i| g.values[2 * i + 1]).collect();
        let mut reference = Vec::with_capacity(2 * n);
        for kk in 0..n {
            let (mut sr, mut si) = (0.0, 0.0);
            for j in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (kk * j) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                sr += re[j] * c - im[j] * s;
                si += re[j] * s + im[j] * c;
            }
            reference.push(sr);
            reference.push(si);
        }
        let err = Norm::LInf.distance(&g.output, &reference);
        prop_assert!(err < 1e-9, "DFT mismatch {err}");
    }

    /// Stencil sweeps preserve the value range (a convex average can
    /// never exceed its inputs).
    #[test]
    fn stencil_respects_maximum_principle(seed in 0u64..1000) {
        let k = StencilKernel::new(StencilConfig { grid: 8, sweeps: 6, seed, ..StencilConfig::small() });
        let g = k.golden();
        let bound = g
            .values
            .iter()
            .take(64) // the init region holds the initial grid
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        for &v in &g.output {
            prop_assert!(v.abs() <= bound + 1e-12, "value {v} exceeds initial bound {bound}");
        }
    }

    /// Matvec golden output equals a direct evaluation for any seed/size.
    #[test]
    fn matvec_matches_direct(seed in 0u64..1000, n in 2usize..12) {
        let k = MatvecKernel::new(MatvecConfig { n, seed, ..MatvecConfig::small() });
        let g = k.golden();
        prop_assert_eq!(g.n_sites(), n * n + 2 * n);
        for i in 0..n {
            let row_start = i * n;
            let expect: f64 = (0..n)
                .map(|j| g.values[row_start + j] * g.values[n * n + j])
                .sum();
            prop_assert!((g.output[i] - expect).abs() < 1e-12);
        }
    }

    /// CSR assembly from shuffled triplets is order-independent.
    #[test]
    fn csr_assembly_is_order_independent(perm_seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut triplets = vec![
            (0usize, 0usize, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
            (1, 0, -1.0),
        ];
        let a = Csr::from_triplets(3, 3, triplets.clone());
        let mut rng = rand::rngs::SmallRng::seed_from_u64(perm_seed);
        triplets.shuffle(&mut rng);
        let b = Csr::from_triplets(3, 3, triplets);
        prop_assert_eq!(a, b);
    }
}
