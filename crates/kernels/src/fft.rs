//! Six-step 1-D complex FFT, SPLASH-2 style.
//!
//! The SPLASH-2 `fft` benchmark implements the six-step algorithm for a
//! length `n = n1 × n2` transform, viewing the signal as an `n1 × n2`
//! matrix:
//!
//! 1. transpose to `n2 × n1`;
//! 2. `n2` row FFTs of length `n1`;
//! 3. twiddle multiplication by `W_n^(j1·j2)`;
//! 4. transpose back to `n1 × n2`;
//! 5. `n1` row FFTs of length `n2`;
//! 6. final transpose to `n2 × n1` (natural output order).
//!
//! The paper notes (§4.2) that the early FFT instructions — the first
//! transpose and first round of row FFTs — touch most data elements only
//! a few times, so errors injected there propagate poorly and the
//! inference method is least informed about that region. Keeping the six
//! steps as distinct static instructions preserves that structure.
//!
//! Every complex store is two dynamic instructions (real then imaginary
//! part), matching the paper's element-level fault model.

use crate::inputs::uniform_vec;
use crate::Kernel;
use ftb_trace::{Fnv1a, OpKind, Precision, StaticId, StaticRegistry, Tracer};
use serde::{Deserialize, Serialize};

ftb_trace::static_instrs! {
    pub mod sid {
        INIT     => ("fft.init.x", Init),
        // phase heads: the four six-step stages that run exactly once
        // (the per-row bitrev/butterfly sites recur per row and would
        // over-split, so the two FFT passes ride with the transpose or
        // twiddle stage that precedes them) — the trace segments into
        // [init][transpose1 + pass1][twiddle][transpose2 + pass2][out]
        TRANS1   => ("fft.transpose1", DataMovement, phase),
        FFT1_REV => ("fft.pass1.bitrev", DataMovement),
        FFT1_BFY => ("fft.pass1.butterfly", Compute),
        TWIDDLE  => ("fft.twiddle", Compute, phase),
        TRANS2   => ("fft.transpose2", DataMovement, phase),
        FFT2_REV => ("fft.pass2.bitrev", DataMovement),
        FFT2_BFY => ("fft.pass2.butterfly", Compute),
        TRANS3   => ("fft.transpose3", Output, phase),
    }
}

/// Configuration of the six-step FFT kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FftConfig {
    /// Row count of the matrix view; must be a power of two.
    pub n1: usize,
    /// Column count; must be a power of two. Transform length is `n1·n2`.
    pub n2: usize,
    /// Element precision.
    pub precision: Precision,
    /// Input seed.
    pub seed: u64,
}

impl FftConfig {
    /// Laptop-scale default: a 256-point transform (16 × 16).
    pub fn small() -> Self {
        FftConfig {
            n1: 16,
            n2: 16,
            precision: Precision::F64,
            seed: 42,
        }
    }

    /// Total transform length.
    pub fn n(&self) -> usize {
        self.n1 * self.n2
    }
}

/// Complex buffer stored as separate re/im vectors (structure-of-arrays).
#[derive(Debug, Clone)]
struct CBuf {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl CBuf {
    fn zero(n: usize) -> Self {
        CBuf {
            re: vec![0.0; n],
            im: vec![0.0; n],
        }
    }
}

/// Def-site map paralleling a [`CBuf`]: the dynamic instruction that
/// last defined each real / imaginary element (provenance mode only).
#[derive(Debug, Clone)]
struct DefBuf {
    re: Vec<usize>,
    im: Vec<usize>,
}

impl DefBuf {
    fn zero(n: usize) -> Self {
        DefBuf {
            re: vec![0usize; n],
            im: vec![0usize; n],
        }
    }
}

/// The instrumented six-step FFT kernel.
#[derive(Debug, Clone)]
pub struct FftKernel {
    cfg: FftConfig,
    input_re: Vec<f64>,
    input_im: Vec<f64>,
    sites_hint: usize,
}

impl FftKernel {
    /// Build the kernel; generates a random complex input signal.
    ///
    /// # Panics
    /// Panics unless `n1` and `n2` are powers of two ≥ 2.
    pub fn new(cfg: FftConfig) -> Self {
        assert!(
            cfg.n1.is_power_of_two() && cfg.n1 >= 2,
            "n1 must be a power of two ≥ 2"
        );
        assert!(
            cfg.n2.is_power_of_two() && cfg.n2 >= 2,
            "n2 must be a power of two ≥ 2"
        );
        let n = cfg.n();
        let input_re = uniform_vec(cfg.seed, n, -1.0, 1.0);
        let input_im = uniform_vec(cfg.seed.wrapping_add(1), n, -1.0, 1.0);
        let mut k = FftKernel {
            cfg,
            input_re,
            input_im,
            sites_hint: 0,
        };
        let mut t = Tracer::untraced(k.cfg.precision);
        let _ = k.run(&mut t);
        k.sites_hint = t.cursor();
        k
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &FftConfig {
        &self.cfg
    }

    /// Transform length.
    pub fn n(&self) -> usize {
        self.cfg.n()
    }

    /// Traced transpose of an `rows × cols` matrix into `dst`
    /// (`cols × rows`).
    fn transpose(
        t: &mut Tracer,
        sid: StaticId,
        src: &CBuf,
        dst: &mut CBuf,
        rows: usize,
        cols: usize,
    ) {
        for r in 0..rows {
            for c in 0..cols {
                let s = r * cols + c;
                let d = c * rows + r;
                dst.re[d] = t.value(sid, src.re[s]);
                dst.im[d] = t.value(sid, src.im[s]);
            }
        }
    }

    /// In-place iterative radix-2 FFT over each length-`len` row of `buf`
    /// (`rows` rows). Bit-reversal stores and butterfly stores are traced.
    fn row_ffts(
        t: &mut Tracer,
        rev_sid: StaticId,
        bfy_sid: StaticId,
        buf: &mut CBuf,
        rows: usize,
        len: usize,
    ) {
        for row in 0..rows {
            let base = row * len;
            // bit-reversal permutation (traced swaps)
            let bits = len.trailing_zeros();
            for i in 0..len {
                let j = i.reverse_bits() >> (usize::BITS - bits);
                if i < j {
                    let (ai, aj) = (base + i, base + j);
                    let (re_i, im_i) = (buf.re[ai], buf.im[ai]);
                    buf.re[ai] = t.value(rev_sid, buf.re[aj]);
                    buf.im[ai] = t.value(rev_sid, buf.im[aj]);
                    buf.re[aj] = t.value(rev_sid, re_i);
                    buf.im[aj] = t.value(rev_sid, im_i);
                }
            }
            // butterflies
            let mut half = 1;
            while half < len {
                let step = half * 2;
                // per-group root of unity: W_step^k, computed in registers
                let ang0 = -std::f64::consts::PI / half as f64;
                for start in (0..len).step_by(step) {
                    for k in 0..half {
                        let ang = ang0 * k as f64;
                        let (wr, wi) = (ang.cos(), ang.sin());
                        let u = base + start + k;
                        let v = u + half;
                        let (ur, ui) = (buf.re[u], buf.im[u]);
                        let (vr, vi) = (buf.re[v], buf.im[v]);
                        let tr = wr * vr - wi * vi;
                        let ti = wr * vi + wi * vr;
                        buf.re[u] = t.value(bfy_sid, ur + tr);
                        buf.im[u] = t.value(bfy_sid, ui + ti);
                        buf.re[v] = t.value(bfy_sid, ur - tr);
                        buf.im[v] = t.value(bfy_sid, ui - ti);
                    }
                }
                half = step;
            }
        }
    }

    /// Provenance-recording transpose: each store is `Linear` in its
    /// source element; `dst_def` receives the new def sites.
    #[allow(clippy::too_many_arguments)]
    fn transpose_prov(
        t: &mut Tracer,
        sid: StaticId,
        src: &CBuf,
        src_def: &DefBuf,
        dst: &mut CBuf,
        dst_def: &mut DefBuf,
        rows: usize,
        cols: usize,
    ) {
        for r in 0..rows {
            for c in 0..cols {
                let s = r * cols + c;
                let d = c * rows + r;
                t.dep(src_def.re[s], OpKind::Linear);
                dst_def.re[d] = t.cursor();
                dst.re[d] = t.value(sid, src.re[s]);
                t.dep(src_def.im[s], OpKind::Linear);
                dst_def.im[d] = t.cursor();
                dst.im[d] = t.value(sid, src.im[s]);
            }
        }
    }

    /// Provenance-recording row FFTs. A butterfly output `u' = u ± w·v`
    /// is `Linear` in `u` and `Scale(|w_re|)/Scale(|w_im|)` in the real /
    /// imaginary parts of `v` (the complex product mixes them):
    /// `re(u') = re(u) ± (w_re·re(v) − w_im·im(v))` and
    /// `im(u') = im(u) ± (w_re·im(v) + w_im·re(v))`.
    fn row_ffts_prov(
        t: &mut Tracer,
        rev_sid: StaticId,
        bfy_sid: StaticId,
        buf: &mut CBuf,
        def: &mut DefBuf,
        rows: usize,
        len: usize,
    ) {
        for row in 0..rows {
            let base = row * len;
            let bits = len.trailing_zeros();
            for i in 0..len {
                let j = i.reverse_bits() >> (usize::BITS - bits);
                if i < j {
                    let (ai, aj) = (base + i, base + j);
                    let (re_i, im_i) = (buf.re[ai], buf.im[ai]);
                    let (dre_i, dim_i) = (def.re[ai], def.im[ai]);
                    t.dep(def.re[aj], OpKind::Linear);
                    def.re[ai] = t.cursor();
                    buf.re[ai] = t.value(rev_sid, buf.re[aj]);
                    t.dep(def.im[aj], OpKind::Linear);
                    def.im[ai] = t.cursor();
                    buf.im[ai] = t.value(rev_sid, buf.im[aj]);
                    t.dep(dre_i, OpKind::Linear);
                    def.re[aj] = t.cursor();
                    buf.re[aj] = t.value(rev_sid, re_i);
                    t.dep(dim_i, OpKind::Linear);
                    def.im[aj] = t.cursor();
                    buf.im[aj] = t.value(rev_sid, im_i);
                }
            }
            let mut half = 1;
            while half < len {
                let step = half * 2;
                let ang0 = -std::f64::consts::PI / half as f64;
                for start in (0..len).step_by(step) {
                    for k in 0..half {
                        let ang = ang0 * k as f64;
                        let (wr, wi) = (ang.cos(), ang.sin());
                        let u = base + start + k;
                        let v = u + half;
                        let (ur, ui) = (buf.re[u], buf.im[u]);
                        let (vr, vi) = (buf.re[v], buf.im[v]);
                        let (dur, dui) = (def.re[u], def.im[u]);
                        let (dvr, dvi) = (def.re[v], def.im[v]);
                        let tr = wr * vr - wi * vi;
                        let ti = wr * vi + wi * vr;
                        t.dep(dur, OpKind::Linear);
                        t.dep(dvr, OpKind::Scale(wr));
                        t.dep(dvi, OpKind::Scale(wi));
                        def.re[u] = t.cursor();
                        buf.re[u] = t.value(bfy_sid, ur + tr);
                        t.dep(dui, OpKind::Linear);
                        t.dep(dvi, OpKind::Scale(wr));
                        t.dep(dvr, OpKind::Scale(wi));
                        def.im[u] = t.cursor();
                        buf.im[u] = t.value(bfy_sid, ui + ti);
                        t.dep(dur, OpKind::Linear);
                        t.dep(dvr, OpKind::Scale(wr));
                        t.dep(dvi, OpKind::Scale(wi));
                        def.re[v] = t.cursor();
                        buf.re[v] = t.value(bfy_sid, ur - tr);
                        t.dep(dui, OpKind::Linear);
                        t.dep(dvi, OpKind::Scale(wr));
                        t.dep(dvr, OpKind::Scale(wi));
                        def.im[v] = t.cursor();
                        buf.im[v] = t.value(bfy_sid, ui - ti);
                    }
                }
                half = step;
            }
        }
    }
}

impl Kernel for FftKernel {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn precision(&self) -> Precision {
        self.cfg.precision
    }

    fn registry(&self) -> StaticRegistry {
        sid::registry()
    }

    fn estimated_sites(&self) -> usize {
        self.sites_hint
    }

    fn code_version(&self, _lo: usize, _hi: usize) -> u64 {
        // the factorisation shapes the instruction stream; the seed only
        // changes input values
        let mut h = Fnv1a::new();
        h.write(b"fft/six-step/v1");
        h.write_u64(self.cfg.n1 as u64);
        h.write_u64(self.cfg.n2 as u64);
        h.finish()
    }

    fn run(&self, t: &mut Tracer) -> Vec<f64> {
        let (n1, n2) = (self.cfg.n1, self.cfg.n2);
        let n = n1 * n2;

        // Hot (injection) path: no def-map bookkeeping.
        if !t.ddg_enabled() {
            // Init region: load the signal (2 dynamic instructions per
            // sample).
            let mut x = CBuf::zero(n);
            for i in 0..n {
                x.re[i] = t.value(sid::INIT, self.input_re[i]);
                x.im[i] = t.value(sid::INIT, self.input_im[i]);
            }

            // Step 1: transpose n1×n2 -> n2×n1.
            let mut y = CBuf::zero(n);
            Self::transpose(t, sid::TRANS1, &x, &mut y, n1, n2);

            // Step 2: n2 row FFTs of length n1.
            Self::row_ffts(t, sid::FFT1_REV, sid::FFT1_BFY, &mut y, n2, n1);

            // Step 3: twiddle multiply Y[j2][j1] *= W_n^(j1*j2).
            let w0 = -2.0 * std::f64::consts::PI / n as f64;
            for j2 in 0..n2 {
                for j1 in 0..n1 {
                    let ang = w0 * (j1 * j2) as f64;
                    let (wr, wi) = (ang.cos(), ang.sin());
                    let idx = j2 * n1 + j1;
                    let (r, i) = (y.re[idx], y.im[idx]);
                    y.re[idx] = t.value(sid::TWIDDLE, r * wr - i * wi);
                    y.im[idx] = t.value(sid::TWIDDLE, r * wi + i * wr);
                }
            }

            // Step 4: transpose n2×n1 -> n1×n2.
            Self::transpose(t, sid::TRANS2, &y, &mut x, n2, n1);

            // Step 5: n1 row FFTs of length n2.
            Self::row_ffts(t, sid::FFT2_REV, sid::FFT2_BFY, &mut x, n1, n2);

            // Step 6: final transpose to natural order (n1×n2 -> n2×n1).
            Self::transpose(t, sid::TRANS3, &x, &mut y, n1, n2);

            // Output: interleaved re/im.
            let mut out = Vec::with_capacity(2 * n);
            for i in 0..n {
                out.push(y.re[i]);
                out.push(y.im[i]);
            }
            return out;
        }

        // Provenance mode: def maps travel with the complex buffers
        // through every stage. The complex product's real/imaginary
        // mixing makes each butterfly/twiddle store depend on both parts
        // of its source element.
        let mut x = CBuf::zero(n);
        let mut dx = DefBuf::zero(n);
        for i in 0..n {
            dx.re[i] = t.cursor();
            x.re[i] = t.value(sid::INIT, self.input_re[i]);
            dx.im[i] = t.cursor();
            x.im[i] = t.value(sid::INIT, self.input_im[i]);
        }

        let mut y = CBuf::zero(n);
        let mut dy = DefBuf::zero(n);
        Self::transpose_prov(t, sid::TRANS1, &x, &dx, &mut y, &mut dy, n1, n2);
        Self::row_ffts_prov(t, sid::FFT1_REV, sid::FFT1_BFY, &mut y, &mut dy, n2, n1);

        let w0 = -2.0 * std::f64::consts::PI / n as f64;
        for j2 in 0..n2 {
            for j1 in 0..n1 {
                let ang = w0 * (j1 * j2) as f64;
                let (wr, wi) = (ang.cos(), ang.sin());
                let idx = j2 * n1 + j1;
                let (r, i) = (y.re[idx], y.im[idx]);
                let (dr, di) = (dy.re[idx], dy.im[idx]);
                // (r + i·j)(wr + wi·j): re' = r·wr − i·wi, im' = r·wi + i·wr
                t.dep(dr, OpKind::Scale(wr));
                t.dep(di, OpKind::Scale(wi));
                dy.re[idx] = t.cursor();
                y.re[idx] = t.value(sid::TWIDDLE, r * wr - i * wi);
                t.dep(dr, OpKind::Scale(wi));
                t.dep(di, OpKind::Scale(wr));
                dy.im[idx] = t.cursor();
                y.im[idx] = t.value(sid::TWIDDLE, r * wi + i * wr);
            }
        }

        Self::transpose_prov(t, sid::TRANS2, &y, &dy, &mut x, &mut dx, n2, n1);
        Self::row_ffts_prov(t, sid::FFT2_REV, sid::FFT2_BFY, &mut x, &mut dx, n1, n2);
        Self::transpose_prov(t, sid::TRANS3, &x, &dx, &mut y, &mut dy, n1, n2);

        // Output: interleaved re/im, each element sunk from its final
        // (transpose3) definition.
        let mut out = Vec::with_capacity(2 * n);
        for i in 0..n {
            t.out_dep(dy.re[i], 1.0);
            out.push(y.re[i]);
            t.out_dep(dy.im[i], 1.0);
            out.push(y.im[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use ftb_trace::norms::Norm;
    use ftb_trace::{FaultSpec, RecordMode};

    /// Naive O(n²) reference DFT.
    fn dft(re: &[f64], im: &[f64]) -> Vec<f64> {
        let n = re.len();
        let mut out = Vec::with_capacity(2 * n);
        for k in 0..n {
            let (mut sr, mut si) = (0.0, 0.0);
            for j in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                sr += re[j] * c - im[j] * s;
                si += re[j] * s + im[j] * c;
            }
            out.push(sr);
            out.push(si);
        }
        out
    }

    #[test]
    fn six_step_matches_naive_dft() {
        let k = FftKernel::new(FftConfig {
            n1: 4,
            n2: 8,
            ..FftConfig::small()
        });
        let g = k.golden();
        let reference = dft(&k.input_re, &k.input_im);
        let err = Norm::LInf.distance(&g.output, &reference);
        assert!(err < 1e-10, "six-step disagrees with naive DFT by {err}");
    }

    #[test]
    fn square_factorisation_matches_too() {
        let k = FftKernel::new(FftConfig {
            n1: 8,
            n2: 8,
            ..FftConfig::small()
        });
        let g = k.golden();
        let reference = dft(&k.input_re, &k.input_im);
        let err = Norm::LInf.distance(&g.output, &reference);
        assert!(err < 1e-10, "square six-step disagrees by {err}");
    }

    #[test]
    fn init_region_leads_and_output_region_ends() {
        let k = FftKernel::new(FftConfig::small());
        let g = k.golden();
        let n = k.n();
        assert_eq!(g.static_id(0), sid::INIT);
        assert_eq!(g.static_id(2 * n - 1), sid::INIT);
        assert_eq!(g.static_id(g.n_sites() - 1), sid::TRANS3);
    }

    #[test]
    fn fft_has_no_data_dependent_branches() {
        let k = FftKernel::new(FftConfig::small());
        assert!(k.golden().branches.is_empty());
    }

    #[test]
    fn flip_in_final_transpose_touches_one_output() {
        let k = FftKernel::new(FftConfig::small());
        let g = k.golden();
        let site = g.n_sites() - 1; // last store of the final transpose
        let r = k.run_injected(FaultSpec { site, bit: 63 }, RecordMode::OutputOnly);
        let diffs = g
            .output
            .iter()
            .zip(&r.output)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(
            diffs, 1,
            "a final-transpose flip must touch exactly one element"
        );
    }

    #[test]
    fn flip_in_init_spreads_widely() {
        let k = FftKernel::new(FftConfig::small());
        let g = k.golden();
        // significant flip of input sample 1 (site 2 = re[1]): unlike
        // sample 0 (whose twiddle is identically 1, touching only real
        // parts), it mixes into the real and imaginary part of every bin
        let r = k.run_injected(FaultSpec { site: 2, bit: 62 }, RecordMode::OutputOnly);
        let diffs = g
            .output
            .iter()
            .zip(&r.output)
            .filter(|(a, b)| (**a - **b).abs() > 1e-12)
            .count();
        assert!(
            diffs > k.n(),
            "an input corruption should spread across the spectrum, touched {diffs}"
        );
    }

    #[test]
    fn provenance_mode_matches_plain_golden() {
        let k = FftKernel::new(FftConfig::small());
        let plain = k.golden();
        let (with_ddg, ddg) = k.golden_with_ddg();
        assert_eq!(plain.values, with_ddg.values);
        assert_eq!(plain.output, with_ddg.output);
        assert!(ddg.is_instrumented());
        assert_eq!(
            ddg.out_sinks.len(),
            2 * k.n(),
            "one sink per real/imaginary output element"
        );
    }

    #[test]
    fn provenance_mode_matches_for_rectangular_factorisation() {
        let k = FftKernel::new(FftConfig {
            n1: 4,
            n2: 8,
            ..FftConfig::small()
        });
        let plain = k.golden();
        let (with_ddg, ddg) = k.golden_with_ddg();
        assert_eq!(plain.values, with_ddg.values);
        assert!(ddg.is_instrumented());
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = FftKernel::new(FftConfig {
            n1: 12,
            n2: 8,
            ..FftConfig::small()
        });
    }
}
