//! Compressed-sparse-row matrices.
//!
//! MiniFE — the origin of the paper's CG benchmark — assembles an
//! explicit sparse matrix from a finite-element discretisation and runs
//! CG over it. This module provides the CSR substrate: assembly from the
//! 2-D Poisson stencil, deterministic random SPD-ish matrices for tests,
//! and an instrumented sparse matrix-vector product.

use ftb_trace::{OpKind, StaticId, Tracer};
use serde::{Deserialize, Serialize};

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    /// Row start offsets into `cols`/`vals`; length `n_rows + 1`.
    row_ptr: Vec<u32>,
    /// Column index of each stored entry.
    cols: Vec<u32>,
    /// Value of each stored entry.
    vals: Vec<f64>,
}

impl Csr {
    /// Build from triplets `(row, col, value)`. Duplicate `(row, col)`
    /// entries are summed (finite-element assembly semantics).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn from_triplets(
        n_rows: usize,
        n_cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut entries: Vec<(usize, usize, f64)> = triplets.into_iter().collect();
        for &(r, c, _) in &entries {
            assert!(r < n_rows && c < n_cols, "triplet ({r},{c}) out of range");
        }
        entries.sort_by_key(|&(r, c, _)| (r, c));

        let mut cols: Vec<u32> = Vec::with_capacity(entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(entries.len());
        let mut row_counts = vec![0u32; n_rows];
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in entries {
            if last == Some((r, c)) {
                *vals.last_mut().expect("duplicate implies a prior entry") += v;
            } else {
                cols.push(c as u32);
                vals.push(v);
                row_counts[r] += 1;
                last = Some((r, c));
            }
        }
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        let mut acc = 0u32;
        row_ptr.push(0);
        for &count in &row_counts {
            acc += count;
            row_ptr.push(acc);
        }
        Csr {
            n_rows,
            n_cols,
            row_ptr,
            cols,
            vals,
        }
    }

    /// The `n × n` matrix of the 5-point Poisson operator on a
    /// `grid × grid` mesh with Dirichlet boundary (the MiniFE-style
    /// system the CG kernel solves): 4 on the diagonal, −1 for each
    /// in-grid neighbour.
    pub fn poisson_2d(grid: usize) -> Self {
        assert!(grid > 0, "empty mesh");
        let n = grid * grid;
        let mut triplets = Vec::with_capacity(5 * n);
        for i in 0..grid {
            for j in 0..grid {
                let idx = i * grid + j;
                triplets.push((idx, idx, 4.0));
                if i > 0 {
                    triplets.push((idx, idx - grid, -1.0));
                }
                if i + 1 < grid {
                    triplets.push((idx, idx + grid, -1.0));
                }
                if j > 0 {
                    triplets.push((idx, idx - 1, -1.0));
                }
                if j + 1 < grid {
                    triplets.push((idx, idx + 1, -1.0));
                }
            }
        }
        Csr::from_triplets(n, n, triplets)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Stored values (assembly order: row-major, columns ascending).
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Iterate the stored entries of one row as `(col, value)`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        self.cols[lo..hi]
            .iter()
            .zip(&self.vals[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Untraced `y = A·x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "x dimension mismatch");
        assert_eq!(y.len(), self.n_rows, "y dimension mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            let mut s = 0.0;
            for (c, v) in self.cols[lo..hi].iter().zip(&self.vals[lo..hi]) {
                s += v * x[*c as usize];
            }
            *yr = s;
        }
    }

    /// Traced `y = A·x` against matrix values held in `vals` (one dynamic
    /// instruction per stored `y[r]`). `vals` is passed separately so a
    /// kernel can route the matrix data itself through the tracer at
    /// load time (making matrix entries injectable) and then apply it.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv_traced(
        &self,
        t: &mut Tracer,
        sid: StaticId,
        vals: &[f64],
        x: &[f64],
        y: &mut [f64],
    ) {
        assert_eq!(vals.len(), self.nnz(), "vals dimension mismatch");
        assert_eq!(x.len(), self.n_cols, "x dimension mismatch");
        assert_eq!(y.len(), self.n_rows, "y dimension mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            let mut s = 0.0;
            for (c, v) in self.cols[lo..hi].iter().zip(&vals[lo..hi]) {
                s += v * x[*c as usize];
            }
            *yr = t.value(sid, s);
        }
    }

    /// Provenance-recording `y = A·x`: like [`Csr::spmv_traced`], but
    /// records each stored product's operand secants before every `y[r]`
    /// store (`|∂y_r/∂a_{rc}| = |x_c|`, `|∂y_r/∂x_c| = |a_{rc}|`, both
    /// exact for one perturbed operand) and returns the def site of each
    /// output row so the caller can sink them. `def_vals`/`def_x` map
    /// each stored entry / vector element to the dynamic instruction
    /// that defined it.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn spmv_with_provenance(
        &self,
        t: &mut Tracer,
        sid: StaticId,
        vals: &[f64],
        def_vals: &[usize],
        x: &[f64],
        def_x: &[usize],
        y: &mut [f64],
    ) -> Vec<usize> {
        assert_eq!(vals.len(), self.nnz(), "vals dimension mismatch");
        assert_eq!(def_vals.len(), self.nnz(), "def_vals dimension mismatch");
        assert_eq!(x.len(), self.n_cols, "x dimension mismatch");
        assert_eq!(def_x.len(), self.n_cols, "def_x dimension mismatch");
        assert_eq!(y.len(), self.n_rows, "y dimension mismatch");
        let mut defs = Vec::with_capacity(self.n_rows);
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            let mut s = 0.0;
            for (p, (c, v)) in (lo..hi).zip(self.cols[lo..hi].iter().zip(&vals[lo..hi])) {
                let c = *c as usize;
                t.dep(def_vals[p], OpKind::Scale(x[c]));
                t.dep(def_x[c], OpKind::Scale(*v));
                s += v * x[c];
            }
            defs.push(t.cursor());
            *yr = t.value(sid, s);
        }
        defs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_trace::Precision;

    #[test]
    fn triplets_assemble_sorted_rows() {
        let a = Csr::from_triplets(3, 3, vec![(2, 0, 5.0), (0, 1, 2.0), (0, 0, 1.0)]);
        assert_eq!(a.nnz(), 3);
        let row0: Vec<_> = a.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (1, 2.0)]);
        let row1: Vec<_> = a.row(1).collect();
        assert!(row1.is_empty());
        let row2: Vec<_> = a.row(2).collect();
        assert_eq!(row2, vec![(0, 5.0)]);
    }

    #[test]
    fn duplicate_triplets_sum() {
        let a = Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(a.nnz(), 2);
        let row0: Vec<_> = a.row(0).collect();
        assert_eq!(row0, vec![(0, 3.5)]);
    }

    #[test]
    fn poisson_matrix_shape() {
        let g = 4;
        let a = Csr::poisson_2d(g);
        assert_eq!(a.n_rows(), 16);
        // nnz = 5n - 4*grid (missing neighbours at boundaries)
        assert_eq!(a.nnz(), 5 * 16 - 4 * g);
        // row sums: interior rows sum to 0; boundary rows positive
        for r in 0..a.n_rows() {
            let sum: f64 = a.row(r).map(|(_, v)| v).sum();
            assert!(sum >= 0.0);
        }
        // symmetric
        for r in 0..a.n_rows() {
            for (c, v) in a.row(r) {
                let back: f64 = a
                    .row(c)
                    .find(|&(cc, _)| cc == r)
                    .map(|(_, v)| v)
                    .expect("symmetric entry missing");
                assert_eq!(v, back);
            }
        }
    }

    #[test]
    fn spmv_matches_dense_computation() {
        let a = Csr::poisson_2d(3);
        let x: Vec<f64> = (0..9).map(|i| (i as f64) * 0.5 - 2.0).collect();
        let mut y = vec![0.0; 9];
        a.spmv(&x, &mut y);
        // dense check
        for (r, &yr) in y.iter().enumerate() {
            let expect: f64 = a.row(r).map(|(c, v)| v * x[c]).sum();
            assert!((yr - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn traced_spmv_matches_untraced() {
        let a = Csr::poisson_2d(3);
        let x: Vec<f64> = (0..9).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; 9];
        a.spmv(&x, &mut y1);
        let mut y2 = vec![0.0; 9];
        let mut t = Tracer::untraced(Precision::F64);
        a.spmv_traced(&mut t, StaticId(0), a.values(), &x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(t.cursor(), 9);
    }

    #[test]
    #[should_panic]
    fn out_of_range_triplet_panics() {
        let _ = Csr::from_triplets(2, 2, vec![(5, 0, 1.0)]);
    }
}
