//! 2-D five-point Jacobi stencil.
//!
//! The paper's §5 uses this kernel to argue monotonicity of error
//! propagation: each sweep computes
//! `s(x_{i,j}) = 0.2 · (x_{i,j} + x_{i+1,j} + x_{i,j+1} + x_{i-1,j} + x_{i,j-1})`,
//! so an injected error `ε` contributes linearly (`f(ε) = C·ε`) to the
//! final output — the error function is monotonic in `ε`. The
//! `monotonicity` bench sweeps injected errors through this kernel to
//! verify that analysis experimentally.

use crate::inputs::uniform_vec;
use crate::Kernel;
use ftb_trace::{Fnv1a, OpKind, Precision, StaticRegistry, Tracer};
use serde::{Deserialize, Serialize};

ftb_trace::static_instrs! {
    pub mod sid {
        INIT  => ("stencil.init", Init),
        // phase head: each sweep re-enters the interior loop from the
        // previous sweep's edge copies, opening one section per sweep
        SWEEP => ("stencil.sweep", Compute, phase),
        EDGE  => ("stencil.edge.copy", DataMovement),
    }
}

/// Configuration of the Jacobi stencil kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StencilConfig {
    /// Grid dimension (`grid × grid` cells).
    pub grid: usize,
    /// Number of Jacobi sweeps.
    pub sweeps: usize,
    /// Element precision.
    pub precision: Precision,
    /// Input seed.
    pub seed: u64,
}

impl StencilConfig {
    /// Laptop-scale default: 12×12 grid, 8 sweeps.
    pub fn small() -> Self {
        StencilConfig {
            grid: 12,
            sweeps: 8,
            precision: Precision::F64,
            seed: 42,
        }
    }
}

/// The instrumented Jacobi stencil kernel.
#[derive(Debug, Clone)]
pub struct StencilKernel {
    cfg: StencilConfig,
    initial: Vec<f64>,
    sites_hint: usize,
}

impl StencilKernel {
    /// Build the kernel with a random initial grid.
    ///
    /// # Panics
    /// Panics if the grid is smaller than 3×3 (no interior to sweep).
    pub fn new(cfg: StencilConfig) -> Self {
        assert!(cfg.grid >= 3, "stencil grid needs an interior");
        let initial = uniform_vec(cfg.seed, cfg.grid * cfg.grid, 0.0, 1.0);
        let mut k = StencilKernel {
            cfg,
            initial,
            sites_hint: 0,
        };
        let mut t = Tracer::untraced(k.cfg.precision);
        let _ = k.run(&mut t);
        k.sites_hint = t.cursor();
        k
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &StencilConfig {
        &self.cfg
    }
}

impl Kernel for StencilKernel {
    fn name(&self) -> &'static str {
        "stencil"
    }

    fn precision(&self) -> Precision {
        self.cfg.precision
    }

    fn registry(&self) -> StaticRegistry {
        sid::registry()
    }

    fn estimated_sites(&self) -> usize {
        self.sites_hint
    }

    fn code_version(&self, _lo: usize, _hi: usize) -> u64 {
        // structural stamp: grid and sweep count shape the instruction
        // stream; the seed only changes input values
        let mut h = Fnv1a::new();
        h.write(b"stencil/five-point/v1");
        h.write_u64(self.cfg.grid as u64);
        h.write_u64(self.cfg.sweeps as u64);
        h.finish()
    }

    fn run(&self, t: &mut Tracer) -> Vec<f64> {
        let g = self.cfg.grid;

        // Hot (injection) path: no def-map bookkeeping.
        if !t.ddg_enabled() {
            // Init region: load the grid.
            let mut cur = vec![0.0; g * g];
            for (dst, &src) in cur.iter_mut().zip(&self.initial) {
                *dst = t.value(sid::INIT, src);
            }

            let mut next = vec![0.0; g * g];
            for _ in 0..self.cfg.sweeps {
                // interior: the five-point average of the paper's §5
                for i in 1..g - 1 {
                    for j in 1..g - 1 {
                        let idx = i * g + j;
                        let s = 0.2
                            * (cur[idx]
                                + cur[idx - g]
                                + cur[idx + g]
                                + cur[idx - 1]
                                + cur[idx + 1]);
                        next[idx] = t.value(sid::SWEEP, s);
                    }
                }
                // fixed boundary: copied forward (traced data movement)
                for j in 0..g {
                    next[j] = t.value(sid::EDGE, cur[j]);
                    next[(g - 1) * g + j] = t.value(sid::EDGE, cur[(g - 1) * g + j]);
                }
                for i in 1..g - 1 {
                    next[i * g] = t.value(sid::EDGE, cur[i * g]);
                    next[i * g + g - 1] = t.value(sid::EDGE, cur[i * g + g - 1]);
                }
                std::mem::swap(&mut cur, &mut next);
                if t.trapped() {
                    break;
                }
            }

            return cur;
        }

        // Provenance mode: def maps travel with the value buffers (and
        // swap with them). Each interior store is a five-operand average
        // — |∂s/∂x| = 0.2 for every neighbour — and each edge copy is
        // Linear in its source.
        let mut def_cur = vec![0usize; g * g];
        let mut def_next = vec![0usize; g * g];
        let mut cur = vec![0.0; g * g];
        for (i, (dst, &src)) in cur.iter_mut().zip(&self.initial).enumerate() {
            def_cur[i] = t.cursor();
            *dst = t.value(sid::INIT, src);
        }

        let mut next = vec![0.0; g * g];
        for _ in 0..self.cfg.sweeps {
            for i in 1..g - 1 {
                for j in 1..g - 1 {
                    let idx = i * g + j;
                    for nb in [idx, idx - g, idx + g, idx - 1, idx + 1] {
                        t.dep(def_cur[nb], OpKind::Scale(0.2));
                    }
                    let s = 0.2
                        * (cur[idx] + cur[idx - g] + cur[idx + g] + cur[idx - 1] + cur[idx + 1]);
                    def_next[idx] = t.cursor();
                    next[idx] = t.value(sid::SWEEP, s);
                }
            }
            for j in 0..g {
                t.dep(def_cur[j], OpKind::Linear);
                def_next[j] = t.cursor();
                next[j] = t.value(sid::EDGE, cur[j]);
                let bot = (g - 1) * g + j;
                t.dep(def_cur[bot], OpKind::Linear);
                def_next[bot] = t.cursor();
                next[bot] = t.value(sid::EDGE, cur[bot]);
            }
            for i in 1..g - 1 {
                let left = i * g;
                t.dep(def_cur[left], OpKind::Linear);
                def_next[left] = t.cursor();
                next[left] = t.value(sid::EDGE, cur[left]);
                let right = i * g + g - 1;
                t.dep(def_cur[right], OpKind::Linear);
                def_next[right] = t.cursor();
                next[right] = t.value(sid::EDGE, cur[right]);
            }
            std::mem::swap(&mut cur, &mut next);
            std::mem::swap(&mut def_cur, &mut def_next);
            if t.trapped() {
                break;
            }
        }

        // Output: the final grid, one sink per element.
        for &d in &def_cur {
            t.out_dep(d, 1.0);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use ftb_trace::norms::Norm;
    use ftb_trace::{FaultSpec, RecordMode};

    #[test]
    fn sweep_smooths_toward_interior_average() {
        let k = StencilKernel::new(StencilConfig {
            sweeps: 200,
            ..StencilConfig::small()
        });
        let g = k.golden();
        let n = k.config().grid;
        // after many sweeps the interior varies smoothly: neighbour
        // differences shrink well below the initial random contrast
        let mut max_jump = 0.0f64;
        for i in 1..n - 1 {
            for j in 1..n - 2 {
                let d = (g.output[i * n + j] - g.output[i * n + j + 1]).abs();
                max_jump = max_jump.max(d);
            }
        }
        assert!(
            max_jump < 0.2,
            "interior still rough after 200 sweeps: {max_jump}"
        );
    }

    #[test]
    fn boundary_is_preserved() {
        let k = StencilKernel::new(StencilConfig::small());
        let g = k.golden();
        let n = k.config().grid;
        for j in 0..n {
            assert_eq!(g.output[j], k.initial[j]);
            assert_eq!(g.output[(n - 1) * n + j], k.initial[(n - 1) * n + j]);
        }
    }

    #[test]
    fn error_propagation_is_linear_in_epsilon() {
        // §5's claim: f(ε) = C·ε for the stencil. Compare the output error
        // of two flips at the same site whose injected errors differ.
        let k = StencilKernel::new(StencilConfig::small());
        let g = k.golden();
        let n2 = k.config().grid * k.config().grid;
        let site = n2 + (k.config().grid + 1); // early interior sweep store
        let e_small = {
            let r = k.run_injected(FaultSpec { site, bit: 50 }, RecordMode::OutputOnly);
            Norm::L2.distance(&g.output, &r.output)
        };
        let e_big = {
            let r = k.run_injected(FaultSpec { site, bit: 52 }, RecordMode::OutputOnly);
            Norm::L2.distance(&g.output, &r.output)
        };
        let inj_small = ftb_trace::injected_error(Precision::F64, g.values[site], 50);
        let inj_big = ftb_trace::injected_error(Precision::F64, g.values[site], 52);
        let (c1, c2) = (e_small / inj_small, e_big / inj_big);
        assert!(
            (c1 - c2).abs() / c1 < 1e-6,
            "propagation constant not linear: {c1} vs {c2}"
        );
    }

    #[test]
    fn sweeps_zero_is_identity() {
        let k = StencilKernel::new(StencilConfig {
            sweeps: 0,
            ..StencilConfig::small()
        });
        let g = k.golden();
        assert_eq!(g.output, k.initial);
    }

    #[test]
    fn provenance_mode_matches_plain_golden() {
        let k = StencilKernel::new(StencilConfig::small());
        let plain = k.golden();
        let (with_ddg, ddg) = k.golden_with_ddg();
        assert_eq!(plain.values, with_ddg.values);
        assert_eq!(plain.output, with_ddg.output);
        assert!(ddg.is_instrumented());
        assert_eq!(
            ddg.out_sinks.len(),
            k.config().grid * k.config().grid,
            "one output sink per grid cell"
        );
    }

    #[test]
    fn zero_sweep_provenance_sinks_the_init_defs() {
        let k = StencilKernel::new(StencilConfig {
            sweeps: 0,
            ..StencilConfig::small()
        });
        let (g, ddg) = k.golden_with_ddg();
        assert!(ddg.is_instrumented());
        assert_eq!(g.output, k.initial);
    }

    #[test]
    #[should_panic]
    fn tiny_grid_rejected() {
        let _ = StencilKernel::new(StencilConfig {
            grid: 2,
            ..StencilConfig::small()
        });
    }
}
