//! Deterministic input generation.
//!
//! Every kernel derives its input data from a `u64` seed through these
//! helpers, making each fault-injection experiment exactly reproducible
//! (campaigns identify an experiment as `(config, seed, site, bit)`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Constant mixed into input seeds so kernel-input streams never collide
/// with sampling streams derived from the same user seed.
const INPUT_STREAM: u64 = 0x9e37_79b9_7f4a_7c15;

/// Deterministic RNG for input generation.
pub fn input_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ INPUT_STREAM)
}

/// Uniform values in `[lo, hi)`.
pub fn uniform_vec(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut rng = input_rng(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A dense row-major `n × n` strictly diagonally dominant matrix —
/// the SPLASH-2 LU benchmark factors such matrices so that pivoting is
/// unnecessary and the factorization is numerically benign.
pub fn diag_dominant_matrix(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = input_rng(seed);
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v: f64 = rng.gen_range(-1.0..1.0);
                a[i * n + j] = v;
                row_sum += v.abs();
            }
        }
        // strictly dominant diagonal with a deterministic positive slack
        a[i * n + i] = row_sum + 1.0 + rng.gen_range(0.0..1.0);
    }
    a
}

/// A dense row-major symmetric positive-definite `n × n` matrix
/// (`A = Bᵀ B + n·I`), for dense CG and solver tests.
pub fn spd_matrix(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = input_rng(seed);
    let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += b[k * n + i] * b[k * n + j];
            }
            a[i * n + j] = s;
        }
        a[i * n + i] += n as f64;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_vec_deterministic_and_in_range() {
        let a = uniform_vec(7, 100, -2.0, 3.0);
        let b = uniform_vec(7, 100, -2.0, 3.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (-2.0..3.0).contains(&x)));
        let c = uniform_vec(8, 100, -2.0, 3.0);
        assert_ne!(a, c);
    }

    #[test]
    fn diag_dominant_really_is() {
        let n = 12;
        let a = diag_dominant_matrix(3, n);
        for i in 0..n {
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| a[i * n + j].abs()).sum();
            assert!(a[i * n + i] > off, "row {i} not dominant");
        }
    }

    #[test]
    fn spd_matrix_is_symmetric_with_positive_diagonal() {
        let n = 8;
        let a = spd_matrix(5, n);
        for i in 0..n {
            assert!(a[i * n + i] > 0.0);
            for j in 0..n {
                assert!((a[i * n + j] - a[j * n + i]).abs() < 1e-12);
            }
        }
    }
}
