//! Blocked dense LU factorization, SPLASH-2 style.
//!
//! The SPLASH-2 `lu` benchmark factors a dense, diagonally dominant
//! matrix without pivoting, processing it in square blocks: factor the
//! diagonal block, update the row and column panels, then update the
//! trailing submatrix. The paper factors a 32×32 matrix in 16×16 blocks
//! and observes (its Figure 4) that each block step opens a region into
//! which earlier errors do not propagate — our default configuration uses
//! four block steps so that structure is visible at laptop scale.
//!
//! Every store to the matrix is a dynamic instruction; the output is the
//! packed `L\U` factorization itself, so most significant perturbations
//! are *not* masked — this is why LU has by far the highest SDC ratio of
//! the paper's three benchmarks (35.9% in its Table 1).

use crate::inputs::diag_dominant_matrix;
use crate::Kernel;
use ftb_trace::{Fnv1a, OpKind, Precision, StaticRegistry, Tracer};
use serde::{Deserialize, Serialize};

ftb_trace::static_instrs! {
    pub mod sid {
        INIT_A  => ("lu.init.a", Init),
        // phase head: every re-entry into the diagonal scale loop (from
        // the previous k-step's updates or the previous block's trailing
        // update) opens a new section — `coalesce` merges these k-step
        // sections up to block granularity for compositional analysis
        DIAG_L  => ("lu.diag.scale", Compute, phase),
        DIAG_U  => ("lu.diag.update", Compute),
        COL_L   => ("lu.colpanel.scale", Compute),
        COL_U   => ("lu.colpanel.update", Compute),
        ROW_U   => ("lu.rowpanel.update", Compute),
        TRAIL   => ("lu.trailing.update", Compute),
    }
}

/// Configuration of the blocked LU kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LuConfig {
    /// Matrix dimension (`n × n`).
    pub n: usize,
    /// Square block size; must divide `n`.
    pub block: usize,
    /// Element precision.
    pub precision: Precision,
    /// Input seed.
    pub seed: u64,
}

impl LuConfig {
    /// Laptop-scale default: 16×16 matrix in 4×4 blocks (four block steps,
    /// matching the four-region structure of the paper's Figure 4).
    pub fn small() -> Self {
        LuConfig {
            n: 16,
            block: 4,
            precision: Precision::F64,
            seed: 42,
        }
    }

    /// The paper's SPLASH-2 configuration: 32×32 matrix, 16×16 blocks.
    pub fn paper() -> Self {
        LuConfig {
            n: 32,
            block: 16,
            precision: Precision::F64,
            seed: 42,
        }
    }
}

/// The instrumented blocked LU kernel.
#[derive(Debug, Clone)]
pub struct LuKernel {
    cfg: LuConfig,
    a0: Vec<f64>,
    sites_hint: usize,
}

impl LuKernel {
    /// Build the kernel; generates the diagonally dominant input matrix.
    ///
    /// # Panics
    /// Panics if `block` does not divide `n` or either is zero.
    pub fn new(cfg: LuConfig) -> Self {
        assert!(cfg.n > 0 && cfg.block > 0, "empty LU configuration");
        assert_eq!(cfg.n % cfg.block, 0, "block must divide n");
        let a0 = diag_dominant_matrix(cfg.seed, cfg.n);
        let mut k = LuKernel {
            cfg,
            a0,
            sites_hint: 0,
        };
        let mut t = Tracer::untraced(k.cfg.precision);
        let _ = k.run(&mut t);
        k.sites_hint = t.cursor();
        k
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &LuConfig {
        &self.cfg
    }
}

impl Kernel for LuKernel {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn precision(&self) -> Precision {
        self.cfg.precision
    }

    fn registry(&self) -> StaticRegistry {
        sid::registry()
    }

    fn estimated_sites(&self) -> usize {
        self.sites_hint
    }

    fn code_version(&self, _lo: usize, _hi: usize) -> u64 {
        // structural stamp: seeds change values, not code; n and block
        // change which instruction stream a section covers
        let mut h = Fnv1a::new();
        h.write(b"lu/blocked-right-looking/v1");
        h.write_u64(self.cfg.n as u64);
        h.write_u64(self.cfg.block as u64);
        h.finish()
    }

    fn run(&self, t: &mut Tracer) -> Vec<f64> {
        let n = self.cfg.n;
        let nb = self.cfg.block;

        // The hot (injection) path carries no def-map bookkeeping; only
        // provenance recording takes the annotated body below.
        if !t.ddg_enabled() {
            // Init region: load the input matrix (one store per element).
            let mut a = vec![0.0; n * n];
            for (dst, &src) in a.iter_mut().zip(&self.a0) {
                *dst = t.value(sid::INIT_A, src);
            }

            // Blocked right-looking factorization.
            let mut k0 = 0;
            while k0 < n {
                let kend = k0 + nb;

                // 1. Factor the diagonal block A[k0..kend, k0..kend].
                for k in k0..kend {
                    let pivot = a[k * n + k];
                    for i in (k + 1)..kend {
                        a[i * n + k] = t.value(sid::DIAG_L, a[i * n + k] / pivot);
                    }
                    for i in (k + 1)..kend {
                        let lik = a[i * n + k];
                        for j in (k + 1)..kend {
                            a[i * n + j] = t.value(sid::DIAG_U, a[i * n + j] - lik * a[k * n + j]);
                        }
                    }
                }

                // 2. Column panel: rows below the diagonal block.
                for k in k0..kend {
                    let pivot = a[k * n + k];
                    for i in kend..n {
                        a[i * n + k] = t.value(sid::COL_L, a[i * n + k] / pivot);
                    }
                    for i in kend..n {
                        let lik = a[i * n + k];
                        for j in (k + 1)..kend {
                            a[i * n + j] = t.value(sid::COL_U, a[i * n + j] - lik * a[k * n + j]);
                        }
                    }
                }

                // 3. Row panel: columns right of the diagonal block
                //    (forward-substitute L of the diagonal block through them).
                for k in k0..kend {
                    for i in (k + 1)..kend {
                        let lik = a[i * n + k];
                        for j in kend..n {
                            a[i * n + j] = t.value(sid::ROW_U, a[i * n + j] - lik * a[k * n + j]);
                        }
                    }
                }

                // 4. Trailing submatrix update: one store per element, inner
                //    accumulation in registers (a GEMM tile).
                for i in kend..n {
                    for j in kend..n {
                        let mut s = a[i * n + j];
                        for k in k0..kend {
                            s -= a[i * n + k] * a[k * n + j];
                        }
                        a[i * n + j] = t.value(sid::TRAIL, s);
                    }
                }

                k0 = kend;
                if t.trapped() {
                    break;
                }
            }

            // Output: the packed L\U factors.
            return a;
        }

        // Provenance mode: def[idx] is the dynamic instruction that last
        // defined a[idx]; every store records its operands' secant
        // amplifications before the defining `t.value`. The divisions use
        // DivNum/DivDen (the denominator path carries the |den|/2
        // perturbation cap), everything else is Linear/Scale.
        let mut def = vec![0usize; n * n];
        let mut a = vec![0.0; n * n];
        for (i, (dst, &src)) in a.iter_mut().zip(&self.a0).enumerate() {
            def[i] = t.cursor();
            *dst = t.value(sid::INIT_A, src);
        }

        let mut k0 = 0;
        while k0 < n {
            let kend = k0 + nb;

            for k in k0..kend {
                let pivot = a[k * n + k];
                for i in (k + 1)..kend {
                    let num = a[i * n + k];
                    t.dep(def[i * n + k], OpKind::DivNum(pivot));
                    t.dep(def[k * n + k], OpKind::DivDen { num, den: pivot });
                    def[i * n + k] = t.cursor();
                    a[i * n + k] = t.value(sid::DIAG_L, num / pivot);
                }
                for i in (k + 1)..kend {
                    let lik = a[i * n + k];
                    for j in (k + 1)..kend {
                        t.dep(def[i * n + j], OpKind::Linear);
                        t.dep(def[i * n + k], OpKind::Scale(a[k * n + j]));
                        t.dep(def[k * n + j], OpKind::Scale(lik));
                        def[i * n + j] = t.cursor();
                        a[i * n + j] = t.value(sid::DIAG_U, a[i * n + j] - lik * a[k * n + j]);
                    }
                }
            }

            for k in k0..kend {
                let pivot = a[k * n + k];
                for i in kend..n {
                    let num = a[i * n + k];
                    t.dep(def[i * n + k], OpKind::DivNum(pivot));
                    t.dep(def[k * n + k], OpKind::DivDen { num, den: pivot });
                    def[i * n + k] = t.cursor();
                    a[i * n + k] = t.value(sid::COL_L, num / pivot);
                }
                for i in kend..n {
                    let lik = a[i * n + k];
                    for j in (k + 1)..kend {
                        t.dep(def[i * n + j], OpKind::Linear);
                        t.dep(def[i * n + k], OpKind::Scale(a[k * n + j]));
                        t.dep(def[k * n + j], OpKind::Scale(lik));
                        def[i * n + j] = t.cursor();
                        a[i * n + j] = t.value(sid::COL_U, a[i * n + j] - lik * a[k * n + j]);
                    }
                }
            }

            for k in k0..kend {
                for i in (k + 1)..kend {
                    let lik = a[i * n + k];
                    for j in kend..n {
                        t.dep(def[i * n + j], OpKind::Linear);
                        t.dep(def[i * n + k], OpKind::Scale(a[k * n + j]));
                        t.dep(def[k * n + j], OpKind::Scale(lik));
                        def[i * n + j] = t.cursor();
                        a[i * n + j] = t.value(sid::ROW_U, a[i * n + j] - lik * a[k * n + j]);
                    }
                }
            }

            for i in kend..n {
                for j in kend..n {
                    // s = a_ij - Σ_k a_ik a_kj: Linear in the accumulator,
                    // Scale in each product operand
                    t.dep(def[i * n + j], OpKind::Linear);
                    let mut s = a[i * n + j];
                    for k in k0..kend {
                        t.dep(def[i * n + k], OpKind::Scale(a[k * n + j]));
                        t.dep(def[k * n + j], OpKind::Scale(a[i * n + k]));
                        s -= a[i * n + k] * a[k * n + j];
                    }
                    def[i * n + j] = t.cursor();
                    a[i * n + j] = t.value(sid::TRAIL, s);
                }
            }

            k0 = kend;
            if t.trapped() {
                break;
            }
        }

        // The output is the packed factorization itself: every element's
        // final definition reaches the output with amplification 1.
        for &d in &def {
            t.out_dep(d, 1.0);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use ftb_trace::norms::Norm;
    use ftb_trace::{FaultSpec, RecordMode};

    /// Multiply the packed factors back together: (L with unit diagonal) · U.
    fn reassemble(lu: &[f64], n: usize) -> Vec<f64> {
        let mut m = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * n + k] };
                    s += l * lu[k * n + j];
                }
                m[i * n + j] = s;
            }
        }
        m
    }

    #[test]
    fn factorization_reassembles_to_input() {
        let k = LuKernel::new(LuConfig::small());
        let g = k.golden();
        let n = k.config().n;
        let back = reassemble(&g.output, n);
        let err = Norm::LInf.distance(&back, &k.a0);
        assert!(err < 1e-9, "L·U != A, L∞ error {err}");
    }

    #[test]
    fn blocked_matches_unblocked() {
        let small = LuConfig {
            n: 12,
            block: 12,
            ..LuConfig::small()
        };
        let blocked = LuConfig {
            n: 12,
            block: 4,
            ..LuConfig::small()
        };
        let a = LuKernel::new(small).golden().output;
        let b = LuKernel::new(blocked).golden().output;
        let err = Norm::LInf.distance(&a, &b);
        assert!(
            err < 1e-10,
            "blocked and unblocked factorizations differ by {err}"
        );
    }

    #[test]
    fn init_region_leads_the_trace() {
        let k = LuKernel::new(LuConfig::small());
        let g = k.golden();
        let n2 = k.config().n * k.config().n;
        for i in 0..n2 {
            assert_eq!(g.static_id(i), sid::INIT_A);
        }
        assert_ne!(g.static_id(n2), sid::INIT_A);
    }

    #[test]
    fn sign_flip_in_factor_region_corrupts_output() {
        let k = LuKernel::new(LuConfig::small());
        let g = k.golden();
        let n2 = k.config().n * k.config().n;
        let r = k.run_injected(
            FaultSpec {
                site: n2 + 1,
                bit: 63,
            },
            RecordMode::OutputOnly,
        );
        let d = Norm::LInf.distance(&g.output, &r.output);
        assert!(d > 1e-3, "sign flip in factorization should show, got {d}");
    }

    #[test]
    fn low_bit_flip_is_small_in_output() {
        let k = LuKernel::new(LuConfig::small());
        let g = k.golden();
        let r = k.run_injected(FaultSpec { site: 10, bit: 0 }, RecordMode::OutputOnly);
        let d = Norm::LInf.distance(&g.output, &r.output);
        assert!(d < 1e-8, "ulp flip should stay tiny, got {d}");
    }

    #[test]
    fn no_branches_in_lu() {
        // LU control flow is data-independent: propagation windows never
        // truncate.
        let k = LuKernel::new(LuConfig::small());
        let g = k.golden();
        assert!(g.branches.is_empty());
    }

    #[test]
    fn provenance_mode_matches_plain_golden() {
        let k = LuKernel::new(LuConfig::small());
        let plain = k.golden();
        let (with_ddg, ddg) = k.golden_with_ddg();
        assert_eq!(plain.values, with_ddg.values);
        assert_eq!(plain.output, with_ddg.output);
        assert!(ddg.is_instrumented(), "LU must record output sinks");
    }

    #[test]
    fn every_output_element_has_an_out_sink() {
        let k = LuKernel::new(LuConfig::small());
        let (_, ddg) = k.golden_with_ddg();
        let n2 = k.config().n * k.config().n;
        assert_eq!(ddg.out_sinks.len(), n2);
    }

    #[test]
    fn code_version_tracks_structure_not_seed() {
        let base = LuKernel::new(LuConfig::small());
        let reseeded = LuKernel::new(LuConfig {
            seed: 7,
            ..LuConfig::small()
        });
        let reblocked = LuKernel::new(LuConfig {
            block: 8,
            ..LuConfig::small()
        });
        assert_eq!(base.code_version(0, 10), reseeded.code_version(0, 10));
        assert_ne!(base.code_version(0, 10), reblocked.code_version(0, 10));
    }

    #[test]
    #[should_panic]
    fn block_must_divide_n() {
        let _ = LuKernel::new(LuConfig {
            n: 10,
            block: 4,
            ..LuConfig::small()
        });
    }
}
