//! Jacobi iterative solver on the 2-D Poisson system.
//!
//! A contrasting workload for the boundary method: where CG's
//! short-recurrence coupling makes error propagation noisy and
//! non-monotonic, Jacobi is a *contraction* — each sweep multiplies the
//! error by the iteration matrix whose spectral radius is < 1, so an
//! injected perturbation **decays geometrically**. Propagation data from
//! masked Jacobi runs therefore certifies large thresholds for early
//! instructions (their errors die out), the mirror image of the LU/FFT
//! pattern where early errors persist.
//!
//! The solve is `x_{k+1} = D⁻¹ (b − (A − D) x_k)` for the 5-point
//! Poisson operator, with the same manufactured right-hand side as the
//! CG kernel and a fixed sweep count (data-independent control flow).

use crate::csr::Csr;
use crate::inputs::uniform_vec;
use crate::{BoundaryMonitor, CaptureHook, Kernel, KernelState};
use ftb_trace::{OpKind, Precision, StaticRegistry, Tracer};
use serde::{Deserialize, Serialize};

ftb_trace::static_instrs! {
    pub mod sid {
        INIT_X    => ("jacobi.init.x=0", Init),
        INIT_B    => ("jacobi.init.b", Init),
        SWEEP_ACC => ("jacobi.sweep.acc", Compute),
        SWEEP_X   => ("jacobi.sweep.x", Compute),
        RESID     => ("jacobi.residual", Reduction),
    }
}

/// Configuration of the Jacobi solver kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JacobiConfig {
    /// Mesh is `grid × grid`.
    pub grid: usize,
    /// Number of sweeps (fixed; Jacobi converges slowly and the paper's
    /// model prefers deterministic control flow where the algorithm has
    /// it).
    pub sweeps: usize,
    /// Element precision.
    pub precision: Precision,
    /// Input seed.
    pub seed: u64,
    /// Instruction-granularity instrumentation: trace every off-diagonal
    /// accumulation of the sweep as its own dynamic instruction, the way
    /// the paper's LLVM-level model sees the program. The default
    /// (`false`) traces at row-store granularity, which keeps traces
    /// small; fine-grained mode is what extraction-path benchmarks use,
    /// since extraction cost per experiment scales with instrumentation
    /// density. Coarse-grained goldens are unaffected by the flag.
    #[serde(default)]
    pub fine_grained: bool,
    /// Compute and trace the residual norm every this many sweeps
    /// (`0` and `1` both mean every sweep — `0` only arises when an
    /// older serialized config omits the field, and it preserves that
    /// config's behaviour). Real solvers amortise convergence checks
    /// over several iterations; the residual's sparse matrix–vector
    /// product is the dominant *untraced* cost of a sweep, so benchmark
    /// configs raise this to keep the workload dominated by traced
    /// stores.
    #[serde(default)]
    pub residual_every: usize,
    /// Optional single-sweep code edit: replace one sweep's update with
    /// the weighted-Jacobi relaxation `x ← (1−ω)·x + ω·x_jacobi`. This is
    /// the compositional analyzer's incremental-re-analysis demo: it
    /// changes the *arithmetic* of exactly one phase (reflected in
    /// [`Kernel::code_version`](crate::Kernel::code_version)) while
    /// leaving the dynamic-instruction stream's shape untouched.
    #[serde(default)]
    pub tweak: Option<SweepTweak>,
}

/// A localized code edit to one Jacobi sweep (see [`JacobiConfig::tweak`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepTweak {
    /// Zero-based index of the sweep whose body is modified.
    pub sweep: usize,
    /// Relaxation weight ω of the modified sweep (`1.0` reproduces the
    /// plain Jacobi update bit-for-bit in exact arithmetic, but still
    /// counts as an edit — the stamp hashes the parameters, not the
    /// values they happen to produce).
    pub omega: f64,
}

impl JacobiConfig {
    /// Laptop-scale default: 6×6 mesh, 30 sweeps.
    pub fn small() -> Self {
        JacobiConfig {
            grid: 6,
            sweeps: 30,
            precision: Precision::F64,
            seed: 42,
            fine_grained: false,
            residual_every: 1,
            tweak: None,
        }
    }
}

/// Row-structure bounds backing [`Kernel::masked_exit_bound`], computed
/// once from the Jacobi splitting.
#[derive(Debug, Clone, Copy)]
struct CertBounds {
    /// `max_r Σ_c |off_rc| / |d_r|` — the sweep's L∞ amplification of a
    /// state deviation. ≤ 1 (diagonal dominance) is what makes the
    /// contraction certificate sound.
    row_gain: f64,
    /// `max_r 1 / |d_r|` — amplification of a persistent `b` deviation
    /// per sweep.
    inv_diag: f64,
    /// `max_r Σ_c |off_rc|` — magnitude bound factor for the off-diagonal
    /// accumulation.
    row_abs: f64,
    /// `max_r (row degree) / |d_r|` — per-sweep count of fine-grained
    /// accumulation quantisations, already divided through by the
    /// diagonal they end up scaled by.
    acc_factor: f64,
}

/// The instrumented Jacobi solver.
#[derive(Debug, Clone)]
pub struct JacobiKernel {
    cfg: JacobiConfig,
    matrix: Csr,
    x_true: Vec<f64>,
    b: Vec<f64>,
    /// The Jacobi splitting `A = D + (A − D)`, precomputed once: `diag[r]`
    /// and the off-diagonal entries of row `r` in their CSR order (so the
    /// sweep's `off` accumulation is bit-identical to iterating the full
    /// row and skipping the diagonal, without a per-entry diagonal test).
    diag: Vec<f64>,
    off_ptr: Vec<u32>,
    off_cols: Vec<u32>,
    off_vals: Vec<f64>,
    cert: CertBounds,
}

impl JacobiKernel {
    /// Build the kernel (assembles the Poisson system, manufactures `b`,
    /// and precomputes the Jacobi splitting).
    pub fn new(cfg: JacobiConfig) -> Self {
        let n = cfg.grid * cfg.grid;
        let matrix = Csr::poisson_2d(cfg.grid);
        let x_true = uniform_vec(cfg.seed, n, -1.0, 1.0);
        let mut b = vec![0.0; n];
        matrix.spmv(&x_true, &mut b);
        let mut diag = vec![0.0; n];
        let mut off_ptr = Vec::with_capacity(n + 1);
        let mut off_cols = Vec::new();
        let mut off_vals = Vec::new();
        off_ptr.push(0u32);
        for (r, d) in diag.iter_mut().enumerate() {
            for (c, v) in matrix.row(r) {
                if c == r {
                    *d = v;
                } else {
                    off_cols.push(c as u32);
                    off_vals.push(v);
                }
            }
            off_ptr.push(off_cols.len() as u32);
        }
        let mut cert = CertBounds {
            row_gain: 0.0,
            inv_diag: 0.0,
            row_abs: 0.0,
            acc_factor: 0.0,
        };
        for r in 0..n {
            let lo = off_ptr[r] as usize;
            let hi = off_ptr[r + 1] as usize;
            let row_abs: f64 = off_vals[lo..hi].iter().map(|v| v.abs()).sum();
            let d = diag[r].abs();
            cert.row_gain = cert.row_gain.max(row_abs / d);
            cert.inv_diag = cert.inv_diag.max(1.0 / d);
            cert.row_abs = cert.row_abs.max(row_abs);
            cert.acc_factor = cert.acc_factor.max((hi - lo) as f64 / d);
        }
        JacobiKernel {
            cfg,
            matrix,
            x_true,
            b,
            diag,
            off_ptr,
            off_cols,
            off_vals,
            cert,
        }
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &JacobiConfig {
        &self.cfg
    }

    /// The manufactured exact solution.
    pub fn x_true(&self) -> &[f64] {
        &self.x_true
    }

    /// Initialise `x` and `b` through the tracer — the non-provenance
    /// prefix of every run.
    fn init_plain(&self, t: &mut Tracer) -> (Vec<f64>, Vec<f64>) {
        let n = self.cfg.grid * self.cfg.grid;
        let mut x = vec![0.0; n];
        for xi in x.iter_mut() {
            *xi = t.value(sid::INIT_X, 0.0);
        }
        let mut b = vec![0.0; n];
        for (dst, &src) in b.iter_mut().zip(&self.b) {
            *dst = t.value(sid::INIT_B, src);
        }
        (x, b)
    }

    /// The Jacobi sweeps from `start` onward, shared by the plain,
    /// snapshotting and resumed execution paths (non-provenance only) so
    /// they cannot drift arithmetically. `boundary(cursor, branch_count,
    /// sweeps_done, x, b)` fires at the bottom of every sweep but the
    /// last; returning `true` stops the loop early.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn sweep_loop(
        &self,
        t: &mut Tracer,
        start: usize,
        x: &mut Vec<f64>,
        b: &[f64],
        next: &mut Vec<f64>,
        ax: &mut [f64],
        boundary: &mut dyn FnMut(usize, usize, usize, &[f64], &[f64]) -> bool,
    ) {
        let n = self.cfg.grid * self.cfg.grid;
        let resid_every = self.cfg.residual_every.max(1);
        for sweep in start..self.cfg.sweeps {
            let omega = match self.cfg.tweak {
                Some(tw) if tw.sweep == sweep => Some(tw.omega),
                _ => None,
            };
            for (r, nr) in next.iter_mut().enumerate() {
                let lo = self.off_ptr[r] as usize;
                let hi = self.off_ptr[r + 1] as usize;
                let mut off = 0.0;
                if self.cfg.fine_grained {
                    for (&c, &v) in self.off_cols[lo..hi].iter().zip(&self.off_vals[lo..hi]) {
                        off = t.value(sid::SWEEP_ACC, off + v * x[c as usize]);
                    }
                } else {
                    for (&c, &v) in self.off_cols[lo..hi].iter().zip(&self.off_vals[lo..hi]) {
                        off += v * x[c as usize];
                    }
                }
                let xj = (b[r] - off) / self.diag[r];
                *nr = t.value(
                    sid::SWEEP_X,
                    match omega {
                        Some(w) => (1.0 - w) * x[r] + w * xj,
                        None => xj,
                    },
                );
            }
            std::mem::swap(x, next);
            if (sweep + 1) % resid_every == 0 {
                let mut res2 = 0.0;
                self.matrix.spmv(x, ax);
                for r in 0..n {
                    let d = b[r] - ax[r];
                    res2 += d * d;
                }
                let _ = t.value(sid::RESID, res2);
            }
            if t.trapped() {
                break;
            }
            if sweep + 1 < self.cfg.sweeps
                && boundary(t.cursor(), t.branch_count(), sweep + 1, x, b)
            {
                break;
            }
        }
    }
}

impl Kernel for JacobiKernel {
    fn name(&self) -> &'static str {
        "jacobi"
    }

    fn precision(&self) -> Precision {
        self.cfg.precision
    }

    fn registry(&self) -> StaticRegistry {
        sid::registry()
    }

    fn estimated_sites(&self) -> usize {
        let n = self.cfg.grid * self.cfg.grid;
        let per_sweep = if self.cfg.fine_grained {
            self.off_cols.len() + n
        } else {
            n
        };
        let resid_sites = self.cfg.sweeps / self.cfg.residual_every.max(1);
        2 * n + self.cfg.sweeps * per_sweep + resid_sites
    }

    fn code_version(&self, lo: usize, hi: usize) -> u64 {
        let Some(tw) = self.cfg.tweak else {
            return 0;
        };
        if tw.sweep >= self.cfg.sweeps {
            return 0;
        }
        // site layout: [0,2n) init, then per sweep `per_sweep` stores with
        // one residual store after every `residual_every`-th sweep
        let n = self.cfg.grid * self.cfg.grid;
        let per_sweep = if self.cfg.fine_grained {
            self.off_cols.len() + n
        } else {
            n
        };
        let re = self.cfg.residual_every.max(1);
        let start = 2 * n + tw.sweep * per_sweep + tw.sweep / re;
        let end = start + per_sweep;
        if start < hi && lo < end {
            let mut h = ftb_trace::Fnv1a::new();
            h.write_u64(tw.sweep as u64);
            h.write_u64(tw.omega.to_bits());
            h.finish()
        } else {
            0
        }
    }

    fn snapshot_capable(&self) -> bool {
        true
    }

    /// Contraction certificate: one Jacobi sweep maps a state deviation
    /// `δx` to at most `row_gain·δx + δb/|d| + ρ`, where `row_gain =
    /// max_r Σ|off|/|d_r| ≤ 1` by diagonal dominance of the Poisson
    /// operator, `δb` is the (persistent) right-hand-side deviation and
    /// `ρ` is the per-sweep quantisation slack. The sweep's exact
    /// arithmetic is a convex-ish row combination, so with `row_gain ≤ 1`
    /// the deviation after the `S` remaining sweeps is at most
    /// `δx + S·(δb·max(1/|d|) + ρ)` — and the output *is* the final
    /// iterate, so that bounds the classifier's L∞ output distance.
    ///
    /// `ρ` accounts for every rounding the two runs can disagree by: one
    /// round-to-nearest quantisation of each stored update (each run
    /// moves by at most half a [`Precision::ulp_of`] at the magnitude
    /// cap), an explicit guard for the `f64` intermediate-arithmetic
    /// divergence (`16ε₆₄` per unit of intermediate magnitude, far above
    /// the ≤6 roundings a row update performs), plus — in fine-grained
    /// mode — the quantisation of each off-diagonal accumulation, scaled
    /// through the diagonal.
    /// Magnitudes are capped by the snapshot store's recorded golden
    /// suffix maxima plus the deviation budget, valid under the trait's
    /// self-consistency condition (`bound ≤ budget` throughout, since
    /// the bound grows monotonically with remaining sweeps).
    ///
    /// Control flow is data-independent (fixed sweep count) and every
    /// value stays finite inside the magnitude cap, so an accepted bound
    /// proves the outcome code is exactly `Masked`. A tweaked remaining
    /// sweep with ω outside `[0, 1]` breaks the convex-combination
    /// argument, so no certificate is offered there.
    fn masked_exit_bound(
        &self,
        step: u64,
        deviations: &[f64],
        suffix_mags: &[f64],
        budget: f64,
    ) -> Option<f64> {
        if self.cert.row_gain > 1.0 || !budget.is_finite() {
            return None;
        }
        if let Some(tw) = self.cfg.tweak {
            if tw.sweep >= step as usize && !(0.0..=1.0).contains(&tw.omega) {
                return None;
            }
        }
        let [dx, db] = deviations else { return None };
        let mx = *suffix_mags.first()?;
        let remaining = self.cfg.sweeps.saturating_sub(step as usize) as f64;
        let m_hat = mx + budget;
        let p = self.cfg.precision;
        let dust = 16.0 * f64::EPSILON * (self.cert.row_abs + 2.0) * m_hat;
        let rho = if self.cfg.fine_grained {
            self.cert.acc_factor * p.ulp_of(self.cert.row_abs * m_hat) + p.ulp_of(m_hat) + dust
        } else {
            p.ulp_of(m_hat) + dust
        };
        Some(dx + remaining * (db * self.cert.inv_diag + rho))
    }

    fn run_snapshotting(&self, t: &mut Tracer, capture: CaptureHook<'_>) -> Vec<f64> {
        let (mut x, b) = self.init_plain(t);
        let mut next = vec![0.0; x.len()];
        let mut ax = vec![0.0; x.len()];
        capture(t.cursor(), t.branch_count(), 0, &[&x, &b]);
        self.sweep_loop(
            t,
            0,
            &mut x,
            &b,
            &mut next,
            &mut ax,
            &mut |cursor, bc, done, x, b| {
                capture(cursor, bc, done as u64, &[x, b]);
                false
            },
        );
        x
    }

    fn run_resumed(
        &self,
        t: &mut Tracer,
        state: &KernelState,
        monitor: BoundaryMonitor<'_>,
    ) -> Vec<f64> {
        assert_eq!(state.arrays.len(), 2, "jacobi state is [x, b]");
        let mut x = state.arrays[0].clone();
        let b = state.arrays[1].clone();
        let mut next = vec![0.0; x.len()];
        let mut ax = vec![0.0; x.len()];
        self.sweep_loop(
            t,
            state.step as usize,
            &mut x,
            &b,
            &mut next,
            &mut ax,
            &mut |cursor, _bc, done, x, b| monitor(cursor, done as u64, &[x, b]),
        );
        x
    }

    fn run(&self, t: &mut Tracer) -> Vec<f64> {
        // The hot (injection) path goes through the shared sweep loop;
        // only provenance recording needs the def-map-annotated body.
        if !t.ddg_enabled() {
            let (mut x, b) = self.init_plain(t);
            let mut next = vec![0.0; x.len()];
            let mut ax = vec![0.0; x.len()];
            self.sweep_loop(
                t,
                0,
                &mut x,
                &b,
                &mut next,
                &mut ax,
                &mut |_, _, _, _, _| false,
            );
            return x;
        }
        let n = self.cfg.grid * self.cfg.grid;

        // provenance mode: def-site maps for x/b elements, updated as the
        // sweep overwrites them (empty and untouched in injection runs)
        let ddg = t.ddg_enabled();
        let mut def_x = vec![0usize; if ddg { n } else { 0 }];
        let mut def_next = def_x.clone();
        let mut def_b = def_x.clone();

        let mut x = vec![0.0; n];
        for (i, xi) in x.iter_mut().enumerate() {
            if ddg {
                def_x[i] = t.cursor();
            }
            *xi = t.value(sid::INIT_X, 0.0);
        }
        let mut b = vec![0.0; n];
        for (i, (dst, &src)) in b.iter_mut().zip(&self.b).enumerate() {
            if ddg {
                def_b[i] = t.cursor();
            }
            *dst = t.value(sid::INIT_B, src);
        }

        let mut next = vec![0.0; n];
        let mut ax = vec![0.0; n];
        let resid_every = self.cfg.residual_every.max(1);
        for sweep in 0..self.cfg.sweeps {
            // weighted-relaxation factor when this sweep's body is the
            // tweaked one; `None` keeps the plain path byte-identical to
            // an untweaked build
            let omega = match self.cfg.tweak {
                Some(tw) if tw.sweep == sweep => Some(tw.omega),
                _ => None,
            };
            for (r, nr) in next.iter_mut().enumerate() {
                let lo = self.off_ptr[r] as usize;
                let hi = self.off_ptr[r + 1] as usize;
                let mut off = 0.0;
                if self.cfg.fine_grained {
                    let mut acc_def = usize::MAX;
                    for (&c, &v) in self.off_cols[lo..hi].iter().zip(&self.off_vals[lo..hi]) {
                        if ddg {
                            if acc_def != usize::MAX {
                                t.dep(acc_def, OpKind::Linear);
                            }
                            t.dep(def_x[c as usize], OpKind::Scale(v));
                            acc_def = t.cursor();
                        }
                        off = t.value(sid::SWEEP_ACC, off + v * x[c as usize]);
                    }
                    if ddg {
                        // x_r = (b_r − off) / d_r, damped by ω when tweaked
                        if let Some(w) = omega {
                            t.dep(def_b[r], OpKind::Scale(w / self.diag[r]));
                            if acc_def != usize::MAX {
                                t.dep(acc_def, OpKind::Scale(w / self.diag[r]));
                            }
                            t.dep(def_x[r], OpKind::Scale(1.0 - w));
                        } else {
                            t.dep(def_b[r], OpKind::DivNum(self.diag[r]));
                            if acc_def != usize::MAX {
                                t.dep(acc_def, OpKind::DivNum(self.diag[r]));
                            }
                        }
                        def_next[r] = t.cursor();
                    }
                } else {
                    if ddg {
                        // x_r = (b_r − Σ_c v_c x_c) / d_r: each operand's
                        // |∂| at the golden values, damped by ω when tweaked
                        for (&c, &v) in self.off_cols[lo..hi].iter().zip(&self.off_vals[lo..hi]) {
                            let amp = match omega {
                                Some(w) => w * v / self.diag[r],
                                None => v / self.diag[r],
                            };
                            t.dep(def_x[c as usize], OpKind::Scale(amp));
                        }
                        if let Some(w) = omega {
                            t.dep(def_b[r], OpKind::Scale(w / self.diag[r]));
                            t.dep(def_x[r], OpKind::Scale(1.0 - w));
                        } else {
                            t.dep(def_b[r], OpKind::DivNum(self.diag[r]));
                        }
                        def_next[r] = t.cursor();
                    }
                    for (&c, &v) in self.off_cols[lo..hi].iter().zip(&self.off_vals[lo..hi]) {
                        off += v * x[c as usize];
                    }
                }
                let xj = (b[r] - off) / self.diag[r];
                *nr = t.value(
                    sid::SWEEP_X,
                    match omega {
                        Some(w) => (1.0 - w) * x[r] + w * xj,
                        None => xj,
                    },
                );
            }
            std::mem::swap(&mut x, &mut next);
            if ddg {
                std::mem::swap(&mut def_x, &mut def_next);
            }
            // residual norm², traced as a reduction (a typical
            // convergence-monitoring store in real solvers), amortised
            // over `residual_every` sweeps. Carries no provenance deps:
            // the monitor value feeds neither the output nor any branch,
            // so its in-edges cannot constrain any threshold — flips *at*
            // a RESID site are covered by the crash-aware predictor
            // (non-finite) or masked (the stored value is discarded).
            if (sweep + 1) % resid_every == 0 {
                let mut res2 = 0.0;
                self.matrix.spmv(&x, &mut ax);
                for r in 0..n {
                    let d = b[r] - ax[r];
                    res2 += d * d;
                }
                let _ = t.value(sid::RESID, res2);
            }
            if t.trapped() {
                break;
            }
        }

        if ddg {
            for &d in &def_x {
                t.out_dep(d, 1.0);
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use ftb_trace::norms::Norm;
    use ftb_trace::{FaultSpec, RecordMode};

    #[test]
    fn converges_toward_manufactured_solution() {
        let k = JacobiKernel::new(JacobiConfig {
            sweeps: 400,
            ..JacobiConfig::small()
        });
        let g = k.golden();
        let err = Norm::LInf.distance(&g.output, k.x_true());
        assert!(err < 1e-3, "Jacobi did not converge: {err}");
    }

    #[test]
    fn residual_sites_decrease() {
        let k = JacobiKernel::new(JacobiConfig::small());
        let g = k.golden();
        let resids: Vec<f64> = (0..g.n_sites())
            .filter(|&s| g.static_id(s) == sid::RESID)
            .map(|s| g.values[s])
            .collect();
        assert_eq!(resids.len(), k.config().sweeps);
        assert!(
            resids.last().unwrap() < &(resids[0] * 0.5),
            "residual did not shrink: {resids:?}"
        );
    }

    #[test]
    fn injected_error_decays_across_sweeps() {
        // the contraction property: a perturbation in an early sweep
        // store leaves a *smaller* perturbation in the final output than
        // it injected
        let k = JacobiKernel::new(JacobiConfig::small());
        let g = k.golden();
        let n = k.config().grid * k.config().grid;
        // first sweep's x store for an interior-ish row
        let site = 2 * n + 7;
        assert_eq!(g.static_id(site), sid::SWEEP_X);
        let bit = 51; // sizeable mantissa perturbation
        let r = k.run_injected(FaultSpec { site, bit }, RecordMode::OutputOnly);
        let inj = r.injected_err.unwrap();
        let out = Norm::LInf.distance(&g.output, &r.output);
        assert!(
            out < inj * 0.5,
            "Jacobi should damp the perturbation: injected {inj:.3e}, output {out:.3e}"
        );
    }

    #[test]
    fn estimate_covers_actual() {
        let k = JacobiKernel::new(JacobiConfig::small());
        let g = k.golden();
        assert!(k.estimated_sites() >= g.n_sites());
        assert!(k.estimated_sites() <= g.n_sites() + 8);
    }

    #[test]
    fn tweak_changes_one_sweep_but_not_the_shape() {
        let base = JacobiKernel::new(JacobiConfig::small());
        let tweaked = JacobiKernel::new(JacobiConfig {
            tweak: Some(SweepTweak {
                sweep: 3,
                omega: 0.7,
            }),
            ..JacobiConfig::small()
        });
        let g0 = base.golden();
        let g1 = tweaked.golden();
        // identical dynamic-instruction stream shape …
        assert_eq!(g0.static_ids, g1.static_ids);
        // … but different values from the tweaked sweep onward
        let n = base.config().grid * base.config().grid;
        let sweep3 = 2 * n + 3 * (n + 1);
        assert_eq!(g0.values[..sweep3], g1.values[..sweep3]);
        assert_ne!(g0.values[sweep3..], g1.values[sweep3..]);
        // a damped sweep still converges
        let err = Norm::LInf.distance(&g1.output, &g0.output);
        assert!(err.is_finite());
    }

    #[test]
    fn code_version_localizes_the_edit() {
        let cfg = JacobiConfig {
            tweak: Some(SweepTweak {
                sweep: 2,
                omega: 0.5,
            }),
            ..JacobiConfig::small()
        };
        let k = JacobiKernel::new(cfg.clone());
        let n = cfg.grid * cfg.grid;
        // sweep s occupies [2n + s(n+1), 2n + s(n+1) + n) with
        // residual_every = 1
        let start = 2 * n + 2 * (n + 1);
        assert_ne!(k.code_version(start, start + n + 1), 0);
        // neighbouring sweeps are untouched
        assert_eq!(k.code_version(2 * n + (n + 1), start), 0);
        assert_eq!(k.code_version(start + n + 1, start + 2 * (n + 1)), 0);
        // an untweaked build stamps everything 0
        let plain = JacobiKernel::new(JacobiConfig::small());
        assert_eq!(plain.code_version(0, plain.estimated_sites()), 0);
    }

    #[test]
    fn masked_exit_bound_is_monotone_and_gated() {
        let k = JacobiKernel::new(JacobiConfig::small());
        let tol = 1e-6;
        // Poisson rows are diagonally dominant with unit off-diagonals
        assert!(k.cert.row_gain <= 1.0);
        assert_eq!(k.cert.inv_diag, 0.25);
        // a bit-identical state certifies trivially: only rounding slack
        let b0 = k
            .masked_exit_bound(10, &[0.0, 0.0], &[1.0, 8.0], tol)
            .unwrap();
        assert!(b0 < tol, "pure slack must be far below tolerance: {b0}");
        // more remaining sweeps, larger deviations ⇒ larger bound
        let early = k
            .masked_exit_bound(2, &[1e-8, 1e-9], &[1.0, 8.0], tol)
            .unwrap();
        let late = k
            .masked_exit_bound(25, &[1e-8, 1e-9], &[1.0, 8.0], tol)
            .unwrap();
        assert!(early > late && late > b0);
        // the x deviation enters the bound directly
        let shifted = k
            .masked_exit_bound(25, &[3e-7, 0.0], &[1.0, 8.0], tol)
            .unwrap();
        assert!(shifted >= 3e-7);
        // a non-convex tweak in the remaining sweeps voids the
        // certificate; one already executed does not
        let tweaked = JacobiKernel::new(JacobiConfig {
            tweak: Some(SweepTweak {
                sweep: 20,
                omega: 1.5,
            }),
            ..JacobiConfig::small()
        });
        assert!(tweaked
            .masked_exit_bound(10, &[0.0, 0.0], &[1.0, 8.0], tol)
            .is_none());
        assert!(tweaked
            .masked_exit_bound(21, &[0.0, 0.0], &[1.0, 8.0], tol)
            .is_some());
        // a convex tweak keeps it
        let damped = JacobiKernel::new(JacobiConfig {
            tweak: Some(SweepTweak {
                sweep: 20,
                omega: 0.7,
            }),
            ..JacobiConfig::small()
        });
        assert!(damped
            .masked_exit_bound(10, &[0.0, 0.0], &[1.0, 8.0], tol)
            .is_some());
    }

    #[test]
    fn resumed_run_is_bitwise_identical_to_scratch() {
        let k = JacobiKernel::new(JacobiConfig::small());
        let g = k.golden();
        let mut snaps: Vec<(usize, usize, u64, Vec<Vec<f64>>)> = Vec::new();
        let mut t = Tracer::untraced(Precision::F64);
        let out = k.run_snapshotting(&mut t, &mut |c, bc, s, arrays| {
            snaps.push((c, bc, s, arrays.iter().map(|a| a.to_vec()).collect()));
        });
        assert_eq!(out, g.output);
        assert_eq!(t.cursor(), g.n_dynamic);
        // one boundary after init (step 0) plus one per sweep but the last
        assert_eq!(snaps.len(), k.config().sweeps);

        let (cursor, bc, step, arrays) = snaps[7].clone();
        let state = KernelState { step, arrays };
        // a fault-free resume completes to the golden output
        let mut t = Tracer::untraced(Precision::F64).resume_at(cursor, bc);
        let out = k.run_resumed(&mut t, &state, &mut |_, _, _| false);
        assert_eq!(out, g.output);
        assert_eq!(t.cursor(), g.n_dynamic);

        // a faulty resume matches the from-scratch injected run exactly
        let fault = FaultSpec {
            site: cursor + 3,
            bit: 61,
        };
        let scratch = k.run_injected(fault, RecordMode::OutputOnly);
        let mut t =
            Tracer::inject(Precision::F64, fault, RecordMode::OutputOnly).resume_at(cursor, bc);
        let out = k.run_resumed(&mut t, &state, &mut |_, _, _| false);
        assert_eq!(out, scratch.output);
        assert_eq!(t.cursor(), scratch.n_dynamic);
    }

    #[test]
    fn tweaked_ddg_stays_instrumented() {
        let k = JacobiKernel::new(JacobiConfig {
            grid: 4,
            sweeps: 6,
            tweak: Some(SweepTweak {
                sweep: 1,
                omega: 0.6,
            }),
            ..JacobiConfig::small()
        });
        let (g, ddg) = k.golden_with_ddg();
        assert!(ddg.is_instrumented());
        assert_eq!(ddg.n_sites, g.n_sites());
    }
}
