//! Jacobi iterative solver on the 2-D Poisson system.
//!
//! A contrasting workload for the boundary method: where CG's
//! short-recurrence coupling makes error propagation noisy and
//! non-monotonic, Jacobi is a *contraction* — each sweep multiplies the
//! error by the iteration matrix whose spectral radius is < 1, so an
//! injected perturbation **decays geometrically**. Propagation data from
//! masked Jacobi runs therefore certifies large thresholds for early
//! instructions (their errors die out), the mirror image of the LU/FFT
//! pattern where early errors persist.
//!
//! The solve is `x_{k+1} = D⁻¹ (b − (A − D) x_k)` for the 5-point
//! Poisson operator, with the same manufactured right-hand side as the
//! CG kernel and a fixed sweep count (data-independent control flow).

use crate::csr::Csr;
use crate::inputs::uniform_vec;
use crate::Kernel;
use ftb_trace::{Precision, StaticRegistry, Tracer};
use serde::{Deserialize, Serialize};

ftb_trace::static_instrs! {
    pub mod sid {
        INIT_X  => ("jacobi.init.x=0", Init),
        INIT_B  => ("jacobi.init.b", Init),
        SWEEP_X => ("jacobi.sweep.x", Compute),
        RESID   => ("jacobi.residual", Reduction),
    }
}

/// Configuration of the Jacobi solver kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JacobiConfig {
    /// Mesh is `grid × grid`.
    pub grid: usize,
    /// Number of sweeps (fixed; Jacobi converges slowly and the paper's
    /// model prefers deterministic control flow where the algorithm has
    /// it).
    pub sweeps: usize,
    /// Element precision.
    pub precision: Precision,
    /// Input seed.
    pub seed: u64,
}

impl JacobiConfig {
    /// Laptop-scale default: 6×6 mesh, 30 sweeps.
    pub fn small() -> Self {
        JacobiConfig {
            grid: 6,
            sweeps: 30,
            precision: Precision::F64,
            seed: 42,
        }
    }
}

/// The instrumented Jacobi solver.
#[derive(Debug, Clone)]
pub struct JacobiKernel {
    cfg: JacobiConfig,
    matrix: Csr,
    x_true: Vec<f64>,
    b: Vec<f64>,
}

impl JacobiKernel {
    /// Build the kernel (assembles the Poisson system, manufactures `b`).
    pub fn new(cfg: JacobiConfig) -> Self {
        let n = cfg.grid * cfg.grid;
        let matrix = Csr::poisson_2d(cfg.grid);
        let x_true = uniform_vec(cfg.seed, n, -1.0, 1.0);
        let mut b = vec![0.0; n];
        matrix.spmv(&x_true, &mut b);
        JacobiKernel {
            cfg,
            matrix,
            x_true,
            b,
        }
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &JacobiConfig {
        &self.cfg
    }

    /// The manufactured exact solution.
    pub fn x_true(&self) -> &[f64] {
        &self.x_true
    }
}

impl Kernel for JacobiKernel {
    fn name(&self) -> &'static str {
        "jacobi"
    }

    fn precision(&self) -> Precision {
        self.cfg.precision
    }

    fn registry(&self) -> StaticRegistry {
        sid::registry()
    }

    fn estimated_sites(&self) -> usize {
        let n = self.cfg.grid * self.cfg.grid;
        2 * n + self.cfg.sweeps * (n + 1)
    }

    fn run(&self, t: &mut Tracer) -> Vec<f64> {
        let n = self.cfg.grid * self.cfg.grid;

        let mut x = vec![0.0; n];
        for xi in x.iter_mut() {
            *xi = t.value(sid::INIT_X, 0.0);
        }
        let mut b = vec![0.0; n];
        for (dst, &src) in b.iter_mut().zip(&self.b) {
            *dst = t.value(sid::INIT_B, src);
        }

        let mut next = vec![0.0; n];
        for _ in 0..self.cfg.sweeps {
            for r in 0..n {
                let mut off = 0.0;
                let mut diag = 0.0;
                for (c, v) in self.matrix.row(r) {
                    if c == r {
                        diag = v;
                    } else {
                        off += v * x[c];
                    }
                }
                next[r] = t.value(sid::SWEEP_X, (b[r] - off) / diag);
            }
            std::mem::swap(&mut x, &mut next);
            // residual norm², traced as a reduction (a typical
            // convergence-monitoring store in real solvers)
            let mut res2 = 0.0;
            let mut ax = vec![0.0; n];
            self.matrix.spmv(&x, &mut ax);
            for r in 0..n {
                let d = b[r] - ax[r];
                res2 += d * d;
            }
            let _ = t.value(sid::RESID, res2);
            if t.trapped() {
                break;
            }
        }

        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use ftb_trace::norms::Norm;
    use ftb_trace::{FaultSpec, RecordMode};

    #[test]
    fn converges_toward_manufactured_solution() {
        let k = JacobiKernel::new(JacobiConfig {
            sweeps: 400,
            ..JacobiConfig::small()
        });
        let g = k.golden();
        let err = Norm::LInf.distance(&g.output, k.x_true());
        assert!(err < 1e-3, "Jacobi did not converge: {err}");
    }

    #[test]
    fn residual_sites_decrease() {
        let k = JacobiKernel::new(JacobiConfig::small());
        let g = k.golden();
        let resids: Vec<f64> = (0..g.n_sites())
            .filter(|&s| g.static_id(s) == sid::RESID)
            .map(|s| g.values[s])
            .collect();
        assert_eq!(resids.len(), k.config().sweeps);
        assert!(
            resids.last().unwrap() < &(resids[0] * 0.5),
            "residual did not shrink: {resids:?}"
        );
    }

    #[test]
    fn injected_error_decays_across_sweeps() {
        // the contraction property: a perturbation in an early sweep
        // store leaves a *smaller* perturbation in the final output than
        // it injected
        let k = JacobiKernel::new(JacobiConfig::small());
        let g = k.golden();
        let n = k.config().grid * k.config().grid;
        // first sweep's x store for an interior-ish row
        let site = 2 * n + 7;
        assert_eq!(g.static_id(site), sid::SWEEP_X);
        let bit = 51; // sizeable mantissa perturbation
        let r = k.run_injected(FaultSpec { site, bit }, RecordMode::OutputOnly);
        let inj = r.injected_err.unwrap();
        let out = Norm::LInf.distance(&g.output, &r.output);
        assert!(
            out < inj * 0.5,
            "Jacobi should damp the perturbation: injected {inj:.3e}, output {out:.3e}"
        );
    }

    #[test]
    fn estimate_covers_actual() {
        let k = JacobiKernel::new(JacobiConfig::small());
        let g = k.golden();
        assert!(k.estimated_sites() >= g.n_sites());
        assert!(k.estimated_sites() <= g.n_sites() + 8);
    }
}
