//! Dense matrix-matrix product (`C = A·B`).
//!
//! Rounds out the §5 family ("sparse or dense matrix multiplication can be
//! proven to have such a property"): an error in one element of `A` or `B`
//! perturbs a single row/column of `C` linearly. Also serves as an extra
//! workload for the campaign and boundary machinery beyond the paper's
//! three evaluation kernels.

use crate::inputs::uniform_vec;
use crate::{BoundaryMonitor, CaptureHook, Kernel, KernelState};
use ftb_trace::{OpKind, Precision, StaticRegistry, Tracer};
use serde::{Deserialize, Serialize};

ftb_trace::static_instrs! {
    pub mod sid {
        INIT_A => ("gemm.init.a", Init),
        INIT_B => ("gemm.init.b", Init),
        CELL   => ("gemm.cell", Compute),
    }
}

/// Configuration of the GEMM kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmConfig {
    /// Matrices are `n × n`.
    pub n: usize,
    /// Element precision.
    pub precision: Precision,
    /// Input seed.
    pub seed: u64,
}

impl GemmConfig {
    /// Laptop-scale default: 12×12.
    pub fn small() -> Self {
        GemmConfig {
            n: 12,
            precision: Precision::F64,
            seed: 42,
        }
    }
}

/// The instrumented GEMM kernel.
#[derive(Debug, Clone)]
pub struct GemmKernel {
    cfg: GemmConfig,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl GemmKernel {
    /// Build the kernel with random `A` and `B`.
    pub fn new(cfg: GemmConfig) -> Self {
        let a = uniform_vec(cfg.seed, cfg.n * cfg.n, -1.0, 1.0);
        let b = uniform_vec(cfg.seed.wrapping_add(1), cfg.n * cfg.n, -1.0, 1.0);
        GemmKernel { cfg, a, b }
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &GemmConfig {
        &self.cfg
    }

    /// Initialise the traced copies of `A` and `B` (the non-provenance
    /// prefix of every run).
    fn init_plain(&self, t: &mut Tracer) -> (Vec<f64>, Vec<f64>) {
        let n = self.cfg.n;
        let mut a = vec![0.0; n * n];
        for (dst, &src) in a.iter_mut().zip(&self.a) {
            *dst = t.value(sid::INIT_A, src);
        }
        let mut b = vec![0.0; n * n];
        for (dst, &src) in b.iter_mut().zip(&self.b) {
            *dst = t.value(sid::INIT_B, src);
        }
        (a, b)
    }

    /// The CELL rows from `start_row` onward, shared by the plain,
    /// snapshotting and resumed paths. `boundary(cursor, branch_count,
    /// rows_done, c)` fires after every row but the last; returning
    /// `true` stops the loop early.
    #[allow(clippy::type_complexity)]
    fn cell_rows(
        &self,
        t: &mut Tracer,
        start_row: usize,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        boundary: &mut dyn FnMut(usize, usize, usize, &[f64]) -> bool,
    ) {
        let n = self.cfg.n;
        for i in start_row..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a[i * n + k] * b[k * n + j];
                }
                c[i * n + j] = t.value(sid::CELL, s);
            }
            if i + 1 < n && boundary(t.cursor(), t.branch_count(), i + 1, c) {
                return;
            }
        }
    }
}

impl Kernel for GemmKernel {
    fn name(&self) -> &'static str {
        "gemm"
    }

    fn precision(&self) -> Precision {
        self.cfg.precision
    }

    fn registry(&self) -> StaticRegistry {
        sid::registry()
    }

    fn estimated_sites(&self) -> usize {
        3 * self.cfg.n * self.cfg.n
    }

    fn snapshot_capable(&self) -> bool {
        true
    }

    fn run_snapshotting(&self, t: &mut Tracer, capture: CaptureHook<'_>) -> Vec<f64> {
        let n = self.cfg.n;
        let (a, b) = self.init_plain(t);
        let mut c = vec![0.0; n * n];
        capture(t.cursor(), t.branch_count(), 0, &[&a, &b, &c]);
        self.cell_rows(t, 0, &a, &b, &mut c, &mut |cursor, bc, rows, c| {
            capture(cursor, bc, rows as u64, &[&a, &b, c]);
            false
        });
        c
    }

    fn run_resumed(
        &self,
        t: &mut Tracer,
        state: &KernelState,
        monitor: BoundaryMonitor<'_>,
    ) -> Vec<f64> {
        assert_eq!(state.arrays.len(), 3, "gemm state is [a, b, c]");
        let a = state.arrays[0].clone();
        let b = state.arrays[1].clone();
        let mut c = state.arrays[2].clone();
        self.cell_rows(
            t,
            state.step as usize,
            &a,
            &b,
            &mut c,
            &mut |cursor, _bc, rows, c| monitor(cursor, rows as u64, &[&a, &b, c]),
        );
        c
    }

    fn run(&self, t: &mut Tracer) -> Vec<f64> {
        // The hot (injection) path goes through the shared row loop; only
        // provenance recording needs the def-map-annotated body.
        if !t.ddg_enabled() {
            let n = self.cfg.n;
            let (a, b) = self.init_plain(t);
            let mut c = vec![0.0; n * n];
            self.cell_rows(t, 0, &a, &b, &mut c, &mut |_, _, _, _| false);
            return c;
        }
        let n = self.cfg.n;
        // provenance mode: INIT_A occupies sites [0, n²), INIT_B sites
        // [n², 2n²) — recorded explicitly rather than assumed
        let ddg = t.ddg_enabled();
        let mut def_a = vec![0usize; if ddg { n * n } else { 0 }];
        let mut def_b = def_a.clone();

        let mut a = vec![0.0; n * n];
        for (i, (dst, &src)) in a.iter_mut().zip(&self.a).enumerate() {
            if ddg {
                def_a[i] = t.cursor();
            }
            *dst = t.value(sid::INIT_A, src);
        }
        let mut b = vec![0.0; n * n];
        for (i, (dst, &src)) in b.iter_mut().zip(&self.b).enumerate() {
            if ddg {
                def_b[i] = t.cursor();
            }
            *dst = t.value(sid::INIT_B, src);
        }
        let mut c = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if ddg {
                    // c_ij = Σ_k a_ik b_kj: |∂c/∂a_ik| = |b_kj| and
                    // vice versa, exact for one perturbed operand
                    for k in 0..n {
                        t.dep(def_a[i * n + k], OpKind::Scale(b[k * n + j]));
                        t.dep(def_b[k * n + j], OpKind::Scale(a[i * n + k]));
                    }
                }
                let mut s = 0.0;
                for k in 0..n {
                    s += a[i * n + k] * b[k * n + j];
                }
                let def = t.cursor();
                c[i * n + j] = t.value(sid::CELL, s);
                if ddg {
                    t.out_dep(def, 1.0);
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use ftb_trace::{FaultSpec, RecordMode};

    #[test]
    fn output_matches_direct_product() {
        let k = GemmKernel::new(GemmConfig::small());
        let g = k.golden();
        let n = k.config().n;
        for i in 0..n {
            for j in 0..n {
                let expect: f64 = (0..n).map(|x| k.a[i * n + x] * k.b[x * n + j]).sum();
                assert!((g.output[i * n + j] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn corrupting_a_element_touches_one_row_of_c() {
        let k = GemmKernel::new(GemmConfig::small());
        let g = k.golden();
        let n = k.config().n;
        // flip sign of A[2][5] (init site 2*n+5)
        let site = 2 * n + 5;
        let r = k.run_injected(FaultSpec { site, bit: 63 }, RecordMode::OutputOnly);
        for i in 0..n {
            for j in 0..n {
                let changed = (g.output[i * n + j] - r.output[i * n + j]).abs() > 1e-12;
                assert_eq!(changed, i == 2, "C[{i}][{j}] change pattern wrong");
            }
        }
    }

    #[test]
    fn estimated_sites_is_exact() {
        let k = GemmKernel::new(GemmConfig::small());
        assert_eq!(k.estimated_sites(), k.golden().n_sites());
    }
}
