//! # ftb-kernels
//!
//! Instrumented HPC kernels — the workloads of the PPoPP'21 evaluation,
//! re-implemented against the [`ftb_trace::Tracer`] substrate.
//!
//! The paper evaluates three kernels (§4): **conjugate gradient** on a
//! MiniFE-style finite-element system, the **SPLASH-2 blocked dense LU**
//! factorization, and the **SPLASH-2 six-step 1-D FFT**. Its §5
//! additionally analyses the error-monotonicity of **2-D stencil** and
//! **matrix-vector / matrix-matrix** computation, which we implement as
//! well so the monotonicity claims can be checked experimentally.
//!
//! ## Tracing granularity
//!
//! Following the paper's error-propagation model (§2.2: "tracking the
//! data variables of a program execution during load/store operations"),
//! a *dynamic instruction* here is **one store of a floating-point data
//! element** — a vector/matrix element update or a produced scalar
//! (dot products, α/β in CG). Intermediate register arithmetic is not a
//! separate site, exactly as in the paper's LLVM instrumentation, which
//! injects into the *result* of an instruction that writes a data value.
//!
//! ## Determinism
//!
//! Every kernel builds its input deterministically from a `u64` seed, so
//! a `(kernel-config, seed, fault)` triple reproduces an experiment
//! bit-for-bit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cg;
pub mod csr;
pub mod fft;
pub mod gemm;
pub mod inputs;
pub mod jacobi;
pub mod lu;
pub mod matvec;
pub mod spmv;
pub mod stencil;

use ftb_trace::{
    Ddg, FaultSpec, GoldenRun, Precision, RecordMode, RunTrace, StaticRegistry, Tracer,
};
use serde::{Deserialize, Serialize};

pub use cg::{CgConfig, CgKernel, CgStorage};
pub use csr::Csr;
pub use fft::{FftConfig, FftKernel};
pub use gemm::{GemmConfig, GemmKernel};
pub use jacobi::{JacobiConfig, JacobiKernel, SweepTweak};
pub use lu::{LuConfig, LuKernel};
pub use matvec::{MatvecConfig, MatvecKernel};
pub use spmv::{SpmvConfig, SpmvKernel};
pub use stencil::{StencilConfig, StencilKernel};

/// Full mid-run state of a snapshot-capable kernel at a section
/// boundary: everything needed to re-enter the kernel's main loop and
/// reproduce the remaining execution bit-for-bit. The tracer position
/// (cursor, branch count) travels separately — it belongs to the
/// instrumentation, not the kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelState {
    /// Loop progress: completed sweeps / rows / iterations.
    pub step: u64,
    /// The live arrays, in the kernel-defined order its
    /// [`Kernel::run_resumed`] expects them back. Values are exactly as
    /// the tracer quantised them, so resumed arithmetic is bit-identical.
    pub arrays: Vec<Vec<f64>>,
}

/// Section-boundary capture hook for [`Kernel::run_snapshotting`]:
/// `capture(cursor, branch_count, step, arrays)`.
pub type CaptureHook<'a> = &'a mut dyn FnMut(usize, usize, u64, &[&[f64]]);

/// Section-boundary monitor for [`Kernel::run_resumed`]:
/// `monitor(cursor, step, arrays)` returns `true` to stop the run early.
pub type BoundaryMonitor<'a> = &'a mut dyn FnMut(usize, u64, &[&[f64]]) -> bool;

/// A fault-injectable computational kernel.
///
/// Implementations hold their (deterministically generated) input data and
/// are immutable during runs, so campaigns can execute them from many
/// threads concurrently (`Send + Sync`).
pub trait Kernel: Send + Sync {
    /// Short stable name, e.g. `"cg"`.
    fn name(&self) -> &'static str;

    /// Floating-point width of the kernel's data elements.
    fn precision(&self) -> Precision;

    /// The kernel's static-instruction registry (source-site metadata).
    fn registry(&self) -> StaticRegistry;

    /// Execute against a tracer, returning the program output.
    fn run(&self, t: &mut Tracer) -> Vec<f64>;

    /// Expected dynamic-instruction count, used to pre-size trace buffers
    /// (`0` = unknown).
    fn estimated_sites(&self) -> usize {
        0
    }

    /// Expected branch-event count (`0` = unknown).
    fn estimated_branches(&self) -> usize {
        0
    }

    /// Version stamp of the *code* that produces dynamic instructions
    /// `[lo, hi)` — the compositional analyzer's invalidation hook. Two
    /// builds of a kernel must return the same stamp for a range iff the
    /// arithmetic producing that range is unchanged; input values do not
    /// count (the golden run captures those). The default claims the
    /// whole program is version `0`, i.e. editing the config rebuilds
    /// everything — correct but never incremental. Kernels with
    /// localized, configurable variants (e.g. [`JacobiConfig::tweak`])
    /// override this to confine invalidation to the edited phase.
    fn code_version(&self, _lo: usize, _hi: usize) -> u64 {
        0
    }

    /// Whether this kernel implements snapshot-resume execution
    /// ([`Kernel::run_snapshotting`] / [`Kernel::run_resumed`]). The
    /// default is `false`: campaigns fall back to from-`t=0` execution.
    fn snapshot_capable(&self) -> bool {
        false
    }

    /// Execute fault-free, invoking `capture(cursor, branch_count, step,
    /// arrays)` at every section boundary — a point where the live arrays
    /// plus the loop step fully determine the rest of the run. The first
    /// capture fires right after input initialisation (`step` 0); later
    /// captures fire at the bottom of each outer-loop step, *before* the
    /// dynamic instructions of the next step. A run resumed from any
    /// captured state reproduces the remaining trace bit-for-bit.
    ///
    /// # Panics
    /// The default panics: only kernels reporting
    /// [`Kernel::snapshot_capable`] implement this.
    fn run_snapshotting(&self, _t: &mut Tracer, _capture: CaptureHook<'_>) -> Vec<f64> {
        panic!("kernel {:?} is not snapshot-capable", self.name());
    }

    /// Re-enter the main loop from a captured [`KernelState`], driving a
    /// tracer that was positioned with `Tracer::resume_at` at the
    /// matching cursor. `monitor(cursor, step, arrays)` fires at exactly
    /// the boundaries [`Kernel::run_snapshotting`] captures; returning
    /// `true` stops the run early (the caller has everything it needs —
    /// e.g. the live state reconverged bitwise with the golden state).
    /// On an early stop the returned output is unspecified.
    ///
    /// # Panics
    /// The default panics: only kernels reporting
    /// [`Kernel::snapshot_capable`] implement this.
    fn run_resumed(
        &self,
        _t: &mut Tracer,
        _state: &KernelState,
        _monitor: BoundaryMonitor<'_>,
    ) -> Vec<f64> {
        panic!("kernel {:?} is not snapshot-capable", self.name());
    }

    /// Contraction certificate for snapshot-resumed early exit: a sound
    /// upper bound on the L∞ deviation of the *final output* from the
    /// golden output, given the per-array L∞ deviations of the live
    /// state from the golden state at a section boundary with `step`
    /// loop steps completed. `suffix_mags` are per-array upper bounds on
    /// the golden state magnitudes over the remaining suffix (supplied
    /// by the snapshot store, which records them at capture time).
    ///
    /// The contract is *conditionally* sound: the returned bound must
    /// hold whenever it is at most `budget` (the classifier tolerance) —
    /// i.e. the implementation may assume the faulty state stays within
    /// `budget` of golden throughout the suffix, which the caller's
    /// acceptance test (`bound ≤ budget`) makes self-consistent for
    /// monotone bounds. Implementations must also guarantee that a
    /// state within the bound can neither produce a non-finite value
    /// nor change the remaining control flow (no data-dependent trip
    /// counts), so the outcome code is provably `Masked`.
    ///
    /// The default (`None`) offers no certificate; only kernels whose
    /// remaining iteration is non-expansive under the output norm (e.g.
    /// diagonally dominant Jacobi relaxation) should implement this.
    fn masked_exit_bound(
        &self,
        _step: u64,
        _deviations: &[f64],
        _suffix_mags: &[f64],
        _budget: f64,
    ) -> Option<f64> {
        None
    }

    /// Record the golden (fault-free) run.
    fn golden(&self) -> GoldenRun {
        let mut t = Tracer::golden(self.precision());
        t.reserve(self.estimated_sites(), self.estimated_branches());
        let out = self.run(&mut t);
        t.finish_golden(out)
    }

    /// Record the golden run in operand-provenance mode, returning the
    /// data-dependence graph alongside the reference run. Kernels whose
    /// `run` carries no [`Tracer::dep`] instrumentation yield an empty
    /// graph (`!Ddg::is_instrumented()`), which the static analyzer
    /// rejects with an explicit error rather than an unsound bound.
    fn golden_with_ddg(&self) -> (GoldenRun, Ddg) {
        let mut t = Tracer::golden(self.precision()).with_ddg();
        t.reserve(self.estimated_sites(), self.estimated_branches());
        let out = self.run(&mut t);
        t.finish_golden_with_ddg(out)
    }

    /// Execute with a single-bit-flip fault injected.
    fn run_injected(&self, fault: FaultSpec, mode: RecordMode) -> RunTrace {
        let mut t = Tracer::inject(self.precision(), fault, mode);
        if mode == RecordMode::Full {
            t.reserve(self.estimated_sites(), self.estimated_branches());
        }
        let out = self.run(&mut t);
        t.finish(out)
    }

    /// Execute untraced (instrumentation-overhead baseline for benches).
    fn run_untraced(&self) -> RunTrace {
        let mut t = Tracer::untraced(self.precision());
        let out = self.run(&mut t);
        t.finish(out)
    }
}

/// A serialisable kernel selection + configuration, the unit the CLI and
/// bench harness pass around.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KernelConfig {
    /// Conjugate gradient on a 2-D Poisson finite-element system.
    Cg(CgConfig),
    /// Blocked dense LU factorization (SPLASH-2 style, no pivoting).
    Lu(LuConfig),
    /// Six-step 1-D complex FFT (SPLASH-2 style).
    Fft(FftConfig),
    /// 2-D five-point Jacobi stencil.
    Stencil(StencilConfig),
    /// Dense matrix-vector product.
    Matvec(MatvecConfig),
    /// Sparse (CSR) matrix-vector product on the Poisson operator.
    Spmv(SpmvConfig),
    /// Dense matrix-matrix product.
    Gemm(GemmConfig),
    /// Jacobi iterative solver on the Poisson system.
    Jacobi(JacobiConfig),
}

impl KernelConfig {
    /// Instantiate the kernel (generates its input from the config seed).
    pub fn build(&self) -> Box<dyn Kernel> {
        match self {
            KernelConfig::Cg(c) => Box::new(CgKernel::new(c.clone())),
            KernelConfig::Lu(c) => Box::new(LuKernel::new(c.clone())),
            KernelConfig::Fft(c) => Box::new(FftKernel::new(c.clone())),
            KernelConfig::Stencil(c) => Box::new(StencilKernel::new(c.clone())),
            KernelConfig::Matvec(c) => Box::new(MatvecKernel::new(c.clone())),
            KernelConfig::Spmv(c) => Box::new(SpmvKernel::new(c.clone())),
            KernelConfig::Gemm(c) => Box::new(GemmKernel::new(c.clone())),
            KernelConfig::Jacobi(c) => Box::new(JacobiKernel::new(c.clone())),
        }
    }

    /// The kernel's short name without instantiating it.
    pub fn name(&self) -> &'static str {
        match self {
            KernelConfig::Cg(_) => "cg",
            KernelConfig::Lu(_) => "lu",
            KernelConfig::Fft(_) => "fft",
            KernelConfig::Stencil(_) => "stencil",
            KernelConfig::Matvec(_) => "matvec",
            KernelConfig::Spmv(_) => "spmv",
            KernelConfig::Gemm(_) => "gemm",
            KernelConfig::Jacobi(_) => "jacobi",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_build_and_name() {
        let cfgs = [
            KernelConfig::Cg(CgConfig::small()),
            KernelConfig::Lu(LuConfig::small()),
            KernelConfig::Fft(FftConfig::small()),
            KernelConfig::Stencil(StencilConfig::small()),
            KernelConfig::Matvec(MatvecConfig::small()),
            KernelConfig::Spmv(SpmvConfig::small()),
            KernelConfig::Gemm(GemmConfig::small()),
            KernelConfig::Jacobi(JacobiConfig::small()),
        ];
        for cfg in cfgs {
            let k = cfg.build();
            assert_eq!(k.name(), cfg.name());
            let g = k.golden();
            assert!(g.n_sites() > 0, "{} produced no sites", k.name());
            assert!(!g.output.is_empty(), "{} produced no output", k.name());
        }
    }

    #[test]
    fn golden_runs_are_deterministic() {
        for cfg in [
            KernelConfig::Cg(CgConfig::small()),
            KernelConfig::Lu(LuConfig::small()),
            KernelConfig::Fft(FftConfig::small()),
        ] {
            let a = cfg.build().golden();
            let b = cfg.build().golden();
            assert_eq!(
                a.values,
                b.values,
                "{} golden not deterministic",
                cfg.name()
            );
            assert_eq!(a.output, b.output);
            assert_eq!(a.branches, b.branches);
        }
    }

    #[test]
    fn estimated_sites_close_to_actual() {
        for cfg in [
            KernelConfig::Cg(CgConfig::small()),
            KernelConfig::Lu(LuConfig::small()),
            KernelConfig::Fft(FftConfig::small()),
            KernelConfig::Stencil(StencilConfig::small()),
        ] {
            let k = cfg.build();
            let est = k.estimated_sites();
            let act = k.golden().n_sites();
            assert!(
                est >= act,
                "{}: estimate {est} below actual {act} (reserve would reallocate)",
                k.name()
            );
            assert!(
                est <= act * 3,
                "{}: estimate {est} wildly above actual {act}",
                k.name()
            );
        }
    }
}
