//! Sparse matrix-vector product (`y = A·x`, CSR).
//!
//! Completes the §5 monotonicity family: "sparse or dense matrix
//! multiplication can be proven to have such a property". An error in
//! `x[k]` perturbs the output by `‖A[:,k]‖₂ · ε` under the L2 norm, with
//! the column now *sparse* — so the propagation constant is exactly
//! computable and small, and corrupting `x[k]` touches only the rows
//! whose stencil references cell `k`.

use crate::csr::Csr;
use crate::inputs::uniform_vec;
use crate::Kernel;
use ftb_trace::{Fnv1a, Precision, StaticRegistry, Tracer};
use serde::{Deserialize, Serialize};

ftb_trace::static_instrs! {
    pub mod sid {
        INIT_A => ("spmv.init.a", Init),
        INIT_X => ("spmv.init.x", Init),
        ROW    => ("spmv.row", Compute),
    }
}

/// Configuration of the sparse matvec kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpmvConfig {
    /// The operator is the 2-D Poisson matrix on a `grid × grid` mesh.
    pub grid: usize,
    /// Element precision.
    pub precision: Precision,
    /// Input seed.
    pub seed: u64,
}

impl SpmvConfig {
    /// Laptop-scale default: 10×10 mesh (100×100 matrix, 460 nnz).
    pub fn small() -> Self {
        SpmvConfig {
            grid: 10,
            precision: Precision::F64,
            seed: 42,
        }
    }
}

/// The instrumented sparse matvec kernel.
#[derive(Debug, Clone)]
pub struct SpmvKernel {
    cfg: SpmvConfig,
    matrix: Csr,
    x: Vec<f64>,
}

impl SpmvKernel {
    /// Build the kernel.
    pub fn new(cfg: SpmvConfig) -> Self {
        let matrix = Csr::poisson_2d(cfg.grid);
        let x = uniform_vec(cfg.seed, matrix.n_cols(), -1.0, 1.0);
        SpmvKernel { cfg, matrix, x }
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &SpmvConfig {
        &self.cfg
    }

    /// Dynamic-instruction index of the `x[k]` init store.
    pub fn x_site(&self, k: usize) -> usize {
        self.matrix.nnz() + k
    }

    /// Closed-form §5 propagation constant for an error in `x[k]` under
    /// the L2 output norm: the sparse column norm `‖A[:,k]‖₂`.
    pub fn l2_constant(&self, k: usize) -> f64 {
        let mut s = 0.0;
        for r in 0..self.matrix.n_rows() {
            for (c, v) in self.matrix.row(r) {
                if c == k {
                    s += v * v;
                }
            }
        }
        s.sqrt()
    }
}

impl Kernel for SpmvKernel {
    fn name(&self) -> &'static str {
        "spmv"
    }

    fn precision(&self) -> Precision {
        self.cfg.precision
    }

    fn registry(&self) -> StaticRegistry {
        sid::registry()
    }

    fn estimated_sites(&self) -> usize {
        self.matrix.nnz() + 2 * self.matrix.n_rows()
    }

    fn code_version(&self, _lo: usize, _hi: usize) -> u64 {
        // the mesh size shapes the sparsity pattern (and thus the
        // instruction stream); the seed only changes input values
        let mut h = Fnv1a::new();
        h.write(b"spmv/csr-poisson/v1");
        h.write_u64(self.cfg.grid as u64);
        h.finish()
    }

    fn run(&self, t: &mut Tracer) -> Vec<f64> {
        let n = self.matrix.n_rows();

        // Hot (injection) path: no def-map bookkeeping.
        if !t.ddg_enabled() {
            // Init: matrix entries, then the input vector.
            let avals: Vec<f64> = self
                .matrix
                .values()
                .iter()
                .map(|&v| t.value(sid::INIT_A, v))
                .collect();
            let mut x = vec![0.0; n];
            for (dst, &src) in x.iter_mut().zip(&self.x) {
                *dst = t.value(sid::INIT_X, src);
            }
            // Compute: one store per output row.
            let mut y = vec![0.0; n];
            self.matrix.spmv_traced(t, sid::ROW, &avals, &x, &mut y);
            return y;
        }

        // Provenance mode: the CSR substrate records the per-entry
        // product secants (`Csr::spmv_with_provenance`); we record the
        // init def sites and sink each output row.
        let mut def_a = Vec::with_capacity(self.matrix.nnz());
        let avals: Vec<f64> = self
            .matrix
            .values()
            .iter()
            .map(|&v| {
                def_a.push(t.cursor());
                t.value(sid::INIT_A, v)
            })
            .collect();
        let mut def_x = vec![0usize; n];
        let mut x = vec![0.0; n];
        for (i, (dst, &src)) in x.iter_mut().zip(&self.x).enumerate() {
            def_x[i] = t.cursor();
            *dst = t.value(sid::INIT_X, src);
        }
        let mut y = vec![0.0; n];
        let defs =
            self.matrix
                .spmv_with_provenance(t, sid::ROW, &avals, &def_a, &x, &def_x, &mut y);
        for d in defs {
            t.out_dep(d, 1.0);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use ftb_trace::norms::Norm;
    use ftb_trace::{injected_error, FaultSpec, RecordMode};

    #[test]
    fn output_matches_untraced_spmv() {
        let k = SpmvKernel::new(SpmvConfig::small());
        let g = k.golden();
        let mut y = vec![0.0; k.matrix.n_rows()];
        k.matrix.spmv(&k.x, &mut y);
        assert_eq!(g.output, y);
    }

    #[test]
    fn closed_form_constant_matches_measurement() {
        let k = SpmvKernel::new(SpmvConfig::small());
        let g = k.golden();
        let col = 37;
        let site = k.x_site(col);
        let bit = 45;
        let r = k.run_injected(FaultSpec { site, bit }, RecordMode::OutputOnly);
        let eps = injected_error(Precision::F64, g.values[site], bit);
        let measured = Norm::L2.distance(&g.output, &r.output);
        let predicted = k.l2_constant(col) * eps;
        assert!(
            (measured - predicted).abs() / predicted < 1e-3,
            "measured {measured} vs closed form {predicted}"
        );
    }

    #[test]
    fn corrupting_x_touches_only_stencil_neighbours() {
        let k = SpmvKernel::new(SpmvConfig::small());
        let g = k.golden();
        let col = 55; // interior cell
        let r = k.run_injected(
            FaultSpec {
                site: k.x_site(col),
                bit: 62,
            },
            RecordMode::OutputOnly,
        );
        let touched: Vec<usize> = g
            .output
            .iter()
            .zip(&r.output)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        // a 5-point interior column touches exactly 5 rows
        assert_eq!(touched.len(), 5, "touched rows {touched:?}");
        assert!(touched.contains(&col));
    }

    #[test]
    fn provenance_mode_matches_plain_golden() {
        let k = SpmvKernel::new(SpmvConfig::small());
        let plain = k.golden();
        let (with_ddg, ddg) = k.golden_with_ddg();
        assert_eq!(plain.values, with_ddg.values);
        assert_eq!(plain.output, with_ddg.output);
        assert!(ddg.is_instrumented());
        assert_eq!(ddg.out_sinks.len(), k.matrix.n_rows());
    }

    #[test]
    fn poisson_column_norm_is_sqrt_20_for_interior() {
        // interior column: diag 4 plus four −1 neighbours => sqrt(16+4)
        let k = SpmvKernel::new(SpmvConfig::small());
        let c = k.l2_constant(55);
        assert!((c - 20.0f64.sqrt()).abs() < 1e-12);
    }
}
