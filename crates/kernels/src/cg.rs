//! Conjugate gradient on a MiniFE-style 2-D Poisson finite-element system.
//!
//! The paper's CG benchmark (from MiniFE) solves a sparse linear system
//! arising from a finite-element discretisation. We use the standard
//! 5-point Poisson operator on a `grid × grid` mesh with a manufactured
//! right-hand side, applied matrix-free (identical arithmetic to a CSR
//! apply of the assembled stencil matrix).
//!
//! The dynamic-instruction layout deliberately mirrors the paper's §4.2
//! description of its Figure 4:
//!
//! 1. the run opens with `x = 0` stores — "the first 80 dynamic
//!    instructions initialize floating point variables to zero", whose
//!    flips are almost all tiny (§4.2's analysis of bit flips on a
//!    32-bit zero);
//! 2. a one-shot setup region (`b`, `r = b`, `p = r`) that later errors
//!    never propagate back into;
//! 3. the iterative compute/reduction region, where errors injected early
//!    propagate through every subsequent iteration.
//!
//! The convergence test goes through [`Tracer::branch`], so a fault that
//! changes the iteration count is detected as control-flow divergence.

use crate::csr::Csr;
use crate::inputs::uniform_vec;
use crate::{BoundaryMonitor, CaptureHook, Kernel, KernelState};
use ftb_trace::{OpKind, Precision, StaticRegistry, Tracer};
use serde::{Deserialize, Serialize};

ftb_trace::static_instrs! {
    pub mod sid {
        INIT_X   => ("cg.init.x=0", Init),
        INIT_MAT => ("cg.init.matrix", Init),
        INIT_B   => ("cg.init.b", Init),
        INIT_R   => ("cg.init.r=b", Init),
        INIT_P   => ("cg.init.p=r", Init),
        DOT_RR0  => ("cg.dot.rr0", Reduction),
        SPMV_Q   => ("cg.spmv.q=Ap", Compute),
        DOT_PQ   => ("cg.dot.pq", Reduction),
        ALPHA    => ("cg.alpha", Compute),
        UPDATE_X => ("cg.update.x", Compute),
        UPDATE_R => ("cg.update.r", Compute),
        DOT_RR   => ("cg.dot.rr", Reduction),
        BETA     => ("cg.beta", Compute),
        UPDATE_P => ("cg.update.p", Compute),
    }
}

/// How the CG kernel represents the Poisson operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CgStorage {
    /// Apply the 5-point stencil directly (no stored matrix data).
    #[default]
    MatrixFree,
    /// Assemble an explicit CSR matrix first (MiniFE semantics): every
    /// stored matrix entry is itself an injectable dynamic instruction,
    /// and a corrupted entry perturbs both the right-hand-side assembly
    /// and every subsequent operator application.
    AssembledCsr,
}

/// Configuration of the CG kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgConfig {
    /// Mesh is `grid × grid`; the system has `grid²` unknowns. The
    /// paper's §4.6 scaling study uses 20×20 and 100×100.
    pub grid: usize,
    /// Relative residual reduction target (‖r‖² ≤ rtol² ‖b‖²).
    pub rtol: f64,
    /// Hard iteration cap (the hang bound for faulty runs).
    pub max_iters: usize,
    /// Element precision. The paper analyses CG with 32-bit floats.
    pub precision: Precision,
    /// Input seed.
    pub seed: u64,
    /// Operator representation.
    #[serde(default)]
    pub storage: CgStorage,
}

impl CgConfig {
    /// A laptop-scale default: 8×8 mesh (64 unknowns), f32 elements.
    pub fn small() -> Self {
        CgConfig {
            grid: 8,
            rtol: 1e-4,
            max_iters: 200,
            precision: Precision::F32,
            seed: 42,
            storage: CgStorage::MatrixFree,
        }
    }

    /// The paper-proportioned sizes of §4.6.
    pub fn paper_scaling(grid: usize) -> Self {
        CgConfig {
            grid,
            rtol: 1e-4,
            max_iters: 4 * grid * grid,
            precision: Precision::F32,
            seed: 42,
            storage: CgStorage::MatrixFree,
        }
    }
}

/// The instrumented CG kernel. Immutable after construction; safe to run
/// from many campaign threads concurrently.
#[derive(Debug, Clone)]
pub struct CgKernel {
    cfg: CgConfig,
    /// Manufactured solution used to build the right-hand side.
    x_true: Vec<f64>,
    /// Assembled operator (only in [`CgStorage::AssembledCsr`] mode).
    matrix: Option<Csr>,
    sites_hint: usize,
    branches_hint: usize,
}

impl CgKernel {
    /// Build the kernel, generating its input from `cfg.seed` and running
    /// one untraced dry run to size the trace buffers exactly.
    pub fn new(cfg: CgConfig) -> Self {
        let n = cfg.grid * cfg.grid;
        let x_true = uniform_vec(cfg.seed, n, -1.0, 1.0);
        let matrix = match cfg.storage {
            CgStorage::MatrixFree => None,
            CgStorage::AssembledCsr => Some(Csr::poisson_2d(cfg.grid)),
        };
        let mut k = CgKernel {
            cfg,
            x_true,
            matrix,
            sites_hint: 0,
            branches_hint: 0,
        };
        let mut t = Tracer::untraced(k.cfg.precision);
        let _ = k.run(&mut t);
        k.sites_hint = t.cursor();
        k.branches_hint = t.branch_count();
        k
    }

    /// Number of unknowns (`grid²`).
    pub fn n_unknowns(&self) -> usize {
        self.cfg.grid * self.cfg.grid
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &CgConfig {
        &self.cfg
    }

    /// Apply the 5-point Poisson operator: `q = A v`, tracing each store
    /// of `q`. Dirichlet boundary: off-grid neighbours are zero. In
    /// provenance mode `defs = (def_v, def_q)` supplies the def sites of
    /// `v`'s elements and receives the def sites of `q`'s stores.
    fn apply_poisson(
        &self,
        t: &mut Tracer,
        v: &[f64],
        q: &mut [f64],
        mut defs: Option<(&[usize], &mut [usize])>,
    ) {
        let g = self.cfg.grid;
        for i in 0..g {
            for j in 0..g {
                let idx = i * g + j;
                if let Some((dv, dq)) = defs.as_mut() {
                    // q_idx = 4 v_idx − Σ v_neighbour
                    t.dep(dv[idx], OpKind::Scale(4.0));
                    if i > 0 {
                        t.dep(dv[idx - g], OpKind::Linear);
                    }
                    if i + 1 < g {
                        t.dep(dv[idx + g], OpKind::Linear);
                    }
                    if j > 0 {
                        t.dep(dv[idx - 1], OpKind::Linear);
                    }
                    if j + 1 < g {
                        t.dep(dv[idx + 1], OpKind::Linear);
                    }
                    dq[idx] = t.cursor();
                }
                let mut s = 4.0 * v[idx];
                if i > 0 {
                    s -= v[idx - g];
                }
                if i + 1 < g {
                    s -= v[idx + g];
                }
                if j > 0 {
                    s -= v[idx - 1];
                }
                if j + 1 < g {
                    s -= v[idx + 1];
                }
                q[idx] = t.value(sid::SPMV_Q, s);
            }
        }
    }

    /// The matrix-free setup region (the non-provenance prefix of a
    /// [`CgStorage::MatrixFree`] run): `x = 0`, `b` from the manufactured
    /// solution, `r = b`, `p = r`, `rr = ⟨r, r⟩`.
    fn setup_plain(&self, t: &mut Tracer) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, f64) {
        let n = self.n_unknowns();
        let g = self.cfg.grid;
        let mut x = vec![0.0; n];
        for xi in x.iter_mut() {
            *xi = t.value(sid::INIT_X, 0.0);
        }
        let mut b = vec![0.0; n];
        for i in 0..g {
            for j in 0..g {
                let idx = i * g + j;
                let v = &self.x_true;
                let mut s = 4.0 * v[idx];
                if i > 0 {
                    s -= v[idx - g];
                }
                if i + 1 < g {
                    s -= v[idx + g];
                }
                if j > 0 {
                    s -= v[idx - 1];
                }
                if j + 1 < g {
                    s -= v[idx + 1];
                }
                b[idx] = t.value(sid::INIT_B, s);
            }
        }
        let mut r = vec![0.0; n];
        for i in 0..n {
            r[i] = t.value(sid::INIT_R, b[i]);
        }
        let mut p = vec![0.0; n];
        for i in 0..n {
            p[i] = t.value(sid::INIT_P, r[i]);
        }
        let rr = t.value(sid::DOT_RR0, dot(&r, &r));
        (x, b, r, p, rr)
    }

    /// The CG iterations from `start_it` onward, shared by the plain,
    /// snapshotting and resumed matrix-free paths. `tol2` is recomputed
    /// from the traced `b`, so a resumed run reproduces the convergence
    /// test bit-for-bit. `boundary(cursor, branch_count, it, x, r, p,
    /// rr)` fires at the bottom of every completed iteration; returning
    /// `true` stops the loop early.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn solve_loop(
        &self,
        t: &mut Tracer,
        x: &mut [f64],
        r: &mut [f64],
        p: &mut [f64],
        b: &[f64],
        rr0: f64,
        start_it: usize,
        boundary: &mut dyn FnMut(usize, usize, usize, &[f64], &[f64], &[f64], f64) -> bool,
    ) {
        let n = self.n_unknowns();
        let bb: f64 = dot(b, b);
        let tol2 = self.cfg.rtol * self.cfg.rtol * bb;
        let mut q = vec![0.0; n];
        let mut rr = rr0;
        let mut it = start_it;
        loop {
            if !t.branch(it < self.cfg.max_iters && rr > tol2) {
                break;
            }
            self.apply_poisson(t, p, &mut q, None);
            let pq = t.value(sid::DOT_PQ, dot(p, &q));
            let alpha = t.value(sid::ALPHA, rr / pq);
            for i in 0..n {
                x[i] = t.value(sid::UPDATE_X, x[i] + alpha * p[i]);
            }
            for i in 0..n {
                r[i] = t.value(sid::UPDATE_R, r[i] - alpha * q[i]);
            }
            let rr_new = t.value(sid::DOT_RR, dot(r, r));
            let beta = t.value(sid::BETA, rr_new / rr);
            for i in 0..n {
                p[i] = t.value(sid::UPDATE_P, r[i] + beta * p[i]);
            }
            rr = rr_new;
            it += 1;
            // NaN-exception model, as in the main body
            if t.trapped() {
                break;
            }
            if boundary(t.cursor(), t.branch_count(), it, x, r, p, rr) {
                break;
            }
        }
    }
}

impl Kernel for CgKernel {
    fn name(&self) -> &'static str {
        "cg"
    }

    fn precision(&self) -> Precision {
        self.cfg.precision
    }

    fn registry(&self) -> StaticRegistry {
        sid::registry()
    }

    fn estimated_sites(&self) -> usize {
        self.sites_hint
    }

    fn estimated_branches(&self) -> usize {
        self.branches_hint
    }

    fn snapshot_capable(&self) -> bool {
        // AssembledCsr keeps its traced operator entries live across the
        // whole loop; snapshotting it would have to carry the full matrix
        // in every state. Matrix-free is the paper-scale configuration.
        self.matrix.is_none()
    }

    fn run_snapshotting(&self, t: &mut Tracer, capture: CaptureHook<'_>) -> Vec<f64> {
        assert!(self.matrix.is_none(), "snapshotting needs matrix-free CG");
        let (mut x, b, mut r, mut p, rr) = self.setup_plain(t);
        let rr_arr = [rr];
        capture(t.cursor(), t.branch_count(), 0, &[&x, &r, &p, &b, &rr_arr]);
        self.solve_loop(
            t,
            &mut x,
            &mut r,
            &mut p,
            &b,
            rr,
            0,
            &mut |cursor, bc, it, x, r, p, rr| {
                let rr_arr = [rr];
                capture(cursor, bc, it as u64, &[x, r, p, &b, &rr_arr]);
                false
            },
        );
        x
    }

    fn run_resumed(
        &self,
        t: &mut Tracer,
        state: &KernelState,
        monitor: BoundaryMonitor<'_>,
    ) -> Vec<f64> {
        assert!(self.matrix.is_none(), "resume needs matrix-free CG");
        assert_eq!(state.arrays.len(), 5, "cg state is [x, r, p, b, [rr]]");
        let mut x = state.arrays[0].clone();
        let mut r = state.arrays[1].clone();
        let mut p = state.arrays[2].clone();
        let b = state.arrays[3].clone();
        let rr = state.arrays[4][0];
        self.solve_loop(
            t,
            &mut x,
            &mut r,
            &mut p,
            &b,
            rr,
            state.step as usize,
            &mut |cursor, _bc, it, x, r, p, rr| {
                let rr_arr = [rr];
                monitor(cursor, it as u64, &[x, r, p, &b, &rr_arr])
            },
        );
        x
    }

    fn run(&self, t: &mut Tracer) -> Vec<f64> {
        // The hot (injection) path of the matrix-free configuration goes
        // through the shared setup + solve loop; provenance recording and
        // the assembled-CSR variant keep the annotated body below.
        if self.matrix.is_none() && !t.ddg_enabled() {
            let (mut x, b, mut r, mut p, rr) = self.setup_plain(t);
            self.solve_loop(
                t,
                &mut x,
                &mut r,
                &mut p,
                &b,
                rr,
                0,
                &mut |_, _, _, _, _, _, _| false,
            );
            return x;
        }
        let n = self.n_unknowns();
        let g = self.cfg.grid;

        // Provenance is implemented for the matrix-free operator only;
        // an AssembledCsr run in DDG mode yields an uninstrumented graph,
        // which the static analyzer rejects explicitly.
        let ddg = t.ddg_enabled() && self.matrix.is_none();
        let mut def_x = vec![0usize; if ddg { n } else { 0 }];
        let mut def_b = def_x.clone();
        let mut def_r = def_x.clone();
        let mut def_p = def_x.clone();
        let mut def_q = def_x.clone();
        let mut def_rr = usize::MAX;

        // Region 1: zero-initialise the solution vector.
        let mut x = vec![0.0; n];
        for (i, xi) in x.iter_mut().enumerate() {
            if ddg {
                def_x[i] = t.cursor();
            }
            *xi = t.value(sid::INIT_X, 0.0);
        }

        // Region 1b (AssembledCsr only): matrix assembly — every stored
        // entry is a dynamic instruction (MiniFE semantics).
        let avals: Option<Vec<f64>> = self.matrix.as_ref().map(|m| {
            m.values()
                .iter()
                .map(|&v| t.value(sid::INIT_MAT, v))
                .collect()
        });

        // Region 2: one-shot setup. b = A x_true (manufactured), r = b,
        // p = r. Errors injected later in the run never propagate back
        // into these dynamic instructions.
        let mut b = vec![0.0; n];
        if let Some(m) = &self.matrix {
            // the right-hand side comes from the source term, not from the
            // stored operator entries (so a corrupted matrix entry leads
            // to an inconsistent system, as in a real FE code where b is
            // integrated independently): compute from pristine values,
            // trace only the stores
            let mut tmp = vec![0.0; n];
            m.spmv(&self.x_true, &mut tmp);
            for (dst, &src) in b.iter_mut().zip(&tmp) {
                *dst = t.value(sid::INIT_B, src);
            }
        } else {
            for i in 0..g {
                for j in 0..g {
                    let idx = i * g + j;
                    let v = &self.x_true;
                    let mut s = 4.0 * v[idx];
                    if i > 0 {
                        s -= v[idx - g];
                    }
                    if i + 1 < g {
                        s -= v[idx + g];
                    }
                    if j > 0 {
                        s -= v[idx - 1];
                    }
                    if j + 1 < g {
                        s -= v[idx + 1];
                    }
                    if ddg {
                        def_b[idx] = t.cursor();
                    }
                    b[idx] = t.value(sid::INIT_B, s);
                }
            }
        }
        let mut r = vec![0.0; n];
        for i in 0..n {
            if ddg {
                t.dep(def_b[i], OpKind::Linear);
                def_r[i] = t.cursor();
            }
            r[i] = t.value(sid::INIT_R, b[i]);
        }
        let mut p = vec![0.0; n];
        for i in 0..n {
            if ddg {
                t.dep(def_r[i], OpKind::Linear);
                def_p[i] = t.cursor();
            }
            p[i] = t.value(sid::INIT_P, r[i]);
        }
        if ddg {
            for i in 0..n {
                t.dep(def_r[i], OpKind::Square(r[i]));
            }
            def_rr = t.cursor();
        }
        let mut rr = t.value(sid::DOT_RR0, dot(&r, &r));

        let bb: f64 = dot(&b, &b);
        let tol2 = self.cfg.rtol * self.cfg.rtol * bb;

        // Region 3: the iterative solve.
        let mut q = vec![0.0; n];
        let mut it = 0;
        loop {
            if ddg {
                // Convergence test `rr > tol2`: the condition value
                // depends on the latest rr (amp 1) and — through
                // tol2 = rtol²·Σ b_i² — on every b element. The margin is
                // how far the golden condition sits from flipping.
                let margin = (rr - tol2).abs();
                t.branch_dep(def_rr, 1.0, margin);
                let rtol2 = self.cfg.rtol * self.cfg.rtol;
                for i in 0..n {
                    let (amp, cap) = OpKind::Square(b[i]).amplification();
                    t.branch_dep(def_b[i], rtol2 * amp, margin);
                    t.dep_cap(def_b[i], cap);
                }
            }
            if !t.branch(it < self.cfg.max_iters && rr > tol2) {
                break;
            }
            if let (Some(m), Some(av)) = (&self.matrix, &avals) {
                m.spmv_traced(t, sid::SPMV_Q, av, &p, &mut q);
            } else {
                self.apply_poisson(
                    t,
                    &p,
                    &mut q,
                    if ddg {
                        Some((def_p.as_slice(), def_q.as_mut_slice()))
                    } else {
                        None
                    },
                );
            }
            let def_pq = if ddg {
                // pq = Σ p_i q_i: bilinear, |∂/∂p_i| = |q_i| and vice
                // versa (cross terms of a propagated perturbation are the
                // documented soundness caveat)
                for i in 0..n {
                    t.dep(def_p[i], OpKind::Scale(q[i]));
                    t.dep(def_q[i], OpKind::Scale(p[i]));
                }
                t.cursor()
            } else {
                usize::MAX
            };
            let pq = t.value(sid::DOT_PQ, dot(&p, &q));
            let def_alpha = if ddg {
                t.dep(def_rr, OpKind::DivNum(pq));
                t.dep(def_pq, OpKind::DivDen { num: rr, den: pq });
                t.cursor()
            } else {
                usize::MAX
            };
            let alpha = t.value(sid::ALPHA, rr / pq);
            for i in 0..n {
                if ddg {
                    t.dep(def_x[i], OpKind::Linear);
                    t.dep(def_alpha, OpKind::Scale(p[i]));
                    t.dep(def_p[i], OpKind::Scale(alpha));
                    def_x[i] = t.cursor();
                }
                x[i] = t.value(sid::UPDATE_X, x[i] + alpha * p[i]);
            }
            for i in 0..n {
                if ddg {
                    t.dep(def_r[i], OpKind::Linear);
                    t.dep(def_alpha, OpKind::Scale(q[i]));
                    t.dep(def_q[i], OpKind::Scale(alpha));
                    def_r[i] = t.cursor();
                }
                r[i] = t.value(sid::UPDATE_R, r[i] - alpha * q[i]);
            }
            let def_rr_new = if ddg {
                for i in 0..n {
                    t.dep(def_r[i], OpKind::Square(r[i]));
                }
                t.cursor()
            } else {
                usize::MAX
            };
            let rr_new = t.value(sid::DOT_RR, dot(&r, &r));
            let def_beta = if ddg {
                t.dep(def_rr_new, OpKind::DivNum(rr));
                t.dep(
                    def_rr,
                    OpKind::DivDen {
                        num: rr_new,
                        den: rr,
                    },
                );
                t.cursor()
            } else {
                usize::MAX
            };
            let beta = t.value(sid::BETA, rr_new / rr);
            for i in 0..n {
                if ddg {
                    t.dep(def_r[i], OpKind::Linear);
                    t.dep(def_beta, OpKind::Scale(p[i]));
                    t.dep(def_p[i], OpKind::Scale(beta));
                    def_p[i] = t.cursor();
                }
                p[i] = t.value(sid::UPDATE_P, r[i] + beta * p[i]);
            }
            rr = rr_new;
            if ddg {
                def_rr = def_rr_new;
            }
            it += 1;
            // NaN-exception model: the program dies at the trap rather
            // than iterating on poisoned data.
            if t.trapped() {
                break;
            }
        }

        if ddg {
            for &d in &def_x {
                t.out_dep(d, 1.0);
            }
        }
        x
    }
}

/// Untraced dot product (its *result* is traced by the caller; the paper's
/// fault model corrupts stored data elements, and the partial sums live in
/// registers).
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use ftb_trace::norms::Norm;
    use ftb_trace::{FaultSpec, RecordMode};

    #[test]
    fn golden_solves_the_system() {
        let k = CgKernel::new(CgConfig::small());
        let g = k.golden();
        // the solution approximates the manufactured x_true
        let err = Norm::LInf.distance(&g.output, &k.x_true);
        assert!(err < 2e-3, "CG did not converge: L∞ error {err}");
    }

    #[test]
    fn converges_before_iteration_cap() {
        let k = CgKernel::new(CgConfig::small());
        let g = k.golden();
        // branch events = iterations + final false test; far below cap
        assert!(g.branches.len() < CgConfig::small().max_iters);
        assert!(g.branches.len() > 3, "suspiciously few iterations");
    }

    #[test]
    fn site_layout_starts_with_zero_init() {
        let k = CgKernel::new(CgConfig::small());
        let g = k.golden();
        let n = k.n_unknowns();
        for i in 0..n {
            assert_eq!(g.values[i], 0.0, "x init site {i} not zero");
            assert_eq!(g.static_id(i), sid::INIT_X);
        }
        assert_eq!(g.static_id(n), sid::INIT_B);
    }

    #[test]
    fn f32_precision_quantizes_all_sites() {
        let k = CgKernel::new(CgConfig::small());
        let g = k.golden();
        for (i, &v) in g.values.iter().enumerate() {
            assert_eq!(v, v as f32 as f64, "site {i} not an f32 value");
        }
    }

    #[test]
    fn low_mantissa_flip_late_in_run_is_masked() {
        let k = CgKernel::new(CgConfig::small());
        let g = k.golden();
        // flip the lowest mantissa bit of one of the last x updates
        let site = g.n_sites() - 2;
        let r = k.run_injected(FaultSpec { site, bit: 0 }, RecordMode::OutputOnly);
        let d = Norm::LInf.distance(&g.output, &r.output);
        assert!(
            d < 1e-5,
            "tiny late flip should be inconsequential, got {d}"
        );
    }

    #[test]
    fn sign_flip_of_rhs_is_not_masked() {
        let k = CgKernel::new(CgConfig::small());
        let g = k.golden();
        let n = k.n_unknowns();
        // find a b-init site with non-trivial magnitude and flip its sign
        let site = (n..2 * n)
            .max_by(|&a, &b| g.values[a].abs().partial_cmp(&g.values[b].abs()).unwrap())
            .unwrap();
        let r = k.run_injected(FaultSpec { site, bit: 31 }, RecordMode::OutputOnly);
        let d = Norm::LInf.distance(&g.output, &r.output);
        assert!(
            d > 1e-2,
            "sign flip of b should corrupt the solution, got {d}"
        );
    }

    #[test]
    fn faulty_iteration_count_shows_as_branch_divergence() {
        let k = CgKernel::new(CgConfig::small());
        let g = k.golden();
        let n = k.n_unknowns();
        // corrupt an early residual-ish site hard: sign flip of r init
        let r = k.run_injected(
            FaultSpec {
                site: 2 * n + 3,
                bit: 31,
            },
            RecordMode::Full,
        );
        let p = ftb_trace::propagation(&g, &r);
        // either control flow diverged or the run still compared fully —
        // but a sign flip of r definitely perturbs later instructions
        assert!(p.errors.iter().any(|&e| e > 0.0));
    }

    #[test]
    fn dry_run_hints_match_golden_exactly() {
        let k = CgKernel::new(CgConfig::small());
        let g = k.golden();
        assert_eq!(k.estimated_sites(), g.n_sites());
        assert_eq!(k.estimated_branches(), g.branches.len());
    }

    #[test]
    fn assembled_csr_solves_like_matrix_free() {
        let free = CgKernel::new(CgConfig::small());
        let csr = CgKernel::new(CgConfig {
            storage: CgStorage::AssembledCsr,
            ..CgConfig::small()
        });
        let gf = free.golden();
        let gc = csr.golden();
        // identical arithmetic, identical solution (both f32-quantised)
        let err = Norm::LInf.distance(&gf.output, &gc.output);
        assert!(err < 1e-5, "storage modes disagree by {err}");
        // but the CSR run has nnz extra injectable sites
        assert!(
            gc.n_sites() > gf.n_sites(),
            "assembled mode should expose matrix-entry sites"
        );
    }

    #[test]
    fn corrupting_a_matrix_entry_perturbs_the_solution() {
        let k = CgKernel::new(CgConfig {
            storage: CgStorage::AssembledCsr,
            ..CgConfig::small()
        });
        let g = k.golden();
        let n = k.n_unknowns();
        // matrix sites follow the n zero-init sites; sign-flip a diagonal
        // entry (value 4.0 -> -4.0): the operator changes, so the solve
        // lands somewhere else entirely
        let site = (n..g.n_sites())
            .find(|&s| g.static_id(s) == sid::INIT_MAT && g.values[s] == 4.0)
            .expect("no diagonal matrix site found");
        let r = k.run_injected(FaultSpec { site, bit: 31 }, RecordMode::OutputOnly);
        let d = Norm::LInf.distance(&g.output, &r.output);
        assert!(d > 1e-3, "matrix corruption should show, got {d}");
    }

    #[test]
    fn scaling_config_grows_sites() {
        let small = CgKernel::new(CgConfig {
            grid: 6,
            ..CgConfig::small()
        });
        let large = CgKernel::new(CgConfig {
            grid: 12,
            ..CgConfig::small()
        });
        assert!(large.estimated_sites() > 3 * small.estimated_sites());
    }
}
