//! Dense matrix-vector product.
//!
//! The second §5 monotonicity example: one output element of `y = A·x` is
//! `Σ_j a_{ij} x_j`, so an error `ε` in `x_k` produces output error
//! `f(ε) = sqrt(Σ_i a_{ik}²) · ε` under the L2 norm — linear in `ε`.
//! The `monotonicity` bench verifies the measured constant against that
//! closed form.

use crate::inputs::uniform_vec;
use crate::Kernel;
use ftb_trace::{Fnv1a, OpKind, Precision, StaticRegistry, Tracer};
use serde::{Deserialize, Serialize};

ftb_trace::static_instrs! {
    pub mod sid {
        INIT_A => ("matvec.init.a", Init),
        INIT_X => ("matvec.init.x", Init),
        ROW    => ("matvec.row", Compute),
    }
}

/// Configuration of the matvec kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatvecConfig {
    /// Matrix dimension (`n × n`).
    pub n: usize,
    /// Element precision.
    pub precision: Precision,
    /// Input seed.
    pub seed: u64,
}

impl MatvecConfig {
    /// Laptop-scale default: 24×24.
    pub fn small() -> Self {
        MatvecConfig {
            n: 24,
            precision: Precision::F64,
            seed: 42,
        }
    }
}

/// The instrumented matvec kernel.
#[derive(Debug, Clone)]
pub struct MatvecKernel {
    cfg: MatvecConfig,
    a: Vec<f64>,
    x: Vec<f64>,
}

impl MatvecKernel {
    /// Build the kernel with random `A` and `x`.
    pub fn new(cfg: MatvecConfig) -> Self {
        let a = uniform_vec(cfg.seed, cfg.n * cfg.n, -1.0, 1.0);
        let x = uniform_vec(cfg.seed.wrapping_add(1), cfg.n, -1.0, 1.0);
        MatvecKernel { cfg, a, x }
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &MatvecConfig {
        &self.cfg
    }

    /// Dynamic-instruction index of the `x[k]` init store (for targeted
    /// monotonicity experiments).
    pub fn x_site(&self, k: usize) -> usize {
        self.cfg.n * self.cfg.n + k
    }

    /// The closed-form §5 propagation constant for an error in `x[k]`
    /// under the L2 output norm: `sqrt(Σ_i a_{ik}²)`.
    pub fn l2_constant(&self, k: usize) -> f64 {
        let n = self.cfg.n;
        (0..n)
            .map(|i| self.a[i * n + k] * self.a[i * n + k])
            .sum::<f64>()
            .sqrt()
    }
}

impl Kernel for MatvecKernel {
    fn name(&self) -> &'static str {
        "matvec"
    }

    fn precision(&self) -> Precision {
        self.cfg.precision
    }

    fn registry(&self) -> StaticRegistry {
        sid::registry()
    }

    fn estimated_sites(&self) -> usize {
        self.cfg.n * self.cfg.n + 2 * self.cfg.n
    }

    fn code_version(&self, _lo: usize, _hi: usize) -> u64 {
        let mut h = Fnv1a::new();
        h.write(b"matvec/dense/v1");
        h.write_u64(self.cfg.n as u64);
        h.finish()
    }

    fn run(&self, t: &mut Tracer) -> Vec<f64> {
        let n = self.cfg.n;

        // Hot (injection) path: no def-map bookkeeping.
        if !t.ddg_enabled() {
            let mut a = vec![0.0; n * n];
            for (dst, &src) in a.iter_mut().zip(&self.a) {
                *dst = t.value(sid::INIT_A, src);
            }
            let mut x = vec![0.0; n];
            for (dst, &src) in x.iter_mut().zip(&self.x) {
                *dst = t.value(sid::INIT_X, src);
            }
            let mut y = vec![0.0; n];
            for i in 0..n {
                let mut s = 0.0;
                for j in 0..n {
                    s += a[i * n + j] * x[j];
                }
                y[i] = t.value(sid::ROW, s);
            }
            return y;
        }

        // Provenance mode: y_i = Σ_j a_ij x_j, so |∂y_i/∂a_ij| = |x_j|
        // and |∂y_i/∂x_j| = |a_ij| — exact for one perturbed operand.
        let mut def_a = vec![0usize; n * n];
        let mut a = vec![0.0; n * n];
        for (i, (dst, &src)) in a.iter_mut().zip(&self.a).enumerate() {
            def_a[i] = t.cursor();
            *dst = t.value(sid::INIT_A, src);
        }
        let mut def_x = vec![0usize; n];
        let mut x = vec![0.0; n];
        for (i, (dst, &src)) in x.iter_mut().zip(&self.x).enumerate() {
            def_x[i] = t.cursor();
            *dst = t.value(sid::INIT_X, src);
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                t.dep(def_a[i * n + j], OpKind::Scale(x[j]));
                t.dep(def_x[j], OpKind::Scale(a[i * n + j]));
                s += a[i * n + j] * x[j];
            }
            let def = t.cursor();
            y[i] = t.value(sid::ROW, s);
            t.out_dep(def, 1.0);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use ftb_trace::norms::Norm;
    use ftb_trace::{FaultSpec, RecordMode};

    #[test]
    fn output_matches_direct_product() {
        let k = MatvecKernel::new(MatvecConfig::small());
        let g = k.golden();
        let n = k.config().n;
        for i in 0..n {
            let expect: f64 = (0..n).map(|j| k.a[i * n + j] * k.x[j]).sum();
            assert!((g.output[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn x_site_indexing() {
        let k = MatvecKernel::new(MatvecConfig::small());
        let g = k.golden();
        for j in [0, 5, k.config().n - 1] {
            assert_eq!(g.static_id(k.x_site(j)), sid::INIT_X);
            assert!((g.values[k.x_site(j)] - k.x[j]).abs() < 1e-15);
        }
    }

    #[test]
    fn closed_form_constant_matches_measurement() {
        // the heart of the §5 argument: measured f(ε)/ε equals the column
        // norm sqrt(Σ a_{ik}²)
        let k = MatvecKernel::new(MatvecConfig::small());
        let g = k.golden();
        let col = 3;
        let site = k.x_site(col);
        let bit = 45; // a mid-mantissa flip: clearly nonzero, clearly finite
        let r = k.run_injected(FaultSpec { site, bit }, RecordMode::OutputOnly);
        let measured = Norm::L2.distance(&g.output, &r.output);
        let eps = ftb_trace::injected_error(Precision::F64, g.values[site], bit);
        let predicted = k.l2_constant(col) * eps;
        assert!(
            (measured - predicted).abs() / predicted < 1e-3,
            "measured {measured} vs closed form {predicted}"
        );
    }

    #[test]
    fn estimated_sites_is_exact() {
        let k = MatvecKernel::new(MatvecConfig::small());
        assert_eq!(k.estimated_sites(), k.golden().n_sites());
    }

    #[test]
    fn provenance_mode_matches_plain_golden() {
        let k = MatvecKernel::new(MatvecConfig::small());
        let plain = k.golden();
        let (with_ddg, ddg) = k.golden_with_ddg();
        assert_eq!(plain.values, with_ddg.values);
        assert_eq!(plain.output, with_ddg.output);
        assert!(ddg.is_instrumented());
        assert_eq!(ddg.out_sinks.len(), k.config().n);
    }
}
