//! # ftb-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (see `src/bin/`), built on a shared benchmark suite defined
//! here, plus Criterion performance benches (see `benches/`).
//!
//! | Artifact  | Binary              | Paper content |
//! |-----------|---------------------|---------------|
//! | Table 1   | `table1`            | golden vs boundary-approximated SDC ratio (exhaustive) |
//! | Figure 3  | `figure3`           | ΔSDC histograms of the exhaustive boundary |
//! | Figure 4  | `figure4`           | per-group true/predicted SDC + potential impact + adaptive row |
//! | Table 2   | `table2`            | precision/recall/uncertainty at 1% sampling, 10 trials |
//! | Figure 5  | `figure5`           | precision/recall vs sample size, filter on/off |
//! | Table 3   | `table3`            | adaptive sampling size + predicted SDC, 10 trials |
//! | Table 4   | `table4`            | CG scaling study (two grid sizes, 1000 samples) |
//! | Figure 1  | `figure1`           | coverage: Monte-Carlo campaign vs boundary |
//! | Figure 2  | `figure2`           | one masked experiment's propagation curve |
//! | §5        | `monotonicity`      | stencil/matvec error-growth linearity |
//! | §5        | `bench_suite`       | extraction-path throughput (`BENCH_ppopp21.json`) |
//! | CI        | `bench_ratchet`     | fresh-vs-committed perf delta gate |
//! |           | `calibrate`         | tolerance/size calibration helper |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod perf;
pub mod ratchet;
pub mod suite;

pub use cache::{exhaustive_cached, sampled_truth_cached};
pub use perf::{merge_tier, perf_suite, run_suite, PerfReport, BENCH_SCHEMA};
pub use ratchet::{compare, extract_metrics, markdown_table, MetricDelta};
pub use suite::{paper_suite, Benchmark, Scale};
