//! Reproducible extraction-path performance suite (`bench_suite` binary).
//!
//! Measures the three propagation-extraction paths — buffered, lockstep
//! and streamed — against each other on exhaustive and adaptive
//! campaigns at pinned seeds and sizes, and emits a machine-readable
//! report (`BENCH_ppopp21.json`) so every PR has a throughput
//! trajectory to answer to. The full tier runs Jacobi, GEMM and CG (the
//! paper's scale on Jacobi); the quick tier covers every
//! provenance-instrumented kernel — jacobi, gemm, cg, lu, fft, stencil,
//! matvec, spmv — and additionally records each workload's
//! serial-vs-parallel outcome-distribution delta (per-site
//! total-variation distance under 1- and 8-thread pools, gated at
//! exactly zero). The suite also *asserts* that all paths agree on the
//! exhaustive outcome table: a performance number from a path that
//! disagrees with the reference is meaningless.
//!
//! The full tier's Jacobi workload runs at paper scale (~10M dynamic
//! instructions per execution): that is where the paths separate, because
//! the buffered extractor's per-experiment working set (full faulty
//! trace + golden trace + dense error vector, ~25–35 bytes/site) falls
//! out of cache while the streamed path re-reads only the shared compact
//! golden (~5 bytes/site) and retains nothing per experiment. At
//! cache-resident sizes all paths time within noise of each other — the
//! difference the paper's §5 memory-overhead argument predicts is a
//! *footprint* difference, and it becomes a wall-clock difference only
//! past the cache cliff.
//!
//! Per-experiment cost at paper scale makes a full exhaustive table
//! (sites × bits ≈ 300M runs) infeasible on one machine, so every path
//! runs the same site-strided subsample of the exhaustive table
//! (`site_stride`, full bit coverage at each kept site); throughput is
//! experiments-per-second over the experiments actually run. Lockstep
//! spawns two threads and a channel hand-off per experiment and is far
//! slower, so it runs a sparser subsample (`lockstep_stride`, a multiple
//! of `site_stride` so its agreement check overlaps the reference).

use ftb_core::prelude::*;
use ftb_inject::{ExhaustiveResult, ExtractionMode, DEFAULT_MAX_SNAPSHOTS};
use ftb_kernels::{
    CgConfig, CgStorage, FftConfig, GemmConfig, JacobiConfig, Kernel, KernelConfig, LuConfig,
    MatvecConfig, SpmvConfig, StencilConfig, SweepTweak,
};
use ftb_trace::{CompactGolden, Precision};
use serde::Serialize;
use std::time::Instant;

/// Schema tag of the committed benchmark file. The v5 format is a
/// two-tier document — `{ schema, tiers: { quick, full } }` — so the
/// CI smoke run and the paper-scale run ratchet against the same file
/// without clobbering each other's numbers. v6 extends the quick tier
/// to every provenance-instrumented kernel (lu, fft, spmv, stencil,
/// matvec join jacobi, gemm, cg) and adds the serial-vs-parallel
/// `tvd` stanza with its `tvd_ok` reproducibility gate.
pub const BENCH_SCHEMA: &str = "ftb-bench/extraction-v6";

/// Merge one tier's report into the committed benchmark document,
/// preserving whatever the other tier last recorded. `prev` is the
/// parsed existing file, if any; documents with a different schema tag
/// are discarded rather than migrated.
pub fn merge_tier(prev: Option<serde_json::Value>, report: &PerfReport) -> serde_json::Value {
    use serde_json::Value;
    let mut doc = prev
        .filter(|v| v.get("schema").and_then(Value::as_str) == Some(BENCH_SCHEMA))
        .unwrap_or_else(|| {
            Value::Object(vec![
                ("schema".into(), Value::String(BENCH_SCHEMA.into())),
                ("tiers".into(), Value::Object(Vec::new())),
            ])
        });
    let tier = if report.quick { "quick" } else { "full" };
    let rendered = serde_json::to_value(report).expect("report serialises");
    let obj = doc
        .as_object_mut()
        .expect("schema-tagged document is an object");
    if !obj.iter().any(|(k, _)| k == "tiers") {
        obj.push(("tiers".into(), Value::Object(Vec::new())));
    }
    let tiers = obj
        .iter_mut()
        .find(|(k, _)| k == "tiers")
        .map(|(_, v)| v)
        .expect("just ensured");
    match tiers.as_object_mut() {
        Some(entries) => match entries.iter_mut().find(|(k, _)| k == tier) {
            Some(e) => e.1 = rendered,
            None => entries.push((tier.to_string(), rendered)),
        },
        None => *tiers = Value::Object(vec![(tier.to_string(), rendered)]),
    }
    doc
}

/// Zero-injection static-analysis numbers for one workload: wall time of
/// the two analysis stages plus agreement with injection ground truth
/// (the §3.6 metrics over an exhaustive campaign at the stanza's own
/// pinned config).
#[derive(Debug, Clone, Serialize)]
pub struct StaticBoundStats {
    /// Config the static stanza ran at. May be smaller than the perf
    /// config: validation needs exhaustive ground truth, which is
    /// infeasible at the paper-scale Jacobi size.
    pub config: KernelConfig,
    /// Classifier tolerance used for the bound and its validation.
    pub tolerance: f64,
    /// Fault sites at the stanza config.
    pub n_sites: usize,
    /// Recorded dependence edges.
    pub n_edges: usize,
    /// Sites with a finite analytical threshold.
    pub n_constrained: usize,
    /// Wall seconds for the golden run with DDG recording on.
    pub record_secs: f64,
    /// Wall seconds for the backward pass.
    pub backward_secs: f64,
    /// Precision of the static boundary against exhaustive truth.
    pub precision: f64,
    /// Recall of the static boundary against exhaustive truth.
    pub recall: f64,
    /// The §3.6 sampled self-verification.
    pub uncertainty: f64,
    /// Fraction of SDC-bearing sites bounded below their first SDC error.
    pub conservative_fraction: f64,
    /// Injections the bound itself consumed — zero, by construction.
    pub n_injections_static: u64,
}

/// Run the static analyzer at a pinned config and score it against an
/// exhaustive campaign. Returns `None` for kernels without provenance
/// instrumentation.
pub fn run_staticbound(config: &KernelConfig, tolerance: f64) -> Option<StaticBoundStats> {
    let kernel = config.build();
    let t0 = Instant::now();
    let (golden, ddg) = kernel.golden_with_ddg();
    let record_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let sb = static_bound(&ddg, &StaticBoundConfig::new(tolerance)).ok()?;
    let backward_secs = t1.elapsed().as_secs_f64();

    let injector = Injector::with_golden(kernel.as_ref(), golden, Classifier::new(tolerance));
    let truth = injector.exhaustive();
    let samples = SampleSet::sample_sites(&injector, (injector.n_sites() / 10).max(4), 41);
    let v = validate_static(
        &Predictor::new(injector.golden(), &sb.boundary()),
        &truth,
        &samples,
        injector.golden(),
        &sb.thresholds,
    );
    Some(StaticBoundStats {
        config: config.clone(),
        tolerance,
        n_sites: sb.n_sites(),
        n_edges: sb.n_edges,
        n_constrained: sb.n_constrained,
        record_secs,
        backward_secs,
        precision: v.eval.precision,
        recall: v.eval.recall,
        uncertainty: v.uncertainty,
        conservative_fraction: v.conservative_fraction,
        n_injections_static: v.n_injections_static,
    })
}

/// Pinned configuration for the compositional-analysis stanza: a fresh
/// sectioned campaign scored against exhaustive truth, optionally
/// followed by a localized code edit to demonstrate incremental
/// re-analysis (only the dirty section re-runs).
pub struct ComposeWorkload {
    /// Config the stanza runs at (validation needs exhaustive truth, so
    /// this may be smaller than the perf config).
    pub config: KernelConfig,
    /// Classifier tolerance.
    pub tolerance: f64,
    /// Per-section site sampling rate.
    pub rate: f64,
    /// Campaign seed.
    pub seed: u64,
    /// The edited variant of `config` for the incremental leg; `None`
    /// skips it.
    pub edit: Option<KernelConfig>,
}

/// Incremental-re-analysis numbers after a localized code edit.
#[derive(Debug, Clone, Serialize)]
pub struct ComposeIncrementalStats {
    /// Sections whose campaigns re-ran after the edit.
    pub dirty_sections: usize,
    /// Sections reused verbatim from the prior ledger.
    pub reused_sections: usize,
    /// Injections the re-analysis spent (reused sections cost zero).
    pub n_injections: u64,
    /// Wall seconds for the incremental re-analysis.
    pub reanalyze_secs: f64,
    /// Precision of the post-edit composed boundary vs fresh truth.
    pub precision_after_edit: f64,
    /// Recall of the post-edit composed boundary vs fresh truth.
    pub recall_after_edit: f64,
}

/// Compositional-analysis numbers for one workload.
#[derive(Debug, Clone, Serialize)]
pub struct ComposeStats {
    /// Config the stanza ran at.
    pub config: KernelConfig,
    /// Classifier tolerance.
    pub tolerance: f64,
    /// Per-section sampling rate.
    pub rate: f64,
    /// Campaign seed.
    pub seed: u64,
    /// Fault sites at the stanza config.
    pub n_sites: usize,
    /// Sections the golden run segmented into.
    pub n_sections: usize,
    /// Injections the fresh analysis spent.
    pub n_injections: u64,
    /// Wall seconds for the fresh sectioned analysis.
    pub analyze_secs: f64,
    /// Precision of the composed boundary against exhaustive truth.
    pub precision: f64,
    /// Recall of the composed boundary against exhaustive truth.
    pub recall: f64,
    /// Fraction of sites whose composed threshold sits strictly below
    /// their smallest SDC-causing error (sites with no SDC count as
    /// conservative).
    pub conservative_fraction: f64,
    /// The incremental leg, when the workload pins an edit.
    pub incremental: Option<ComposeIncrementalStats>,
}

/// Per-site smallest SDC-causing injected error under exhaustive truth.
fn min_sdc_per_site(golden: &ftb_trace::GoldenRun, truth: &ExhaustiveResult) -> Vec<f64> {
    (0..golden.n_sites())
        .map(|site| {
            let errs = golden.flip_errors(site);
            (0..truth.bits)
                .filter(|&bit| truth.outcome(site, bit).is_sdc())
                .map(|bit| errs[bit as usize])
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// Run the compositional stanza: fresh sectioned analysis scored
/// against exhaustive truth, then (if pinned) the incremental leg after
/// the code edit, reusing the same section ledger.
pub fn run_compose(cw: &ComposeWorkload) -> Option<ComposeStats> {
    let ledger =
        std::env::temp_dir().join(format!("ftb-bench-compose-{}.ftbl", std::process::id()));
    let _ = std::fs::remove_file(&ledger);

    let cfg = ComposeConfig {
        rate: cw.rate,
        seed: cw.seed,
        ..ComposeConfig::new(cw.tolerance)
    };
    let kernel = cw.config.build();
    let inj = Injector::new(kernel.as_ref(), Classifier::new(cw.tolerance));
    let t0 = Instant::now();
    let r = compose_analysis(kernel.as_ref(), &cw.config, &inj, &cfg, Some(&ledger)).ok()?;
    let analyze_secs = t0.elapsed().as_secs_f64();

    let truth = inj.exhaustive();
    let golden = inj.golden();
    let eval = BoundaryEval::against_exhaustive(&Predictor::new(golden, &r.boundary), &truth);
    let min_sdc = min_sdc_per_site(golden, &truth);
    let conservative_fraction = (0..golden.n_sites())
        .filter(|&s| min_sdc[s].is_infinite() || r.boundary.threshold(s) < min_sdc[s])
        .count() as f64
        / golden.n_sites().max(1) as f64;

    let incremental = cw.edit.as_ref().and_then(|edited| {
        let kernel2 = edited.build();
        let inj2 = Injector::new(kernel2.as_ref(), Classifier::new(cw.tolerance));
        let t1 = Instant::now();
        let r2 = compose_analysis(kernel2.as_ref(), edited, &inj2, &cfg, Some(&ledger)).ok()?;
        let reanalyze_secs = t1.elapsed().as_secs_f64();
        let truth2 = inj2.exhaustive();
        let eval2 =
            BoundaryEval::against_exhaustive(&Predictor::new(inj2.golden(), &r2.boundary), &truth2);
        Some(ComposeIncrementalStats {
            dirty_sections: r2.reran.len(),
            reused_sections: r2.reused.len(),
            n_injections: r2.n_experiments,
            reanalyze_secs,
            precision_after_edit: eval2.precision,
            recall_after_edit: eval2.recall,
        })
    });
    let _ = std::fs::remove_file(&ledger);

    Some(ComposeStats {
        config: cw.config.clone(),
        tolerance: cw.tolerance,
        rate: cw.rate,
        seed: cw.seed,
        n_sites: inj.n_sites(),
        n_sections: r.map.n_sections(),
        n_injections: r.n_experiments,
        analyze_secs,
        precision: eval.precision,
        recall: eval.recall,
        conservative_fraction,
        incremental,
    })
}

/// Pinned configuration for the bit-level vulnerability-map stanza:
/// forward interval analysis certifies masked bits, then a pruned and an
/// unpruned exhaustive campaign run over the same (possibly strided)
/// site set to measure the work saving and check cell-for-cell agreement.
pub struct BitsWorkload {
    /// Config the stanza runs at. The paper-scale tier reuses the perf
    /// config with a site stride; validation-sized tiers run the full
    /// site set.
    pub config: KernelConfig,
    /// Classifier tolerance (also the static bound's error budget).
    pub tolerance: f64,
    /// Relative input widening for the forward pass.
    pub widen: f64,
    /// Site stride of the measured campaigns (1 = every site).
    pub site_stride: usize,
    /// CI floor on the certified-bit campaign reduction factor.
    pub min_reduction: f64,
}

/// Bit-level vulnerability-map numbers for one workload.
#[derive(Debug, Clone, Serialize)]
pub struct BitsStats {
    /// Config the stanza ran at.
    pub config: KernelConfig,
    /// Classifier tolerance.
    pub tolerance: f64,
    /// Forward-pass input widening.
    pub widen: f64,
    /// Site stride of the measured campaigns.
    pub site_stride: usize,
    /// CI floor on `reduction_factor` (from the pinned workload).
    pub min_reduction: f64,
    /// Sites in the golden run (before striding).
    pub n_sites: usize,
    /// Bits per site.
    pub bits: u8,
    /// Wall seconds for DDG + static bound + forward pass + masks.
    pub analysis_secs: f64,
    /// Certified-masked bits over the measured sites.
    pub certified_measured: u64,
    /// All bits over the measured sites.
    pub total_measured: u64,
    /// `total / (total - certified)` over the measured sites — the
    /// campaign work factor `--bit-prune` saves.
    pub reduction_factor: f64,
    /// Experiments and wall time of the unpruned campaign.
    pub unpruned_experiments: u64,
    /// Unpruned campaign wall seconds.
    pub unpruned_secs: f64,
    /// Unpruned experiments per second.
    pub unpruned_eps: f64,
    /// Experiments and wall time of the pruned campaign.
    pub pruned_experiments: u64,
    /// Pruned campaign wall seconds.
    pub pruned_secs: f64,
    /// Pruned experiments per second.
    pub pruned_eps: f64,
    /// Certified bits whose measured outcome is not masked — soundness
    /// demands zero.
    pub violations: u64,
    /// Whether pruned and unpruned campaigns agree on every measured
    /// non-certified `(site, bit)` cell.
    pub agree_non_certified: bool,
}

/// Run the bit-level stanza. Returns `None` for kernels without
/// provenance instrumentation.
pub fn run_bits(bw: &BitsWorkload) -> Option<BitsStats> {
    let kernel = bw.config.build();
    let t0 = Instant::now();
    let (golden, ddg) = kernel.golden_with_ddg();
    let sb = static_bound(&ddg, &StaticBoundConfig::new(bw.tolerance)).ok()?;
    let fw = forward_pass(&ddg, &golden, &ForwardConfig { widen: bw.widen }).ok()?;
    let masks = safe_bit_masks(&fw, &sb.boundary(), MaskSource::Static);
    let analysis_secs = t0.elapsed().as_secs_f64();

    let injector = Injector::with_golden(kernel.as_ref(), golden, Classifier::new(bw.tolerance));
    let bits = injector.bits();
    let certified = masks.certified_masks();
    let sites: Vec<usize> = (0..injector.n_sites()).step_by(bw.site_stride).collect();
    let unpruned_plan: Vec<ftb_trace::FaultSpec> = sites
        .iter()
        .flat_map(|&site| (0..bits).map(move |bit| ftb_trace::FaultSpec { site, bit }))
        .collect();
    let pruned_plan: Vec<ftb_trace::FaultSpec> = sites
        .iter()
        .flat_map(|&site| {
            let mask = certified[site];
            (0..bits)
                .filter(move |&bit| mask & (1u64 << bit) == 0)
                .map(move |bit| ftb_trace::FaultSpec { site, bit })
        })
        .collect();

    let t1 = Instant::now();
    let unpruned = injector.run_batch(&unpruned_plan);
    let unpruned_secs = t1.elapsed().as_secs_f64();
    let t2 = Instant::now();
    let pruned = injector.run_batch(&pruned_plan);
    let pruned_secs = t2.elapsed().as_secs_f64();

    let truth: std::collections::HashMap<(usize, u8), u8> = unpruned
        .iter()
        .map(|e| (e.key(), e.outcome.code()))
        .collect();
    let violations = unpruned
        .iter()
        .filter(|e| certified[e.site] & (1u64 << e.bit) != 0 && !e.outcome.is_masked())
        .count() as u64;
    let agree_non_certified = pruned
        .iter()
        .all(|e| truth.get(&e.key()) == Some(&e.outcome.code()));

    let certified_measured: u64 = sites
        .iter()
        .map(|&s| u64::from(certified[s].count_ones()))
        .sum();
    let total_measured = (sites.len() * bits as usize) as u64;
    Some(BitsStats {
        config: bw.config.clone(),
        tolerance: bw.tolerance,
        widen: bw.widen,
        site_stride: bw.site_stride,
        min_reduction: bw.min_reduction,
        n_sites: injector.n_sites(),
        bits,
        analysis_secs,
        certified_measured,
        total_measured,
        reduction_factor: if certified_measured == total_measured {
            f64::INFINITY
        } else {
            total_measured as f64 / (total_measured - certified_measured) as f64
        },
        unpruned_experiments: unpruned_plan.len() as u64,
        unpruned_secs,
        unpruned_eps: unpruned_plan.len() as f64 / unpruned_secs.max(1e-9),
        pruned_experiments: pruned_plan.len() as u64,
        pruned_secs,
        pruned_eps: pruned_plan.len() as f64 / pruned_secs.max(1e-9),
        violations,
        agree_non_certified,
    })
}

/// Serial-vs-parallel outcome-distribution stanza for one workload: the
/// exhaustive campaign re-run under each pinned rayon pool size and the
/// per-site outcome histograms compared with the total-variation
/// distance (see `ftb_inject::characterize`). Campaign outcomes are a
/// pure function of the fault, so reproducibility demands exactly zero
/// distance — any nonzero TVD is a scheduling-dependence bug.
#[derive(Debug, Clone, Serialize)]
pub struct TvdStats {
    /// Pool sizes exercised.
    pub thread_counts: Vec<usize>,
    /// Fault sites per campaign.
    pub n_sites: usize,
    /// Experiments per campaign.
    pub n_experiments: u64,
    /// Largest per-site total-variation distance across all pool pairs.
    pub max_tvd: f64,
    /// Mean of the per-pair mean distances.
    pub mean_tvd: f64,
    /// Sites with any distribution difference, summed over pairs.
    pub diverging_sites: usize,
    /// The CI-gated reproducibility bit: every pairwise distance zero.
    pub deterministic: bool,
}

/// Run the TVD stanza: characterize the workload's exhaustive outcome
/// distributions across the pinned pool sizes.
pub fn run_tvd(config: &KernelConfig, tolerance: f64, thread_counts: &[usize]) -> TvdStats {
    let kernel = config.build();
    let inj = Injector::new(kernel.as_ref(), Classifier::new(tolerance));
    let r = ftb_inject::characterize(&inj, thread_counts);
    TvdStats {
        thread_counts: r.thread_counts.clone(),
        n_sites: r.n_sites,
        n_experiments: r.n_experiments,
        max_tvd: r.pairs.iter().map(|p| p.max_tvd).fold(0.0, f64::max),
        mean_tvd: r.pairs.iter().map(|p| p.mean_tvd).sum::<f64>() / r.pairs.len().max(1) as f64,
        diverging_sites: r.pairs.iter().map(|p| p.diverging_sites).sum(),
        deterministic: r.deterministic,
    }
}

/// One pinned workload of the performance suite.
pub struct PerfWorkload {
    /// Display name ("jacobi", "gemm", "cg").
    pub name: &'static str,
    /// Pinned kernel configuration (size and seed fixed per tier).
    pub config: KernelConfig,
    /// Output tolerance for the classifier.
    pub tolerance: f64,
    /// Site stride of the exhaustive campaign, applied to every path
    /// (1 = full table; paper-scale workloads subsample).
    pub site_stride: usize,
    /// Site stride for the lockstep path. Must be a multiple of
    /// `site_stride` so the agreement check overlaps the reference.
    pub lockstep_stride: usize,
    /// Pinned adaptive-campaign configuration (seed and round budget
    /// fixed per tier; paper-scale workloads bound the round count so
    /// the adaptive leg stays a fixed, small number of experiments).
    pub adaptive: AdaptiveConfig,
    /// Pinned `(config, tolerance)` for the zero-injection static-bound
    /// stanza; `None` skips it. Kept separate from the perf config
    /// because validation runs an exhaustive campaign.
    pub staticbound: Option<(KernelConfig, f64)>,
    /// Pinned compositional-analysis stanza; `None` skips it. Like the
    /// static stanza, it runs at a validation-sized config.
    pub compose: Option<ComposeWorkload>,
    /// Pinned bit-level vulnerability-map stanza; `None` skips it.
    pub bits: Option<BitsWorkload>,
    /// Pool sizes for the serial-vs-parallel TVD stanza; `None` skips
    /// it. Characterization runs a full exhaustive campaign per pool
    /// size, so only validation-sized tiers pin this (the paper-scale
    /// tier subsamples even a single exhaustive table).
    pub tvd_threads: Option<Vec<usize>>,
    /// CI floor on the snapshot leg's throughput over the plain streamed
    /// path (0.0 disables the floor; the `identical` check always
    /// applies). Only the paper-scale Jacobi pins a real floor — at
    /// cache-resident sizes the snapshot store's capture overhead can
    /// swamp the prefix it skips.
    pub snapshot_min_speedup: f64,
    /// CI floor on the snapshot leg's absolute experiments/second
    /// (0.0 disables). The paper-scale Jacobi pins 33.0 — ≥10× the
    /// 3.33 eps the pre-snapshot streamed campaign recorded — so the
    /// headline speedup is gated against the fixed historical baseline
    /// even as the fresh streamed denominator itself gets faster.
    pub snapshot_min_eps: f64,
    /// CI floor on `speedup_streamed_vs_buffered` (0.0 disables).
    pub min_streamed_speedup: f64,
    /// How many times to run each *ratcheted* timed leg (the exhaustive
    /// campaigns), keeping the best wall time. The quick tier uses 3:
    /// its sub-second measurements on shared CI runners swing well past
    /// the ratchet's tolerance band run-to-run, and best-of-N removes
    /// the downward (contention) noise while the machine's actual speed
    /// bounds the upside. The full tier uses 1 — paper-scale legs run
    /// long enough to be stable and are too expensive to repeat.
    pub timing_repeats: usize,
}

/// The pinned jacobi compose stanza shared by both tiers: a
/// validation-sized solve, with the weighted-Jacobi sweep-5 edit as the
/// incremental leg.
fn jacobi_compose_stanza() -> ComposeWorkload {
    let base = JacobiConfig {
        grid: 4,
        sweeps: 10,
        ..JacobiConfig::small()
    };
    ComposeWorkload {
        config: KernelConfig::Jacobi(base.clone()),
        tolerance: 1e-4,
        rate: 0.5,
        seed: 41,
        edit: Some(KernelConfig::Jacobi(JacobiConfig {
            tweak: Some(SweepTweak {
                sweep: 5,
                omega: 0.5,
            }),
            ..base
        })),
    }
}

/// Quick-tier stanza shared by the kernels the serial-vs-parallel
/// characterization work wired into the campaign stack (lu, fft,
/// stencil, matvec, spmv): a validation-sized config runs the full site
/// set on every path, plus static-bound and bit-prune stanzas at the
/// same pinned config and a 1-vs-8-thread TVD stanza.
fn quick_stanza(name: &'static str, config: KernelConfig, tolerance: f64) -> PerfWorkload {
    PerfWorkload {
        name,
        snapshot_min_speedup: 0.0,
        snapshot_min_eps: 0.0,
        min_streamed_speedup: 0.0,
        timing_repeats: 3,
        config: config.clone(),
        tolerance,
        site_stride: 1,
        lockstep_stride: 4,
        adaptive: AdaptiveConfig {
            seed: 7,
            ..AdaptiveConfig::default()
        },
        staticbound: Some((config.clone(), tolerance)),
        compose: None,
        bits: Some(BitsWorkload {
            config,
            tolerance,
            widen: 0.0,
            site_stride: 1,
            min_reduction: 1.0,
        }),
        tvd_threads: Some(vec![1, 8]),
    }
}

/// The pinned workloads. `quick` selects the tiny CI-smoke tier; the
/// full tier is what the committed `BENCH_ppopp21.json` reports.
pub fn perf_suite(quick: bool) -> Vec<PerfWorkload> {
    let adaptive_default = AdaptiveConfig {
        seed: 7,
        ..AdaptiveConfig::default()
    };
    if quick {
        vec![
            PerfWorkload {
                name: "jacobi",
                snapshot_min_speedup: 0.0,
                snapshot_min_eps: 0.0,
                min_streamed_speedup: 0.0,
                timing_repeats: 5,
                config: KernelConfig::Jacobi(JacobiConfig {
                    grid: 4,
                    sweeps: 10,
                    precision: Precision::F64,
                    seed: 42,
                    fine_grained: true,
                    residual_every: 1,
                    tweak: None,
                }),
                tolerance: 1e-6,
                site_stride: 1,
                lockstep_stride: 4,
                adaptive: adaptive_default.clone(),
                staticbound: Some((
                    KernelConfig::Jacobi(JacobiConfig {
                        grid: 4,
                        sweeps: 10,
                        precision: Precision::F64,
                        seed: 42,
                        fine_grained: true,
                        residual_every: 1,
                        tweak: None,
                    }),
                    1e-6,
                )),
                compose: Some(jacobi_compose_stanza()),
                bits: Some(BitsWorkload {
                    config: KernelConfig::Jacobi(JacobiConfig {
                        grid: 4,
                        sweeps: 10,
                        precision: Precision::F64,
                        seed: 42,
                        fine_grained: true,
                        residual_every: 1,
                        tweak: None,
                    }),
                    tolerance: 1e-6,
                    widen: 0.0,
                    site_stride: 1,
                    min_reduction: 2.0,
                }),
                // the committed serial-vs-parallel baseline: jacobi's
                // 1-vs-8-thread per-site TVD delta, expected exactly zero
                tvd_threads: Some(vec![1, 8]),
            },
            PerfWorkload {
                name: "gemm",
                snapshot_min_speedup: 0.0,
                snapshot_min_eps: 0.0,
                min_streamed_speedup: 0.0,
                timing_repeats: 5,
                config: KernelConfig::Gemm(GemmConfig {
                    n: 5,
                    precision: Precision::F64,
                    seed: 42,
                }),
                tolerance: 1e-6,
                site_stride: 1,
                lockstep_stride: 4,
                adaptive: adaptive_default.clone(),
                staticbound: Some((
                    KernelConfig::Gemm(GemmConfig {
                        n: 5,
                        precision: Precision::F64,
                        seed: 42,
                    }),
                    1e-6,
                )),
                compose: None,
                bits: Some(BitsWorkload {
                    config: KernelConfig::Gemm(GemmConfig {
                        n: 5,
                        precision: Precision::F64,
                        seed: 42,
                    }),
                    tolerance: 1e-6,
                    widen: 0.0,
                    site_stride: 1,
                    min_reduction: 1.0,
                }),
                tvd_threads: Some(vec![1, 8]),
            },
            PerfWorkload {
                name: "cg",
                snapshot_min_speedup: 0.0,
                snapshot_min_eps: 0.0,
                min_streamed_speedup: 0.0,
                timing_repeats: 5,
                config: KernelConfig::Cg(CgConfig {
                    grid: 4,
                    rtol: 1e-4,
                    max_iters: 50,
                    precision: Precision::F32,
                    seed: 42,
                    storage: CgStorage::MatrixFree,
                }),
                tolerance: 1e-1,
                site_stride: 1,
                lockstep_stride: 4,
                adaptive: adaptive_default,
                staticbound: Some((
                    KernelConfig::Cg(CgConfig {
                        grid: 4,
                        rtol: 1e-4,
                        max_iters: 50,
                        precision: Precision::F32,
                        seed: 42,
                        storage: CgStorage::MatrixFree,
                    }),
                    1e-1,
                )),
                compose: None,
                bits: Some(BitsWorkload {
                    config: KernelConfig::Cg(CgConfig {
                        grid: 4,
                        rtol: 1e-4,
                        max_iters: 50,
                        precision: Precision::F32,
                        seed: 42,
                        storage: CgStorage::MatrixFree,
                    }),
                    tolerance: 1e-1,
                    widen: 0.0,
                    site_stride: 1,
                    min_reduction: 1.0,
                }),
                tvd_threads: Some(vec![1, 8]),
            },
            quick_stanza(
                "lu",
                KernelConfig::Lu(LuConfig {
                    n: 8,
                    block: 4,
                    ..LuConfig::small()
                }),
                3e-5,
            ),
            quick_stanza(
                "fft",
                KernelConfig::Fft(FftConfig {
                    n1: 4,
                    n2: 4,
                    ..FftConfig::small()
                }),
                1.0,
            ),
            quick_stanza(
                "stencil",
                KernelConfig::Stencil(StencilConfig {
                    grid: 6,
                    sweeps: 3,
                    ..StencilConfig::small()
                }),
                1e-6,
            ),
            quick_stanza(
                "matvec",
                KernelConfig::Matvec(MatvecConfig {
                    n: 6,
                    ..MatvecConfig::small()
                }),
                1e-6,
            ),
            quick_stanza(
                "spmv",
                KernelConfig::Spmv(SpmvConfig {
                    grid: 5,
                    ..SpmvConfig::small()
                }),
                1e-6,
            ),
        ]
    } else {
        vec![
            // The headline workload: ~9.9M dynamic instructions per
            // execution, the paper's scale. The buffered extractor's
            // per-experiment working set (~300 MB) is past the cache
            // cliff while the shared compact F32 golden (~50 MB) is not;
            // this is where the streamed path's ≥1.5× shows up.
            PerfWorkload {
                name: "jacobi",
                snapshot_min_speedup: 5.0,
                snapshot_min_eps: 33.0,
                min_streamed_speedup: 1.0,
                timing_repeats: 1,
                config: KernelConfig::Jacobi(JacobiConfig {
                    grid: 128,
                    sweeps: 600,
                    precision: Precision::F32,
                    seed: 42,
                    fine_grained: false,
                    residual_every: 8,
                    tweak: None,
                }),
                tolerance: 1e-3,
                // 17 sites × 32 bits = 544 experiments per path
                site_stride: 614_000,
                // 2 sites × 32 bits = 64 experiments (two threads + a
                // channel hand-off per experiment make lockstep several
                // times slower per run)
                lockstep_stride: 8 * 614_000,
                // bound the adaptive leg to a handful of ~30-experiment
                // rounds — a 0.1% round of a 9.9M-site table would be
                // ~10k experiments, hours at ~150 ms each
                adaptive: AdaptiveConfig {
                    seed: 7,
                    round_fraction: 3e-6,
                    min_round_size: 32,
                    min_rounds: 2,
                    dry_rounds: 1,
                    max_rounds: 3,
                    ..AdaptiveConfig::default()
                },
                // validation needs exhaustive truth, so the static
                // stanza pins a mid-size Jacobi instead of the 9.9M-site
                // perf config (the DDG+backward wall times stay honest:
                // both stages are linear in sites and edges)
                staticbound: Some((
                    KernelConfig::Jacobi(JacobiConfig {
                        grid: 8,
                        sweeps: 30,
                        precision: Precision::F64,
                        seed: 42,
                        fine_grained: false,
                        residual_every: 1,
                        tweak: None,
                    }),
                    1e-4,
                )),
                compose: Some(jacobi_compose_stanza()),
                // The acceptance stanza: paper-scale Jacobi, strided so
                // the pruned-vs-unpruned comparison finishes in minutes.
                // Static certification on an F32 run at 1e-3 clears the
                // low mantissa bits at every surviving site; the floor
                // asserts the headline ≥2× campaign-work reduction.
                bits: Some(BitsWorkload {
                    config: KernelConfig::Jacobi(JacobiConfig {
                        grid: 128,
                        sweeps: 600,
                        precision: Precision::F32,
                        seed: 42,
                        fine_grained: false,
                        residual_every: 8,
                        tweak: None,
                    }),
                    tolerance: 1e-3,
                    widen: 0.0,
                    site_stride: 614_000,
                    min_reduction: 2.0,
                }),
                // characterization needs a full exhaustive table per pool
                // size — infeasible at paper scale; the quick tier owns
                // the TVD baseline
                tvd_threads: None,
            },
            PerfWorkload {
                name: "gemm",
                snapshot_min_speedup: 0.0,
                snapshot_min_eps: 0.0,
                min_streamed_speedup: 0.0,
                timing_repeats: 1,
                config: KernelConfig::Gemm(GemmConfig {
                    n: 10,
                    precision: Precision::F64,
                    seed: 42,
                }),
                tolerance: 1e-6,
                site_stride: 1,
                lockstep_stride: 16,
                adaptive: adaptive_default.clone(),
                staticbound: Some((
                    KernelConfig::Gemm(GemmConfig {
                        n: 10,
                        precision: Precision::F64,
                        seed: 42,
                    }),
                    1e-6,
                )),
                compose: None,
                bits: Some(BitsWorkload {
                    config: KernelConfig::Gemm(GemmConfig {
                        n: 10,
                        precision: Precision::F64,
                        seed: 42,
                    }),
                    tolerance: 1e-6,
                    widen: 0.0,
                    site_stride: 1,
                    min_reduction: 1.0,
                }),
                tvd_threads: None,
            },
            PerfWorkload {
                name: "cg",
                snapshot_min_speedup: 0.0,
                snapshot_min_eps: 0.0,
                min_streamed_speedup: 0.0,
                timing_repeats: 1,
                config: KernelConfig::Cg(CgConfig {
                    grid: 6,
                    rtol: 1e-4,
                    max_iters: 100,
                    precision: Precision::F32,
                    seed: 42,
                    storage: CgStorage::MatrixFree,
                }),
                tolerance: 1e-1,
                site_stride: 1,
                lockstep_stride: 16,
                adaptive: adaptive_default,
                staticbound: Some((
                    KernelConfig::Cg(CgConfig {
                        grid: 6,
                        rtol: 1e-4,
                        max_iters: 100,
                        precision: Precision::F32,
                        seed: 42,
                        storage: CgStorage::MatrixFree,
                    }),
                    1e-1,
                )),
                compose: None,
                bits: Some(BitsWorkload {
                    config: KernelConfig::Cg(CgConfig {
                        grid: 6,
                        rtol: 1e-4,
                        max_iters: 100,
                        precision: Precision::F32,
                        seed: 42,
                        storage: CgStorage::MatrixFree,
                    }),
                    tolerance: 1e-1,
                    widen: 0.0,
                    site_stride: 1,
                    min_reduction: 1.0,
                }),
                tvd_threads: None,
            },
        ]
    }
}

/// Peak resident set size of this process in KiB (`VmHWM`), the
/// standard Linux high-water-mark proxy; `None` off Linux.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Outcome histogram of an exhaustive table (masked, sdc, crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct OutcomeCounts {
    /// Faults absorbed within tolerance.
    pub masked: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Abnormal terminations (non-finite or hang).
    pub crash: u64,
}

impl OutcomeCounts {
    /// Histogram over every `(site, bit)` cell, optionally site-strided.
    pub fn of(table: &ExhaustiveResult, stride: usize) -> Self {
        let mut c = OutcomeCounts {
            masked: 0,
            sdc: 0,
            crash: 0,
        };
        for site in (0..table.n_sites).step_by(stride) {
            for bit in 0..table.bits {
                let o = table.outcome(site, bit);
                if o.is_masked() {
                    c.masked += 1;
                } else if o.is_sdc() {
                    c.sdc += 1;
                } else {
                    c.crash += 1;
                }
            }
        }
        c
    }
}

/// Measured numbers for the snapshot-resume leg on one workload: the
/// same strided exhaustive campaign as the streamed path, but every
/// experiment starts from the boundary snapshot preceding its fault
/// site instead of from t=0 (and early-exits on bitwise reconvergence
/// with the captured golden state).
#[derive(Debug, Clone, Serialize)]
pub struct SnapshotStats {
    /// CI floor on `speedup_vs_streamed` (from the pinned workload;
    /// 0.0 disables the floor).
    pub min_speedup: f64,
    /// CI floor on `experiments_per_sec` (from the pinned workload;
    /// 0.0 disables the floor). Anchors the paper-scale leg to the
    /// fixed pre-snapshot baseline (3.33 eps → 33.0 floor = ≥10×)
    /// independently of how fast the fresh streamed denominator is.
    pub min_eps: f64,
    /// Boundary snapshots captured (after thinning).
    pub snapshots: usize,
    /// Wall seconds for the capture pass over the golden run.
    pub capture_secs: f64,
    /// Bytes held by the content-addressed array pool, in MiB.
    pub store_mb: f64,
    /// Experiments executed by the snapshot-resumed campaign.
    pub exhaustive_experiments: u64,
    /// Snapshot-resumed campaign wall seconds.
    pub exhaustive_secs: f64,
    /// Snapshot-resumed experiments per second.
    pub experiments_per_sec: f64,
    /// Throughput over the plain streamed path on the same plan.
    pub speedup_vs_streamed: f64,
    /// Whether the snapshot-resumed outcome table is identical to the
    /// from-t=0 streamed table — resume must be bit-exact, so any
    /// divergence is a correctness bug, not noise.
    pub identical: bool,
}

/// Run the snapshot-resume leg: capture boundary snapshots, build the
/// strided outcome table with every experiment resumed from its
/// preceding snapshot (outcome-only classification with bitwise and
/// contraction-certificate early exits — the table campaign's product
/// is outcome codes, so no propagation extraction is paid), and check
/// the table cell-for-cell against the from-t=0 streamed reference.
/// `None` for kernels that are not snapshot-capable.
fn run_snapshot_leg(
    kernel: &dyn Kernel,
    w: &PerfWorkload,
    streamed: &PathStats,
    streamed_table: &ExhaustiveResult,
) -> Option<SnapshotStats> {
    if !kernel.snapshot_capable() {
        return None;
    }
    // certified exits are sound here: the leg compares outcome *tables*
    // (codes only), which certificate exits keep identical to
    // from-scratch execution
    let analysis = Analysis::new(kernel, Classifier::new(w.tolerance)).with_certified_exits();
    let t0 = Instant::now();
    let analysis = analysis.with_snapshots(DEFAULT_MAX_SNAPSHOTS);
    let capture_secs = t0.elapsed().as_secs_f64();
    let store_len = analysis.injector().snapshot_store()?.len();
    let store_mb = analysis.injector().snapshot_store()?.store_bytes() as f64 / (1024.0 * 1024.0);

    let bits = kernel.precision().bits();
    let mut table = None;
    let mut exhaustive_secs = f64::INFINITY;
    for _ in 0..w.timing_repeats.max(1) {
        let t1 = Instant::now();
        let t = strided_outcome_table(analysis.injector(), w.site_stride);
        exhaustive_secs = exhaustive_secs.min(t1.elapsed().as_secs_f64());
        table.get_or_insert(t);
    }
    let table = table.expect("at least one timing repeat");
    let experiments = (analysis.n_sites().div_ceil(w.site_stride) * bits as usize) as u64;
    let eps = experiments as f64 / exhaustive_secs.max(1e-9);
    Some(SnapshotStats {
        min_speedup: w.snapshot_min_speedup,
        min_eps: w.snapshot_min_eps,
        snapshots: store_len,
        capture_secs,
        store_mb,
        exhaustive_experiments: experiments,
        exhaustive_secs,
        experiments_per_sec: eps,
        speedup_vs_streamed: eps / streamed.experiments_per_sec.max(1e-9),
        identical: table == *streamed_table,
    })
}

/// Measured numbers for one extraction path on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct PathStats {
    /// Extraction path name.
    pub path: String,
    /// Site stride used (lockstep subsamples at full scale).
    pub site_stride: usize,
    /// Experiments executed by the exhaustive campaign.
    pub exhaustive_experiments: u64,
    /// Exhaustive campaign wall time in seconds.
    pub exhaustive_secs: f64,
    /// Headline throughput: exhaustive experiments per second.
    pub experiments_per_sec: f64,
    /// Experiments executed by the adaptive campaign.
    pub adaptive_experiments: u64,
    /// Adaptive campaign wall time in seconds.
    pub adaptive_secs: f64,
    /// Outcome histogram of the (possibly strided) exhaustive table.
    pub outcomes: OutcomeCounts,
    /// Process peak RSS (KiB) after this path ran, if available.
    pub peak_rss_kb_after: Option<u64>,
}

/// Report for one workload across all three paths.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadReport {
    /// Workload name.
    pub name: String,
    /// Pinned kernel configuration.
    pub config: KernelConfig,
    /// Classifier tolerance.
    pub tolerance: f64,
    /// Fault sites in the golden run.
    pub n_sites: usize,
    /// Bits per site.
    pub bits: u8,
    /// Bytes held by the full golden trace (the paper's §5
    /// `8 bytes × dynamic instructions` figure, plus branch/static-id
    /// streams).
    pub golden_bytes_full: usize,
    /// Bytes held by the shared compact golden the streamed path reads.
    pub golden_bytes_compact: usize,
    /// Per-path measurements (buffered, lockstep, streamed).
    pub paths: Vec<PathStats>,
    /// Streamed over buffered exhaustive throughput.
    pub speedup_streamed_vs_buffered: f64,
    /// CI floor on `speedup_streamed_vs_buffered` (from the pinned
    /// workload; 0.0 disables).
    pub min_streamed_speedup: f64,
    /// Snapshot-resume leg (`None` for non-snapshot-capable kernels).
    pub snapshot: Option<SnapshotStats>,
    /// Whether every path produced the same outcome table (on the
    /// experiments it ran).
    pub paths_agree: bool,
    /// Zero-injection static-bound stanza (`None` when the workload
    /// disables it or the kernel is not provenance-instrumented).
    pub staticbound: Option<StaticBoundStats>,
    /// Compositional-analysis stanza (`None` when the workload skips it).
    pub compose: Option<ComposeStats>,
    /// Bit-level vulnerability-map stanza (`None` when the workload
    /// skips it).
    pub bits_map: Option<BitsStats>,
    /// Serial-vs-parallel outcome-distribution stanza (`None` when the
    /// workload skips it).
    pub tvd: Option<TvdStats>,
}

fn run_path(
    kernel: &dyn Kernel,
    w: &PerfWorkload,
    mode: ExtractionMode,
) -> (PathStats, ExhaustiveResult) {
    let stride = match mode {
        ExtractionMode::Lockstep { .. } => w.lockstep_stride,
        _ => w.site_stride,
    };
    let analysis = Analysis::new(kernel, Classifier::new(w.tolerance)).with_extraction(mode);
    let bits = kernel.precision().bits();

    let mut table = None;
    let mut exhaustive_secs = f64::INFINITY;
    for _ in 0..w.timing_repeats.max(1) {
        let t0 = Instant::now();
        let t = if stride == 1 {
            analysis.exhaustive()
        } else {
            strided_exhaustive(analysis.injector(), stride)
        };
        exhaustive_secs = exhaustive_secs.min(t0.elapsed().as_secs_f64());
        table.get_or_insert(t);
    }
    let table = table.expect("at least one timing repeat");
    let exhaustive_experiments = (analysis.n_sites().div_ceil(stride) * bits as usize) as u64;

    let t1 = Instant::now();
    let adaptive = analysis.adaptive(&w.adaptive);
    let adaptive_secs = t1.elapsed().as_secs_f64();

    let stats = PathStats {
        path: mode.name().to_string(),
        site_stride: stride,
        exhaustive_experiments,
        exhaustive_secs,
        experiments_per_sec: exhaustive_experiments as f64 / exhaustive_secs.max(1e-9),
        adaptive_experiments: adaptive.samples.len() as u64,
        adaptive_secs,
        outcomes: OutcomeCounts::of(&table, stride),
        peak_rss_kb_after: peak_rss_kb(),
    };
    (stats, table)
}

/// An exhaustive table over every `stride`-th site (full bit coverage),
/// with skipped sites marked masked so the layout stays dense.
fn strided_exhaustive(injector: &Injector<'_>, stride: usize) -> ExhaustiveResult {
    let bits = injector.bits();
    let experiments = injector.run_batch(&strided_plan(injector, stride));
    let mut codes = vec![0u8; injector.n_sites() * bits as usize];
    for e in &experiments {
        codes[e.site * bits as usize + e.bit as usize] = e.outcome.code();
    }
    ExhaustiveResult {
        n_sites: injector.n_sites(),
        bits,
        codes,
    }
}

/// Every bit of every `stride`-th site.
fn strided_plan(injector: &Injector<'_>, stride: usize) -> Vec<ftb_trace::FaultSpec> {
    let bits = injector.bits();
    (0..injector.n_sites())
        .step_by(stride)
        .flat_map(|site| (0..bits).map(move |bit| ftb_trace::FaultSpec { site, bit }))
        .collect()
}

/// The same strided table via the outcome-only path (`run_many`): no
/// propagation extraction, just classification — the snapshot leg's
/// execution model, where the campaign's product is the outcome table.
fn strided_outcome_table(injector: &Injector<'_>, stride: usize) -> ExhaustiveResult {
    let bits = injector.bits();
    let experiments = injector.run_many(&strided_plan(injector, stride));
    let mut codes = vec![0u8; injector.n_sites() * bits as usize];
    for e in &experiments {
        codes[e.site * bits as usize + e.bit as usize] = e.outcome.code();
    }
    ExhaustiveResult {
        n_sites: injector.n_sites(),
        bits,
        codes,
    }
}

/// Run one workload through all three extraction paths and check that
/// they agree wherever they overlap.
pub fn run_workload(w: &PerfWorkload) -> WorkloadReport {
    assert!(
        w.site_stride >= 1 && w.lockstep_stride % w.site_stride == 0,
        "lockstep_stride must be a multiple of site_stride for the agreement check"
    );
    let kernel = w.config.build();
    let golden = kernel.golden();
    let compact = CompactGolden::from_golden(&golden);
    let golden_bytes_full = std::mem::size_of_val(golden.values.as_slice())
        + std::mem::size_of_val(golden.branches.as_slice())
        + std::mem::size_of_val(golden.static_ids.as_slice());
    let golden_bytes_compact = compact.memory_bytes();

    // streamed first so the buffered path's full-trace allocations are
    // visible as an RSS increase, not hidden under an earlier peak
    let (streamed, streamed_table) = run_path(kernel.as_ref(), w, ExtractionMode::Streamed);
    let (lockstep, lockstep_table) = run_path(
        kernel.as_ref(),
        w,
        ExtractionMode::Lockstep { capacity: 64 },
    );
    let (buffered, buffered_table) = run_path(kernel.as_ref(), w, ExtractionMode::Buffered);

    let full_agree = buffered_table == streamed_table;
    let strided_agree = OutcomeCounts::of(&buffered_table, w.lockstep_stride)
        == OutcomeCounts::of(&lockstep_table, w.lockstep_stride);
    let speedup = streamed.experiments_per_sec / buffered.experiments_per_sec.max(1e-9);
    let snapshot = run_snapshot_leg(kernel.as_ref(), w, &streamed, &streamed_table);

    WorkloadReport {
        name: w.name.to_string(),
        config: w.config.clone(),
        tolerance: w.tolerance,
        n_sites: golden.n_sites(),
        bits: kernel.precision().bits(),
        golden_bytes_full,
        golden_bytes_compact,
        paths: vec![buffered, lockstep, streamed],
        speedup_streamed_vs_buffered: speedup,
        min_streamed_speedup: w.min_streamed_speedup,
        snapshot,
        paths_agree: full_agree && strided_agree,
        staticbound: w
            .staticbound
            .as_ref()
            .and_then(|(cfg, tol)| run_staticbound(cfg, *tol)),
        compose: w.compose.as_ref().and_then(run_compose),
        bits_map: w.bits.as_ref().and_then(run_bits),
        tvd: w
            .tvd_threads
            .as_ref()
            .map(|tc| run_tvd(&w.config, w.tolerance, tc)),
    }
}

/// One tier's report, stored under `tiers.quick` / `tiers.full` of the
/// committed `BENCH_ppopp21.json` (see [`BENCH_SCHEMA`] and
/// [`merge_tier`]).
#[derive(Debug, Clone, Serialize)]
pub struct PerfReport {
    /// Whether the quick (CI smoke) tier ran.
    pub quick: bool,
    /// Rayon worker threads used.
    pub threads: usize,
    /// Per-workload results.
    pub workloads: Vec<WorkloadReport>,
    /// Conjunction of every workload's `paths_agree`.
    pub all_paths_agree: bool,
    /// Conjunction of every compose stanza's quality gate (precision at
    /// least 0.95, fully conservative, and — when an edit is pinned —
    /// exactly one dirty section at recall at least 0.9). `true` when
    /// no stanza ran.
    pub compose_ok: bool,
    /// Conjunction of every bits stanza's gate: zero certification
    /// violations, pruned/unpruned agreement on every non-certified
    /// cell, and the workload's pinned reduction floor met. `true` when
    /// no stanza ran.
    pub bits_ok: bool,
    /// Conjunction of every snapshot leg's gate: the snapshot-resumed
    /// outcome table identical to the from-t=0 table, the workload's
    /// pinned speedup floor met, and its absolute experiments/second
    /// floor met. `true` when no leg ran.
    pub snapshot_ok: bool,
    /// Conjunction of every workload's streamed-speedup floor (the
    /// guard against re-introducing the streamed-path regression the
    /// `DeltaRoute` split fixed).
    pub streamed_ok: bool,
    /// Conjunction of every TVD stanza's reproducibility gate: per-site
    /// outcome distributions identical (distance exactly zero) across
    /// every pinned pool size. `true` when no stanza ran.
    pub tvd_ok: bool,
}

/// The compose stanza's CI gate (see [`PerfReport::compose_ok`]).
pub fn compose_gate(c: &ComposeStats) -> bool {
    let fresh_ok = c.precision >= 0.95 && c.conservative_fraction >= 1.0 && c.recall >= 0.9;
    let incr_ok = c.incremental.as_ref().is_none_or(|i| {
        i.dirty_sections == 1 && i.recall_after_edit >= 0.9 && i.precision_after_edit >= 0.95
    });
    fresh_ok && incr_ok
}

/// The bits stanza's CI gate (see [`PerfReport::bits_ok`]): the map must
/// be sound (no certified bit observed as SDC/crash), the pruned
/// campaign must reproduce the unpruned outcome on every cell it still
/// runs, and the work saving must meet the workload's pinned floor.
pub fn bits_gate(b: &BitsStats) -> bool {
    b.violations == 0 && b.agree_non_certified && b.reduction_factor >= b.min_reduction
}

/// The snapshot leg's CI gate (see [`PerfReport::snapshot_ok`]):
/// resume must be bit-exact, and paper-scale workloads additionally
/// pin a speedup floor over the plain streamed path and an absolute
/// experiments/second floor against the historical baseline.
pub fn snapshot_gate(s: &SnapshotStats) -> bool {
    s.identical && s.speedup_vs_streamed >= s.min_speedup && s.experiments_per_sec >= s.min_eps
}

/// The streamed-speedup CI gate (see [`PerfReport::streamed_ok`]).
pub fn streamed_gate(w: &WorkloadReport) -> bool {
    w.speedup_streamed_vs_buffered >= w.min_streamed_speedup
}

/// The TVD stanza's CI gate (see [`PerfReport::tvd_ok`]): campaign
/// outcomes must be a pure function of the fault, independent of how
/// many workers the pool schedules them across.
pub fn tvd_gate(t: &TvdStats) -> bool {
    t.deterministic && t.max_tvd == 0.0 && t.diverging_sites == 0
}

/// Run the full suite at the chosen tier.
pub fn run_suite(quick: bool) -> PerfReport {
    let workloads: Vec<WorkloadReport> = perf_suite(quick).iter().map(run_workload).collect();
    let all_paths_agree = workloads.iter().all(|w| w.paths_agree);
    let compose_ok = workloads
        .iter()
        .filter_map(|w| w.compose.as_ref())
        .all(compose_gate);
    let bits_ok = workloads
        .iter()
        .filter_map(|w| w.bits_map.as_ref())
        .all(bits_gate);
    let snapshot_ok = workloads
        .iter()
        .filter_map(|w| w.snapshot.as_ref())
        .all(snapshot_gate);
    let streamed_ok = workloads.iter().all(streamed_gate);
    let tvd_ok = workloads
        .iter()
        .filter_map(|w| w.tvd.as_ref())
        .all(tvd_gate);
    PerfReport {
        quick,
        threads: rayon::current_num_threads(),
        workloads,
        all_paths_agree,
        compose_ok,
        bits_ok,
        snapshot_ok,
        streamed_ok,
        tvd_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared quick-tier run: with eight workloads the suite is the
    /// dominant cost of this crate's tests, so both tests read the same
    /// report instead of each paying for their own.
    fn quick_report() -> &'static PerfReport {
        static REPORT: std::sync::OnceLock<PerfReport> = std::sync::OnceLock::new();
        REPORT.get_or_init(|| run_suite(true))
    }

    #[test]
    fn quick_suite_paths_agree() {
        let report = quick_report();
        assert_eq!(report.workloads.len(), 8);
        assert!(report.all_paths_agree);
        for w in &report.workloads {
            assert!(w.golden_bytes_compact < w.golden_bytes_full);
            for p in &w.paths {
                assert!(p.experiments_per_sec > 0.0, "{}/{}", w.name, p.path);
            }
            let sb = w
                .staticbound
                .as_ref()
                .unwrap_or_else(|| panic!("{}: static stanza missing", w.name));
            assert_eq!(sb.n_injections_static, 0, "{}", w.name);
            assert!(sb.n_edges > 0, "{}", w.name);
            assert!(
                sb.precision >= 0.95,
                "{}: static precision {}",
                w.name,
                sb.precision
            );
            assert!(sb.recall > 0.0, "{}", w.name);
        }
        let jacobi = &report.workloads[0];
        let c = jacobi.compose.as_ref().expect("jacobi compose stanza");
        assert!(report.compose_ok, "compose gate failed: {c:?}");
        assert!(c.n_sections >= 4, "{} sections", c.n_sections);
        let i = c.incremental.as_ref().expect("incremental leg");
        assert_eq!(i.dirty_sections, 1, "edit must dirty exactly one section");
        assert_eq!(i.reused_sections, c.n_sections - 1);
        assert!(i.n_injections < c.n_injections);
        assert!(report.bits_ok, "bit-prune gate failed");
        assert!(report.snapshot_ok, "snapshot gate failed");
        assert!(report.streamed_ok, "streamed-speedup gate failed");
        assert!(report.tvd_ok, "serial-vs-parallel TVD gate failed");
        for w in &report.workloads {
            // only the checkpoint-instrumented kernels carry the leg
            match w.name.as_str() {
                "jacobi" | "gemm" | "cg" => {
                    let s = w
                        .snapshot
                        .as_ref()
                        .unwrap_or_else(|| panic!("{}: snapshot leg missing", w.name));
                    assert!(s.identical, "{}: snapshot resume diverged", w.name);
                    assert!(s.snapshots > 0, "{}", w.name);
                    assert!(s.store_mb > 0.0, "{}", w.name);
                }
                _ => assert!(
                    w.snapshot.is_none(),
                    "{}: snapshot leg on a non-snapshot-capable kernel",
                    w.name
                ),
            }
        }
        for w in &report.workloads {
            let t = w
                .tvd
                .as_ref()
                .unwrap_or_else(|| panic!("{}: tvd stanza missing", w.name));
            assert_eq!(t.thread_counts, vec![1, 8], "{}", w.name);
            assert!(t.deterministic, "{}: outcomes depend on pool size", w.name);
            assert_eq!(t.max_tvd, 0.0, "{}", w.name);
            assert_eq!(t.diverging_sites, 0, "{}", w.name);
            assert_eq!(
                t.n_experiments,
                w.n_sites as u64 * u64::from(w.bits),
                "{}",
                w.name
            );
        }
        for w in &report.workloads {
            let b = w
                .bits_map
                .as_ref()
                .unwrap_or_else(|| panic!("{}: bits stanza missing", w.name));
            assert_eq!(b.violations, 0, "{}: certified bit was not masked", w.name);
            assert!(b.agree_non_certified, "{}: pruned run diverged", w.name);
            assert!(
                b.reduction_factor >= b.min_reduction,
                "{}: reduction {} < floor {}",
                w.name,
                b.reduction_factor,
                b.min_reduction
            );
            assert!(b.pruned_experiments < b.unpruned_experiments, "{}", w.name);
        }
    }

    #[test]
    fn report_serialises() {
        let report = quick_report().clone();
        let doc = merge_tier(None, &report);
        let schema_of =
            |d: &serde_json::Value| d.get("schema").and_then(|s| s.as_str().map(String::from));
        let tier_of =
            |d: &serde_json::Value, t: &str| d.get("tiers").and_then(|v| v.get(t)).cloned();
        assert_eq!(schema_of(&doc).as_deref(), Some(BENCH_SCHEMA));
        assert!(tier_of(&doc, "quick").is_some_and(|v| v.is_object()));
        assert!(tier_of(&doc, "full").is_none());
        // a second merge of the other tier must not clobber the first
        let mut full = report.clone();
        full.quick = false;
        let doc = merge_tier(Some(doc), &full);
        assert!(tier_of(&doc, "quick").is_some_and(|v| v.is_object()));
        assert!(tier_of(&doc, "full").is_some_and(|v| v.is_object()));
        // a foreign schema is discarded, not migrated
        let stale: serde_json::Value =
            serde_json::from_str(r#"{"schema": "ftb-bench/extraction-v4"}"#).unwrap();
        let doc = merge_tier(Some(stale), &report);
        assert_eq!(schema_of(&doc).as_deref(), Some(BENCH_SCHEMA));
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("jacobi"));
        assert!(json.contains("\"staticbound\""));
        assert!(json.contains("\"n_injections_static\": 0"));
        assert!(json.contains("\"compose\""));
        assert!(json.contains("\"dirty_sections\": 1"));
        assert!(json.contains("\"bits_map\""));
        assert!(json.contains("\"reduction_factor\""));
        assert!(json.contains("\"agree_non_certified\""));
        assert!(json.contains("\"bits_ok\""));
        assert!(json.contains("\"snapshot\""));
        assert!(json.contains("\"speedup_vs_streamed\""));
        assert!(json.contains("\"snapshot_ok\""));
        assert!(json.contains("\"streamed_ok\""));
        assert!(json.contains("\"tvd\""));
        assert!(json.contains("\"max_tvd\""));
        assert!(json.contains("\"tvd_ok\""));
        for name in ["lu", "fft", "stencil", "matvec", "spmv"] {
            assert!(json.contains(&format!("\"{name}\"")), "{name} missing");
        }
    }
}
