//! Disk cache for expensive ground-truth artifacts.
//!
//! The exhaustive campaign for a suite kernel costs seconds to tens of
//! seconds; several table/figure binaries need the same ground truth.
//! Results are cached under `target/ftb-cache/` (override with the
//! `FTB_CACHE_DIR` environment variable), keyed by a hash of the kernel
//! configuration and classifier, so editing either invalidates the entry.

use crate::suite::Benchmark;
use ftb_core::SampleSet;
use ftb_inject::{exhaustive_plan, CampaignBinding, ChunkedCampaign, ExhaustiveResult, Injector};
use ftb_kernels::Kernel;
use serde::{de::DeserializeOwned, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;

fn cache_dir() -> PathBuf {
    std::env::var_os("FTB_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/ftb-cache"))
}

fn key_of(bench: &Benchmark, kind: &str, extra: &str) -> PathBuf {
    let cfg = serde_json::to_string(&bench.config).expect("config serialises");
    let mut h = DefaultHasher::new();
    cfg.hash(&mut h);
    bench.tolerance.to_bits().hash(&mut h);
    extra.hash(&mut h);
    cache_dir().join(format!(
        "{}-{kind}-{:016x}.json",
        bench.name.to_lowercase(),
        h.finish()
    ))
}

fn load<T: DeserializeOwned>(path: &PathBuf) -> Option<T> {
    let bytes = std::fs::read(path).ok()?;
    serde_json::from_slice(&bytes).ok()
}

fn store<T: Serialize>(path: &PathBuf, value: &T) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Ok(bytes) = serde_json::to_vec(value) {
        let _ = std::fs::write(path, bytes);
    }
}

/// The exhaustive ground truth for a suite kernel, computed once and
/// cached on disk.
///
/// The campaign itself streams into a crash-safe experiment ledger next
/// to the cache entry, so a ground-truth computation killed partway
/// (a laptop lid close mid-suite) resumes from the completed prefix
/// instead of starting over. The ledger is deleted once the dense
/// result is cached.
pub fn exhaustive_cached(bench: &Benchmark, injector: &Injector<'_>) -> ExhaustiveResult {
    let path = key_of(bench, "exhaustive", "");
    if let Some(cached) = load::<ExhaustiveResult>(&path) {
        if cached.n_sites == injector.n_sites() && cached.bits == injector.bits() {
            return cached;
        }
    }
    eprintln!(
        "[cache] computing exhaustive campaign for {} ({} experiments)…",
        bench.name,
        injector.n_sites() as u64 * u64::from(injector.bits())
    );
    let ledger_path = path.with_extension("ledger.jsonl");
    if let Some(parent) = ledger_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let binding = CampaignBinding {
        kernel: bench.config.clone(),
        classifier: *injector.classifier(),
        n_sites: injector.n_sites(),
        bits: injector.bits(),
        plan: "exhaustive".to_string(),
        bit_prune: None,
        snapshot: None,
    };
    let plan = exhaustive_plan(injector.n_sites(), injector.bits());
    let ex =
        match ChunkedCampaign::new(injector, plan, 1024).with_ledger(&ledger_path, binding, true) {
            Ok(mut cc) => {
                if cc.metrics().resumed > 0 {
                    eprintln!(
                        "[cache] resuming {} from ledger: {} of {} experiments done",
                        bench.name,
                        cc.metrics().resumed,
                        cc.metrics().total
                    );
                }
                match cc.run_to_completion() {
                    Ok(()) => cc.into_exhaustive(),
                    Err(_) => injector.exhaustive(),
                }
            }
            // an unusable ledger (foreign binding, mid-file damage) must not
            // block the suite — recompute directly
            Err(_) => injector.exhaustive(),
        };
    store(&path, &ex);
    let _ = std::fs::remove_file(&ledger_path);
    ex
}

/// A large uniform experiment sample used as *statistical ground truth*
/// where the exhaustive campaign is out of reach (the Table 4 large-input
/// case), cached on disk.
pub fn sampled_truth_cached(
    bench: &Benchmark,
    injector: &Injector<'_>,
    n: usize,
    seed: u64,
) -> SampleSet {
    let path = key_of(bench, "sampled-truth", &format!("{n}-{seed}"));
    if let Some(cached) = load::<SampleSet>(&path) {
        if cached.len() == n.min(injector.n_sites() * injector.bits() as usize) {
            return cached;
        }
    }
    eprintln!(
        "[cache] computing {n}-sample statistical ground truth for {}…",
        bench.name
    );
    let set = SampleSet::sample_uniform_pairs(injector, n, seed);
    store(&path, &set);
    set
}

/// Make a kernel + injector pair for a suite benchmark (helper used by
/// every binary).
pub fn build_injector(bench: &Benchmark) -> (Box<dyn Kernel>, ftb_inject::Classifier) {
    (bench.build(), bench.classifier())
}
