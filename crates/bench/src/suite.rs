//! The shared benchmark suite: the paper's three kernels with laptop- and
//! paper-proportioned configurations and calibrated output tolerances.
//!
//! The paper ran MiniFE CG (47,360 dynamic instructions), SPLASH-2 LU on
//! a 32×32 matrix with 16×16 blocks (754,176) and SPLASH-2 FFT (1,064,960)
//! on LLNL machines; exhaustive ground truth at those sizes is a
//! cluster-scale job. `Scale::Laptop` shrinks each kernel until
//! `sites × bits` fits in seconds-to-minutes on a workstation while
//! preserving the structures the method exercises (CG's zero-init + one-
//! shot setup + iterative region; LU's four block steps; FFT's six
//! steps). `Scale::Paper` keeps the paper's dimensions for users with the
//! compute to spare.

use ftb_core::prelude::*;
use ftb_inject::Classifier;
use ftb_kernels::{CgConfig, CgStorage, FftConfig, Kernel, KernelConfig, LuConfig};
use ftb_trace::Precision;

/// Workload scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Sizes where an exhaustive campaign runs in seconds-to-minutes.
    Laptop,
    /// The paper's original dimensions (exhaustive ground truth is a
    /// cluster-scale job at this setting; sampled methods still run).
    Paper,
}

impl Scale {
    /// Parse from a CLI argument (`--paper-scale` sets [`Scale::Paper`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--paper-scale") {
            Scale::Paper
        } else {
            Scale::Laptop
        }
    }
}

/// One evaluation workload: a kernel configuration plus the domain
/// tolerance `T` its outputs are judged against.
pub struct Benchmark {
    /// Display name matching the paper ("CG", "LU", "FFT").
    pub name: &'static str,
    /// Origin benchmark suite named in the paper's Table 1.
    pub origin: &'static str,
    /// Kernel configuration.
    pub config: KernelConfig,
    /// Output tolerance `T` (L∞), calibrated per kernel — see the
    /// `calibrate` binary.
    pub tolerance: f64,
}

impl Benchmark {
    /// Instantiate the kernel.
    pub fn build(&self) -> Box<dyn Kernel> {
        self.config.build()
    }

    /// The classifier for this workload.
    pub fn classifier(&self) -> Classifier {
        Classifier::new(self.tolerance)
    }

    /// Convenience: build the kernel and open an analysis session.
    pub fn analysis<'k>(&self, kernel: &'k dyn Kernel) -> Analysis<'k> {
        Analysis::new(kernel, self.classifier())
    }
}

/// The paper's three evaluation kernels at the chosen scale.
///
/// Tolerances were calibrated (see the `calibrate` binary) so that each
/// kernel's overall SDC ratio lands in the band the paper reports
/// (CG ≈ 8%, LU ≈ 36%, FFT ≈ 8%): CG's tolerance sits above its f32
/// convergence noise floor; LU's sits at a coarse absolute error because
/// the factorization output is itself the product; FFT's scales with the
/// spectrum magnitude.
pub fn paper_suite(scale: Scale) -> Vec<Benchmark> {
    match scale {
        Scale::Laptop => vec![
            Benchmark {
                name: "CG",
                origin: "MiniFE",
                config: KernelConfig::Cg(CgConfig {
                    grid: 8,
                    rtol: 1e-4,
                    max_iters: 200,
                    precision: Precision::F32,
                    seed: 42,
                    storage: CgStorage::MatrixFree,
                }),
                tolerance: CG_TOLERANCE,
            },
            Benchmark {
                name: "LU",
                origin: "splash2",
                config: KernelConfig::Lu(LuConfig {
                    n: 24,
                    block: 6,
                    precision: Precision::F64,
                    seed: 42,
                }),
                tolerance: LU_TOLERANCE,
            },
            Benchmark {
                name: "FFT",
                origin: "splash2",
                config: KernelConfig::Fft(FftConfig {
                    n1: 16,
                    n2: 16,
                    precision: Precision::F64,
                    seed: 42,
                }),
                tolerance: FFT_TOLERANCE,
            },
        ],
        Scale::Paper => vec![
            Benchmark {
                name: "CG",
                origin: "MiniFE",
                config: KernelConfig::Cg(CgConfig {
                    grid: 20,
                    rtol: 1e-4,
                    max_iters: 1600,
                    precision: Precision::F32,
                    seed: 42,
                    storage: CgStorage::MatrixFree,
                }),
                tolerance: CG_TOLERANCE,
            },
            Benchmark {
                name: "LU",
                origin: "splash2",
                config: KernelConfig::Lu(LuConfig {
                    n: 32,
                    block: 16,
                    precision: Precision::F64,
                    seed: 42,
                }),
                tolerance: LU_TOLERANCE,
            },
            Benchmark {
                name: "FFT",
                origin: "splash2",
                config: KernelConfig::Fft(FftConfig {
                    n1: 32,
                    n2: 32,
                    precision: Precision::F64,
                    seed: 42,
                }),
                tolerance: FFT_TOLERANCE,
            },
        ],
    }
}

/// Calibrated CG output tolerance (L∞ on the solution vector):
/// exhaustive SDC ratio 8.99% vs the paper's 8.2%.
pub const CG_TOLERANCE: f64 = 1e-1;
/// Calibrated LU output tolerance (L∞ on the packed factors):
/// exhaustive SDC ratio 36.17% vs the paper's 35.89%.
pub const LU_TOLERANCE: f64 = 3e-5;
/// Calibrated FFT output tolerance (L∞ on the interleaved spectrum,
/// whose magnitudes reach ~30 for a 256-point transform of unit-range
/// input): exhaustive SDC ratio 8.19% vs the paper's 8.33%.
pub const FFT_TOLERANCE: f64 = 2e0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laptop_suite_builds_and_runs() {
        for b in paper_suite(Scale::Laptop) {
            let k = b.build();
            let g = k.golden();
            assert!(g.n_sites() > 500, "{}: only {} sites", b.name, g.n_sites());
            assert!(
                g.n_sites() < 50_000,
                "{}: {} sites is no longer laptop-exhaustive",
                b.name,
                g.n_sites()
            );
        }
    }

    #[test]
    fn paper_scale_suite_builds_and_records_golden() {
        // the --paper-scale path must stay runnable: kernels build and a
        // golden run completes at the paper's dimensions (exhaustive
        // campaigns there are intentionally out of test scope)
        for b in paper_suite(Scale::Paper) {
            let k = b.build();
            let g = k.golden();
            // note: our store-granularity tracing yields fewer dynamic
            // instructions than the paper's LLVM instruction granularity
            // at the same input dimensions (LU 32x32 = ~8k stores vs the
            // paper's 754k IR-level instructions)
            assert!(
                g.n_sites() > 5_000,
                "{}: paper scale should be large, got {}",
                b.name,
                g.n_sites()
            );
        }
    }

    #[test]
    fn suite_names_match_paper() {
        let names: Vec<&str> = paper_suite(Scale::Laptop).iter().map(|b| b.name).collect();
        assert_eq!(names, ["CG", "LU", "FFT"]);
    }
}
