//! **Figure 1** (concept figure) — what a traditional Monte-Carlo fault
//! injection campaign learns vs what the fault tolerance boundary learns,
//! for the same experiment budget.
//!
//! The paper's figure is schematic; this binary quantifies it: for a
//! ladder of budgets, the campaign's *site coverage* (distinct dynamic
//! instructions it observed at all) against the boundary's coverage
//! (sites with a positive threshold, i.e. a full-resolution prediction).
//!
//! Output: `target/ftb-figures/figure1-<name>.csv` with columns
//! `budget,mc_sites_covered,boundary_sites_covered,mc_sdc_ci_halfwidth`.
//!
//! Usage: `cargo run --release -p ftb-bench --bin figure1`

use ftb_bench::{paper_suite, Scale};
use ftb_core::prelude::*;
use ftb_report::{Series, Table};
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_args();
    for b in &paper_suite(scale) {
        let kernel = b.build();
        let analysis = Analysis::new(kernel.as_ref(), b.classifier());
        let n = analysis.n_sites();
        let bits = usize::from(analysis.golden().precision.bits());

        let mut series = Series::new(&[
            "budget",
            "mc_sites_covered",
            "boundary_sites_covered",
            "mc_sdc_ci_halfwidth",
        ]);
        let mut table = Table::new(&["budget", "MC sites", "boundary sites", "MC CI ±"]);

        for frac in [0.001, 0.005, 0.01, 0.05] {
            let budget_sites = ((frac * n as f64).round() as usize).max(1);
            let budget_exps = budget_sites * bits;

            // the traditional campaign spends the same number of
            // experiments on uniformly random (site, bit) pairs
            let mc = analysis.monte_carlo(budget_exps as u64, 0.95, 31 + budget_sites as u64);

            // the boundary method spends them on full sites + inference
            let samples = SampleSet::sample_sites(analysis.injector(), budget_sites, 77);
            let inf = analysis.infer(&samples, FilterMode::PerSite);
            let covered = (0..n).filter(|&s| inf.boundary.threshold(s) > 0.0).count();

            series.push(&[
                budget_exps as f64,
                mc.distinct_sites as f64,
                covered as f64,
                mc.sdc_ci.half_width(),
            ]);
            table.row(&[
                format!("{budget_exps}"),
                format!(
                    "{} ({:.1}%)",
                    mc.distinct_sites,
                    mc.distinct_sites as f64 / n as f64 * 100.0
                ),
                format!("{covered} ({:.1}%)", covered as f64 / n as f64 * 100.0),
                format!("±{:.2}%", mc.sdc_ci.half_width() * 100.0),
            ]);
        }

        let path = PathBuf::from(format!(
            "target/ftb-figures/figure1-{}.csv",
            b.name.to_lowercase()
        ));
        series.write_csv(&path).expect("write csv");
        println!("\n=== Figure 1 — {} ({} sites) ===", b.name, n);
        print!("{}", table.render());
        println!("csv: {}", path.display());
    }
    println!(
        "\nthe campaign estimates one overall ratio (CI column) and leaves most sites \
         unobserved; the boundary turns the same budget into per-site thresholds"
    );
}
