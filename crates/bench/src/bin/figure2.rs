//! **Figure 2** (concept figure) — the propagation curve of one masked
//! fault injection experiment: inject at dynamic instruction `i`, plot
//! the perturbation `Δx_k` at every subsequent dynamic instruction `k`.
//! Each point on the curve is the Algorithm-1 evidence that instruction
//! `k` tolerates at least `Δx_k`.
//!
//! Output: `target/ftb-figures/figure2-cg.csv` with columns `site,delta`,
//! plus a printed summary of the curve.
//!
//! Usage: `cargo run --release -p ftb-bench --bin figure2`

use ftb_bench::{paper_suite, Scale};
use ftb_core::prelude::*;
use ftb_report::Series;
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_args();
    let b = &paper_suite(scale)[0]; // CG
    let kernel = b.build();
    let analysis = Analysis::new(kernel.as_ref(), b.classifier());
    let injector = analysis.injector();
    let n = analysis.n_sites();

    // find a masked experiment early in the compute region that actually
    // propagates: inject a mid-mantissa flip into the first SpMV store
    let site = n / 3;
    let mut chosen = None;
    for bit in [18u8, 16, 14, 20, 12, 10] {
        let (e, prop) = injector.run_one_traced(site, bit);
        if e.outcome.is_masked() && prop.touched(0.0) > 10 {
            chosen = Some((e, prop));
            break;
        }
    }
    let (e, prop) = chosen.expect("no masked propagating experiment found near site n/3");

    let mut series = Series::new(&["site", "delta"]);
    for (s, d) in prop.iter() {
        series.push(&[s as f64, d]);
    }
    let path = PathBuf::from("target/ftb-figures/figure2-cg.csv");
    series.write_csv(&path).expect("write csv");

    let touched = prop.touched(0.0);
    let max_delta = prop.iter().map(|(_, d)| d).fold(0.0f64, f64::max);
    println!("\n=== Figure 2 — one masked experiment's propagation (CG) ===");
    println!(
        "injected at site {} bit {} (ε = {:.3e}), outcome {:?}, output err {:.3e}",
        e.site, e.bit, e.injected_err, e.outcome, e.output_err
    );
    println!(
        "window: sites {}..{} ({} comparable)   perturbed sites: {}   max Δx: {:.3e}   diverged: {}",
        prop.injected_at,
        prop.compare_len,
        prop.compare_len - prop.injected_at,
        touched,
        max_delta,
        prop.diverged
    );
    println!("every perturbed site k gains the Algorithm-1 evidence \"k tolerates ≥ Δx_k\"");
    println!("csv: {}", path.display());
}
