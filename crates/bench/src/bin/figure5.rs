//! **Figure 5** — prediction precision and recall as functions of the
//! sampling rate {0.1, 0.5, 1, 5, 10, 50}% of dynamic instructions, with
//! the §3.5 filter operation off (top row of the paper's figure) and on
//! (bottom row).
//!
//! Paper shape: recall rises steeply, saturating around 80–90%; without
//! the filter, CG's precision dips as masked propagation data grows and
//! only slowly recovers; with the filter, precision stays ≈100%.
//!
//! Output: `target/ftb-figures/figure5-<name>.csv` with columns
//! `rate,precision_nofilter,recall_nofilter,precision_filter,recall_filter`
//! (trial means), plus printed tables.
//!
//! Usage: `cargo run --release -p ftb-bench --bin figure5 [-- --trials N]`
//! (default 5 trials per point; the paper uses 10 — pass `--trials 10`
//! if you have the patience on one core).

use ftb_bench::{exhaustive_cached, paper_suite, Scale};
use ftb_core::prelude::*;
use ftb_report::{LinePlot, Series, Table};
use ftb_stats::mean;
use std::path::PathBuf;

const RATES: [f64; 6] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5];

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let trials: usize = arg_value("--trials")
        .map(|s| s.parse().unwrap())
        .unwrap_or(5);
    let scale = Scale::from_args();

    for b in &paper_suite(scale) {
        let kernel = b.build();
        let analysis = Analysis::new(kernel.as_ref(), b.classifier());
        let truth = exhaustive_cached(b, analysis.injector());

        let mut series = Series::new(&[
            "rate",
            "precision_nofilter",
            "recall_nofilter",
            "precision_filter",
            "recall_filter",
        ]);
        let mut table = Table::new(&[
            "rate",
            "prec (no filter)",
            "recall (no filter)",
            "prec (filter)",
            "recall (filter)",
        ]);

        for &rate in &RATES {
            let mut acc = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
            for trial in 0..trials {
                let samples = analysis.sample_uniform(rate, 7000 + trial as u64);
                for (i, filter) in [FilterMode::Off, FilterMode::PerSite].iter().enumerate() {
                    let inf = analysis.infer(&samples, *filter);
                    let eval = analysis.evaluate(&inf.boundary, &truth);
                    acc[2 * i].push(eval.precision);
                    acc[2 * i + 1].push(eval.recall);
                }
            }
            let row = [
                rate,
                mean(&acc[0]),
                mean(&acc[1]),
                mean(&acc[2]),
                mean(&acc[3]),
            ];
            series.push(&row);
            table.row(&[
                format!("{:.1}%", rate * 100.0),
                format!("{:.2}%", row[1] * 100.0),
                format!("{:.2}%", row[2] * 100.0),
                format!("{:.2}%", row[3] * 100.0),
                format!("{:.2}%", row[4] * 100.0),
            ]);
        }

        let path = PathBuf::from(format!(
            "target/ftb-figures/figure5-{}.csv",
            b.name.to_lowercase()
        ));
        series.write_csv(&path).expect("write csv");

        let mut plot = LinePlot::new(
            &format!(
                "Figure 5 — {} (precision & recall vs sampling rate)",
                b.name
            ),
            "sampling rate",
            "metric",
        )
        .log_x();
        let col = |idx: usize| -> Vec<(f64, f64)> {
            (0..series.len())
                .map(|r| (series.row(r)[0], series.row(r)[idx]))
                .collect()
        };
        plot.series("precision (no filter)", &col(1));
        plot.series("recall (no filter)", &col(2));
        plot.series("precision (filter)", &col(3));
        plot.series("recall (filter)", &col(4));
        let svg_path = PathBuf::from(format!(
            "target/ftb-figures/figure5-{}.svg",
            b.name.to_lowercase()
        ));
        plot.write_svg(&svg_path, 860, 420).expect("write svg");
        println!(
            "\n=== Figure 5 — {} ({} trials per point) ===",
            b.name, trials
        );
        print!("{}", table.render());
        println!("csv: {}", path.display());
        println!(
            "svg: target/ftb-figures/figure5-{}.svg",
            b.name.to_lowercase()
        );
    }
    println!(
        "\npaper shape: recall saturates at 80-90%; without the filter CG precision dips; \
         with the filter precision stays ~100%"
    );
}
