//! **Table 3** — the adaptive sampling method (§3.4): final sample size
//! and predicted SDC ratio, mean ± std over 10 trials.
//!
//! Paper values: CG 8.2% golden, 1.09%±0.2 samples, 5.3%±0.7 predicted;
//! LU 35.89%, 4.82%±0.4, 36.1%±0.1; FFT 7.83%, 10.2%±0.04, 9.2%±0.08.
//!
//! Usage: `cargo run --release -p ftb-bench --bin table3 [-- --trials N]`

use ftb_bench::{exhaustive_cached, paper_suite, Scale};
use ftb_core::prelude::*;
use ftb_report::Table;
use ftb_stats::Summary;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let trials: usize = arg_value("--trials")
        .map(|s| s.parse().unwrap())
        .unwrap_or(10);
    let scale = Scale::from_args();

    let mut table = Table::new(&["Name", "SDC Ratio", "Sample Size", "Predict SDC Ratio"]);
    for b in &paper_suite(scale) {
        let kernel = b.build();
        let analysis = Analysis::new(kernel.as_ref(), b.classifier());
        let truth = exhaustive_cached(b, analysis.injector());
        let golden_sdc = truth.overall_sdc_ratio();

        let (mut sizes, mut preds) = (Vec::new(), Vec::new());
        for trial in 0..trials {
            let cfg = AdaptiveConfig {
                seed: 5000 + trial as u64,
                ..AdaptiveConfig::default()
            };
            let res = analysis.adaptive(&cfg);
            sizes.push(res.samples.rate(analysis.n_sites()));
            let profile = analysis.profile(&res.inference.boundary, &truth, Some(&res.samples));
            preds.push(profile.overall().1);
        }
        table.row(&[
            b.name.to_string(),
            format!("{:.2}%", golden_sdc * 100.0),
            Summary::of(&sizes).pct(2),
            Summary::of(&preds).pct(2),
        ]);
    }

    println!("\nTable 3: adaptive sampling, {trials} trials (sample size = experiments / sites)\n");
    print!("{}", table.render());
    println!("\npaper: CG 8.2% / 1.09%±0.2 / 5.3%±0.7");
    println!("       LU 35.89% / 4.82%±0.4 / 36.1%±0.1");
    println!("       FFT 7.83% / 10.2%±0.04 / 9.2%±0.08");
}
