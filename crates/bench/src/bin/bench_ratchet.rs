//! Perf-ratchet gate: compare a freshly measured extraction-suite tier
//! against the committed `BENCH_ppopp21.json` and fail on regressions.
//!
//! Usage:
//!   `cargo run --release -p ftb-bench --bin bench_ratchet -- \
//!      --baseline BENCH_ppopp21.json --fresh bench-smoke.json \
//!      [--fresh bench-smoke-2.json ...] [--tier quick] [--tolerance 0.2]`
//!
//! Exits nonzero if any throughput metric in the committed baseline's
//! tier fell more than the tolerance band below its committed value in
//! the fresh run. `--fresh` may repeat: each metric's fresh value is the
//! per-metric **max** across the given runs, so a regression means even
//! the best of N fresh runs could not reach the band — one slow sample
//! on a noisy shared runner is not a regression, N in a row is. Metrics
//! the baseline lacks are skipped — the ratchet only tightens after a
//! number is committed. The delta table goes to stdout and, when
//! `$GITHUB_STEP_SUMMARY` is set, to the job summary.

use ftb_bench::ratchet::{compare, extract_metrics, markdown_table};
use serde_json::Value;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn arg_values(name: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn load_tier(path: &str, tier: &str) -> Option<Value> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| {
            eprintln!("bench_ratchet: cannot read {path}: {e}");
            std::process::exit(2);
        })
        .unwrap();
    let doc: Value = serde_json::from_str(&text)
        .map_err(|e| {
            eprintln!("bench_ratchet: {path} is not valid JSON: {e}");
            std::process::exit(2);
        })
        .unwrap();
    if doc.get("schema").and_then(Value::as_str) != Some(ftb_bench::BENCH_SCHEMA) {
        eprintln!(
            "bench_ratchet: {path} has schema {:?}, expected {:?}",
            doc.get("schema"),
            ftb_bench::BENCH_SCHEMA
        );
        std::process::exit(2);
    }
    doc.get("tiers").and_then(|t| t.get(tier)).cloned()
}

fn main() {
    let baseline_path = arg_value("--baseline").unwrap_or_else(|| "BENCH_ppopp21.json".into());
    let mut fresh_paths = arg_values("--fresh");
    if fresh_paths.is_empty() {
        fresh_paths.push("bench-smoke.json".into());
    }
    let tier = arg_value("--tier").unwrap_or_else(|| "quick".into());
    let tolerance: f64 = arg_value("--tolerance")
        .map(|t| t.parse().expect("--tolerance takes a fraction, e.g. 0.2"))
        .unwrap_or(0.2);
    assert!(
        (0.0..1.0).contains(&tolerance),
        "--tolerance must be in [0, 1)"
    );

    let Some(base_tier) = load_tier(&baseline_path, &tier) else {
        // no committed numbers for this tier yet: nothing to ratchet
        println!("bench_ratchet: {baseline_path} has no '{tier}' tier; nothing to compare");
        return;
    };
    let mut fresh: Vec<(String, f64)> = Vec::new();
    for path in &fresh_paths {
        let Some(fresh_tier) = load_tier(path, &tier) else {
            eprintln!("bench_ratchet: {path} has no '{tier}' tier");
            std::process::exit(2);
        };
        for (name, v) in extract_metrics(&fresh_tier) {
            match fresh.iter_mut().find(|(n, _)| *n == name) {
                Some(e) => e.1 = e.1.max(v),
                None => fresh.push((name, v)),
            }
        }
    }

    let deltas = compare(&extract_metrics(&base_tier), &fresh, tolerance);
    let table = markdown_table(&deltas, tolerance);
    print!("{table}");
    if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&summary) {
            let _ = f.write_all(table.as_bytes());
        }
    }

    let regressed: Vec<_> = deltas.iter().filter(|d| d.regressed).collect();
    if !regressed.is_empty() {
        for d in &regressed {
            eprintln!(
                "FAIL: {} regressed to {:.2}x of committed baseline ({:.3} -> {:.3})",
                d.name, d.ratio, d.baseline, d.fresh
            );
        }
        std::process::exit(1);
    }
}
