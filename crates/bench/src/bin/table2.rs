//! **Table 2** — prediction precision, recall and uncertainty of the
//! inference method at a 1% sampling rate, mean ± std over 10 trials.
//!
//! Paper values: CG 98.64%±0.2 / 94.31%±1.6 / 98.4%±0.8;
//! LU 99.9%±0.01 / 84.58%±0.9 / 99.9%±0.05; FFT 100% / 77.2%±0.19 / 100%.
//!
//! Usage: `cargo run --release -p ftb-bench --bin table2`
//! Flags: `--rate 0.01`, `--trials 10`, `--no-filter`, `--paper-scale`.

use ftb_bench::{exhaustive_cached, paper_suite, Scale};
use ftb_core::prelude::*;
use ftb_report::Table;
use ftb_stats::Summary;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let rate: f64 = arg_value("--rate")
        .map(|s| s.parse().unwrap())
        .unwrap_or(0.01);
    let trials: usize = arg_value("--trials")
        .map(|s| s.parse().unwrap())
        .unwrap_or(10);
    let filter = if std::env::args().any(|a| a == "--no-filter") {
        FilterMode::Off
    } else {
        FilterMode::PerSite
    };
    let scale = Scale::from_args();

    let mut table = Table::new(&["Name", "Precision", "Recall", "Uncertainty"]);
    for b in &paper_suite(scale) {
        let kernel = b.build();
        let analysis = Analysis::new(kernel.as_ref(), b.classifier());
        let truth = exhaustive_cached(b, analysis.injector());

        let (mut ps, mut rs, mut us) = (Vec::new(), Vec::new(), Vec::new());
        for trial in 0..trials {
            let samples = analysis.sample_uniform(rate, 1000 + trial as u64);
            let inf = analysis.infer(&samples, filter);
            let eval = analysis.evaluate(&inf.boundary, &truth);
            ps.push(eval.precision);
            rs.push(eval.recall);
            us.push(analysis.uncertainty(&inf.boundary, &samples));
        }
        table.row(&[
            b.name.to_string(),
            Summary::of(&ps).pct(2),
            Summary::of(&rs).pct(2),
            Summary::of(&us).pct(2),
        ]);
    }

    println!(
        "\nTable 2: inference performance at {:.1}% sampling, {} trials (filter: {:?})\n",
        rate * 100.0,
        trials,
        filter
    );
    print!("{}", table.render());
    println!("\npaper: CG 98.64%±0.2 / 94.31%±1.6 / 98.4%±0.8");
    println!("       LU 99.9%±0.01 / 84.58%±0.9 / 99.9%±0.05");
    println!("       FFT 100% / 77.2%±0.19 / 100%");
}
