//! **§5 "Overhead" study** — the memory and time costs the paper
//! discusses: the golden-trace footprint per kernel, the
//! instrumentation-overhead of tracing, and the buffered-vs-lockstep
//! propagation extraction trade-off (computation duplication, the
//! paper's proposed fix, implemented in `ftb_inject::lockstep`).
//!
//! Usage: `cargo run --release -p ftb-bench --bin overhead`

use ftb_bench::{paper_suite, Scale};
use ftb_inject::{fold_propagation_lockstep, Classifier};
use ftb_report::Table;
use ftb_trace::{propagation, FaultSpec, RecordMode};
use std::time::Instant;

fn main() {
    let suite = paper_suite(Scale::from_args());

    println!("\n=== golden-trace memory (the paper's §5 storage cost) ===\n");
    let mut t = Table::new(&[
        "bench",
        "sites",
        "trace KiB",
        "compact KiB",
        "bytes/site",
        "untraced run",
        "golden record",
    ]);
    for b in &suite {
        let kernel = b.build();
        let g = kernel.golden();
        let compact = ftb_trace::CompactGolden::from_golden(&g);

        let time_of = |f: &dyn Fn()| {
            let reps = 20;
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_secs_f64() / reps as f64
        };
        let untraced = time_of(&|| {
            kernel.run_untraced();
        });
        let recorded = time_of(&|| {
            kernel.golden();
        });

        t.row(&[
            b.name.to_string(),
            g.n_sites().to_string(),
            format!("{:.1}", g.memory_bytes() as f64 / 1024.0),
            format!(
                "{:.1} ({:.0}%)",
                compact.memory_bytes() as f64 / 1024.0,
                compact.memory_bytes() as f64 / g.memory_bytes() as f64 * 100.0
            ),
            format!("{:.1}", g.memory_bytes() as f64 / g.n_sites() as f64),
            format!("{:.1} µs", untraced * 1e6),
            format!("{:.1} µs ({:.2}x)", recorded * 1e6, recorded / untraced),
        ]);
    }
    print!("{}", t.render());

    println!("\n=== propagation extraction: buffered vs lockstep ===\n");
    let mut t = Table::new(&[
        "bench",
        "buffered (O(sites) mem)",
        "lockstep cap=64 (O(cap) mem)",
        "identical fold?",
    ]);
    for b in &suite {
        let kernel = b.build();
        let golden = kernel.golden();
        let classifier = Classifier::new(b.tolerance);
        let site = golden.n_sites() / 4;
        let fault = FaultSpec { site, bit: 20 };

        let t0 = Instant::now();
        let run = kernel.run_injected(fault, RecordMode::Full);
        let prop = propagation(&golden, &run);
        let buffered_time = t0.elapsed().as_secs_f64();
        let buffered: Vec<(usize, f64)> = prop.iter().filter(|&(_, d)| d > 0.0).collect();

        let t0 = Instant::now();
        let mut streamed: Vec<(usize, f64)> = Vec::new();
        let _ = fold_propagation_lockstep(kernel.as_ref(), fault, &classifier, 64, |s, d| {
            streamed.push((s, d));
        });
        let lockstep_time = t0.elapsed().as_secs_f64();

        t.row(&[
            b.name.to_string(),
            format!("{:.2} ms", buffered_time * 1e3),
            format!("{:.2} ms", lockstep_time * 1e3),
            if streamed == buffered {
                "yes".into()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nlockstep trades a second execution (plus channel hand-off) for O(capacity) \
         memory — the §5 'computation duplication' direction, useful when the golden \
         trace itself dominates memory"
    );
}
