//! Diagnostic: per-static-instruction ΔSDC breakdown for CG (not part of
//! the paper's artifact set; used to validate the reproduction).

use ftb_bench::{exhaustive_cached, paper_suite, Scale};
use ftb_core::prelude::*;
use ftb_report::Table;

fn main() {
    let b = &paper_suite(Scale::Laptop)[0];
    let kernel = b.build();
    let analysis = Analysis::new(kernel.as_ref(), b.classifier());
    let truth = exhaustive_cached(b, analysis.injector());
    let boundary = analysis.golden_boundary(&truth);
    let profile = analysis.profile(&boundary, &truth, None);
    let delta = profile.delta();
    let golden = analysis.golden();
    let registry = kernel.registry();

    // aggregate by static instruction
    let n_static = registry.len();
    let mut count = vec![0usize; n_static];
    let mut over = vec![0usize; n_static];
    let mut sum_delta = vec![0.0f64; n_static];
    let mut sum_golden = vec![0.0f64; n_static];
    let mut sum_pred = vec![0.0f64; n_static];
    for (site, &d) in delta.iter().enumerate() {
        let sid = golden.static_id(site).index();
        count[sid] += 1;
        sum_delta[sid] += d;
        sum_golden[sid] += profile.golden[site];
        sum_pred[sid] += profile.predicted[site];
        if d < -1e-9 {
            over[sid] += 1;
        }
    }

    let mut t = Table::new(&[
        "static",
        "region",
        "sites",
        "over%",
        "mean ΔSDC",
        "golden",
        "pred",
    ]);
    for (id, instr) in registry.iter() {
        let i = id.index();
        if count[i] == 0 {
            continue;
        }
        t.row(&[
            instr.name.to_string(),
            instr.region.label().to_string(),
            count[i].to_string(),
            format!("{:.1}%", over[i] as f64 / count[i] as f64 * 100.0),
            format!("{:+.3}%", sum_delta[i] / count[i] as f64 * 100.0),
            format!("{:.2}%", sum_golden[i] / count[i] as f64 * 100.0),
            format!("{:.2}%", sum_pred[i] / count[i] as f64 * 100.0),
        ]);
    }
    print!("{}", t.render());
}
