//! **Figure 3** — histograms of `ΔSDC = Golden_SDC − Approx_SDC` per
//! dynamic instruction, where the approximation comes from the boundary
//! built out of the exhaustive campaign (§4.1).
//!
//! Paper findings: the mass sits at ΔSDC = 0; 10.7% (LU) and 9.3% (CG)
//! of sites show non-monotonic behaviour whose SDC ratio the boundary
//! *overestimates* by ~1.5% (a small tail up to 3–14%); FFT is exact.
//!
//! Usage: `cargo run --release -p ftb-bench --bin figure3 [-- --paper-scale]`
//! CSV series are written to `target/ftb-figures/figure3-<name>.csv`.

use ftb_bench::{exhaustive_cached, paper_suite, Scale};
use ftb_core::prelude::*;
use ftb_report::{render_histogram, Series};
use ftb_stats::Histogram;
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_args();
    for b in &paper_suite(scale) {
        let kernel = b.build();
        let analysis = Analysis::new(kernel.as_ref(), b.classifier());
        let truth = exhaustive_cached(b, analysis.injector());
        let boundary = analysis.golden_boundary(&truth);
        // the paper-style construction: prediction from the thresholds
        // alone (finite-error crashes count as assumed SDC)
        let profile = analysis.profile(&boundary, &truth, None);
        let delta = profile.delta();
        // ablation: crash outcomes treated as known campaign data
        let crashes = crash_known_set(analysis.golden(), &truth);
        let delta_ck = analysis.profile(&boundary, &truth, Some(&crashes)).delta();

        // histogram over ΔSDC (paper-style)
        let mut h = Histogram::new(-0.25, 0.25, 50);
        h.extend(&delta);

        let stats = |d: &[f64]| {
            let over = d.iter().filter(|&&x| x < -1e-9).count();
            let under = d.iter().filter(|&&x| x > 1e-9).count();
            let mean_over = if over > 0 {
                -d.iter().filter(|&&x| x < -1e-9).sum::<f64>() / over as f64
            } else {
                0.0
            };
            (over, under, mean_over)
        };
        let (over, under, mean_over) = stats(&delta);
        let (over_ck, _, mean_over_ck) = stats(&delta_ck);

        println!(
            "\n=== Figure 3 — {} (ΔSDC = golden − approx, per site) ===",
            b.name
        );
        println!(
            "sites: {}   exact: {:.1}%   overestimated: {:.1}% (mean {:.2}%)   underestimated: {:.1}%",
            delta.len(),
            profile.exact_fraction(1e-9) * 100.0,
            over as f64 / delta.len() as f64 * 100.0,
            mean_over * 100.0,
            under as f64 / delta.len() as f64 * 100.0,
        );
        println!(
            "crash-known ablation: overestimated {:.1}% (mean {:.2}%) — the tail is mostly \
             finite-error crash confusion",
            over_ck as f64 / delta.len() as f64 * 100.0,
            mean_over_ck * 100.0,
        );
        print!("{}", render_histogram(&h, 50));

        let mut series = Series::new(&["bin_center", "count"]);
        for i in 0..h.bins() {
            series.push(&[h.bin_center(i), h.counts()[i] as f64]);
        }
        let path = PathBuf::from(format!(
            "target/ftb-figures/figure3-{}.csv",
            b.name.to_lowercase()
        ));
        series.write_csv(&path).expect("write csv");
        println!("csv: {}", path.display());
    }
    println!(
        "\npaper: LU 10.7% and CG 9.3% of sites non-monotonic, overestimated ~1.5%; FFT exact"
    );
}
