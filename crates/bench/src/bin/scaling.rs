//! **Scaling study** (extends §4.6 / Table 4): how recall at a *fixed
//! sampling rate* grows with program size.
//!
//! This is the mechanism behind every gap between our laptop-scale
//! numbers and the paper's: one masked experiment certifies thresholds
//! for every later instruction its error reaches, so the per-sample
//! coverage — and with it recall and adaptive-sampling efficiency —
//! grows with the execution length. The paper's programs are 100–400×
//! longer than our defaults.
//!
//! Output: `target/ftb-figures/scaling.csv` with columns
//! `sites,rate,recall,precision`, plus a printed table.
//!
//! Usage: `cargo run --release -p ftb-bench --bin scaling`

use ftb_bench::suite::{CG_TOLERANCE, FFT_TOLERANCE};
use ftb_bench::{exhaustive_cached, sampled_truth_cached, Benchmark};
use ftb_core::prelude::*;
use ftb_kernels::{CgConfig, FftConfig, KernelConfig};
use ftb_report::{Series, Table};
use ftb_trace::Precision;

const RATE: f64 = 0.01;
const TRUTH_SAMPLES: usize = 30_000;

fn cg_bench(grid: usize) -> Benchmark {
    Benchmark {
        name: "CG",
        origin: "MiniFE",
        config: KernelConfig::Cg(CgConfig {
            grid,
            rtol: 1e-4,
            max_iters: 4 * grid * grid,
            precision: Precision::F32,
            seed: 42,
            storage: ftb_kernels::CgStorage::MatrixFree,
        }),
        tolerance: CG_TOLERANCE,
    }
}

fn fft_bench(n1: usize, n2: usize) -> Benchmark {
    Benchmark {
        name: "FFT",
        origin: "splash2",
        config: KernelConfig::Fft(FftConfig {
            n1,
            n2,
            precision: Precision::F64,
            seed: 42,
        }),
        tolerance: FFT_TOLERANCE,
    }
}

fn main() {
    let mut table = Table::new(&[
        "bench",
        "size",
        "sites",
        "1% sample",
        "recall",
        "precision",
        "truth",
    ]);
    let mut series = Series::new(&["sites", "rate", "recall", "precision"]);

    let mut configs: Vec<(String, Benchmark)> = Vec::new();
    for grid in [5usize, 8, 12, 16] {
        configs.push((format!("{grid}x{grid}"), cg_bench(grid)));
    }
    for (n1, n2) in [(8usize, 8usize), (16, 8), (16, 16), (32, 16)] {
        configs.push((format!("{}pt", n1 * n2), fft_bench(n1, n2)));
    }

    for (size_label, b) in configs {
        let kernel = b.build();
        let analysis = Analysis::new(kernel.as_ref(), b.classifier());
        let n = analysis.n_sites();
        let exhaustive_feasible = analysis.golden().n_experiments() < 500_000;

        let samples = analysis.sample_uniform(RATE, 4242);
        let inf = analysis.infer(&samples, FilterMode::PerSite);
        let predictor = analysis.predictor(&inf.boundary);

        let (eval, truth_kind) = if exhaustive_feasible {
            let truth = exhaustive_cached(&b, analysis.injector());
            (
                BoundaryEval::against_exhaustive(&predictor, &truth),
                "exhaustive",
            )
        } else {
            let truth = sampled_truth_cached(&b, analysis.injector(), TRUTH_SAMPLES, 7);
            (
                BoundaryEval::from_truth(
                    &predictor,
                    truth
                        .experiments()
                        .iter()
                        .map(|e| (e.site, e.bit, e.outcome)),
                ),
                "sampled",
            )
        };

        table.row(&[
            b.name.to_string(),
            size_label,
            n.to_string(),
            format!("{} exps", samples.len()),
            format!("{:.2}%", eval.recall * 100.0),
            format!("{:.2}%", eval.precision * 100.0),
            truth_kind.to_string(),
        ]);
        series.push(&[n as f64, RATE, eval.recall, eval.precision]);
    }

    println!("\nScaling: recall at a fixed 1% site-sampling rate vs program size\n");
    print!("{}", table.render());
    let path = std::path::PathBuf::from("target/ftb-figures/scaling.csv");
    series.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
    println!(
        "\nrecall per sample grows with execution length — the reason the paper's \
         47k-1M-site programs reach 77-94% recall at 1% while our laptop kernels need \
         higher rates (EXPERIMENTS.md, Table 2 discussion)"
    );
}
