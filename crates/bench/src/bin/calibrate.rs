//! Tolerance/size calibration helper.
//!
//! Runs the exhaustive campaign for each suite kernel across a ladder of
//! candidate tolerances and prints the resulting outcome mix, plus basic
//! size/timing data — the evidence behind the calibrated `*_TOLERANCE`
//! constants in `ftb_bench::suite`.
//!
//! Usage:
//! `cargo run --release -p ftb-bench --bin calibrate [-- --bench NAME] [-- --tols 1e-1,1e-2,...]`

use ftb_bench::{paper_suite, Scale};
use ftb_inject::{Classifier, Injector};
use ftb_report::Table;
use std::time::Instant;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let only = arg_value("--bench");
    let tols: Vec<f64> = arg_value("--tols")
        .map(|s| {
            s.split(',')
                .map(|t| t.parse().expect("bad tolerance"))
                .collect()
        })
        .unwrap_or_else(|| (1..=9).map(|e| 10f64.powi(-e)).collect());
    let suite = paper_suite(Scale::Laptop);
    for b in &suite {
        if let Some(ref o) = only {
            if !b.name.eq_ignore_ascii_case(o) {
                continue;
            }
        }
        let kernel = b.build();
        let golden = kernel.golden();
        println!(
            "\n=== {} ({}) — {} sites × {} bits = {} experiments, golden trace {:.1} KiB ===",
            b.name,
            b.origin,
            golden.n_sites(),
            golden.precision.bits(),
            golden.n_experiments(),
            golden.memory_bytes() as f64 / 1024.0
        );

        let mut table = Table::new(&["tolerance", "masked", "SDC", "crash", "SDC ratio", "secs"]);
        for &tol in &tols {
            let inj = Injector::with_golden(kernel.as_ref(), golden.clone(), Classifier::new(tol));
            let t0 = Instant::now();
            let ex = inj.exhaustive();
            let secs = t0.elapsed().as_secs_f64();
            let (m, s, c) = ex.counts();
            table.row(&[
                format!("{tol:.1e}"),
                m.to_string(),
                s.to_string(),
                c.to_string(),
                format!("{:.2}%", ex.overall_sdc_ratio() * 100.0),
                format!("{secs:.2}"),
            ]);
        }
        print!("{}", table.render());
    }
}
