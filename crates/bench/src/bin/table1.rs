//! **Table 1** — "Comparison of the known true SDC ratio with the
//! approximated SDC ratio from the fault tolerance boundary constructed
//! using an exhaustive fault injection campaign."
//!
//! Paper values: CG 8.2% → 8.92%, LU 35.89% → 36.06%, FFT 8.33% → 8.33%.
//!
//! Usage: `cargo run --release -p ftb-bench --bin table1 [-- --paper-scale]`

use ftb_bench::{exhaustive_cached, paper_suite, Scale};
use ftb_core::prelude::*;
use ftb_report::Table;

fn main() {
    let scale = Scale::from_args();
    let mut table = Table::new(&[
        "Name",
        "Benchmark",
        "Golden_SDC",
        "Approx_SDC",
        "Approx_SDC (crash-naive)",
        "Size",
    ]);

    for b in &paper_suite(scale) {
        let kernel = b.build();
        let analysis = Analysis::new(kernel.as_ref(), b.classifier());
        let truth = exhaustive_cached(b, analysis.injector());

        // the boundary built from the exhaustive data itself (§4.1);
        // crash outcomes are detected (non-silent) campaign data, so the
        // primary column treats them as known — see EXPERIMENTS.md
        let boundary = analysis.golden_boundary(&truth);
        let predictor = analysis.predictor(&boundary);
        let crashes = crash_known_set(analysis.golden(), &truth);
        let golden_sdc = truth.overall_sdc_ratio();
        let approx_sdc = predictor.overall_sdc_ratio(Some(&crashes));
        let approx_naive = predictor.overall_sdc_ratio(None);

        table.row(&[
            b.name.to_string(),
            b.origin.to_string(),
            format!("{:.2}%", golden_sdc * 100.0),
            format!("{:.2}%", approx_sdc * 100.0),
            format!("{:.2}%", approx_naive * 100.0),
            analysis.n_sites().to_string(),
        ]);
    }

    println!("\nTable 1: golden vs boundary-approximated SDC ratio (exhaustive campaign)\n");
    print!("{}", table.render());
    println!("\npaper: CG 8.2% -> 8.92%, LU 35.89% -> 36.06%, FFT 8.33% -> 8.33%");
    println!("(sizes differ: laptop-scale inputs, see DESIGN.md §6)");
}
