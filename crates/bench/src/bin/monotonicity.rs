//! **§5 monotonicity analysis** — experimental verification of the
//! paper's closed-form claims:
//!
//! * 2-D stencil: an error ε injected into one cell propagates as
//!   `f(ε) = C·ε` (L2 output error linear in ε);
//! * matvec: an error in `x_k` gives `f(ε) = sqrt(Σ_i a_{ik}²)·ε`,
//!   with the constant computable in closed form;
//! * and, by contrast, CG (an iterative method with data-dependent
//!   control flow) is *not* monotonic — the empirical source of the
//!   non-monotonic sites in Figure 3.
//!
//! Output: `target/ftb-figures/monotonicity-<kernel>.csv` with columns
//! `epsilon,output_err`, plus printed `C` estimates per bit.
//!
//! Usage: `cargo run --release -p ftb-bench --bin monotonicity`

use ftb_core::prelude::*;
use ftb_inject::Classifier;
use ftb_kernels::{Kernel, MatvecConfig, MatvecKernel, StencilConfig, StencilKernel};
use ftb_report::{Series, Table};
use ftb_trace::norms::Norm;
use ftb_trace::{FaultSpec, RecordMode};
use std::path::PathBuf;

/// Sweep mantissa bits at `site`, measuring ε and the L2 output error.
fn sweep(kernel: &dyn Kernel, site: usize, bits: &[u8]) -> Vec<(f64, f64)> {
    let golden = kernel.golden();
    bits.iter()
        .filter_map(|&bit| {
            let r = kernel.run_injected(FaultSpec { site, bit }, RecordMode::OutputOnly);
            let eps = r.injected_err?;
            if !eps.is_finite() || eps == 0.0 {
                return None;
            }
            let err = Norm::L2.distance(&golden.output, &r.output);
            Some((eps, err))
        })
        .collect()
}

fn report(name: &str, points: &[(f64, f64)], predicted_c: Option<f64>) {
    let mut table = Table::new(&["epsilon", "f(epsilon)", "C = f/eps"]);
    let mut series = Series::new(&["epsilon", "output_err"]);
    let mut cs = Vec::new();
    for &(eps, err) in points {
        series.push(&[eps, err]);
        let c = err / eps;
        cs.push(c);
        table.row(&[
            format!("{eps:.3e}"),
            format!("{err:.3e}"),
            format!("{c:.6}"),
        ]);
    }
    let path = PathBuf::from(format!("target/ftb-figures/monotonicity-{name}.csv"));
    series.write_csv(&path).expect("write csv");
    println!("\n=== §5 monotonicity — {name} ===");
    print!("{}", table.render());
    let (min_c, max_c) = cs.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &c| {
        (lo.min(c), hi.max(c))
    });
    let spread = (max_c - min_c) / max_c.max(1e-300);
    println!("C spread over 3 decades of ε: {:.2e} (linear ⇒ ~0)", spread);
    if let Some(pc) = predicted_c {
        println!(
            "closed-form C = {pc:.6} (vs measured {:.6})",
            cs[cs.len() / 2]
        );
    }
    println!("csv: {}", path.display());
}

fn main() {
    // Stencil: inject into an interior cell's first-sweep store.
    let stencil = StencilKernel::new(StencilConfig::small());
    let g = stencil.config().grid;
    let site = g * g + g + 3;
    let pts = sweep(&stencil, site, &[30, 35, 40, 44, 46, 48, 50]);
    report("stencil", &pts, None);

    // Matvec: inject into x[k]; closed form C = ||A[:,k]||₂.
    let matvec = MatvecKernel::new(MatvecConfig::small());
    let col = 5;
    let pts = sweep(&matvec, matvec.x_site(col), &[30, 35, 40, 44, 46, 48, 50]);
    report("matvec", &pts, Some(matvec.l2_constant(col)));

    // Contrast: CG is not monotonic — find a site where a smaller ε gives
    // a *larger* (or SDC) outcome than some bigger ε.
    let cg = ftb_kernels::CgKernel::new(ftb_kernels::CgConfig::small());
    let analysis = Analysis::new(&cg, Classifier::new(1e-1));
    let n = analysis.n_sites();
    let mut found = None;
    'outer: for site in (n / 3)..(n / 3 + 400) {
        let mut results: Vec<(f64, Outcome)> = Vec::new();
        for bit in 0..32u8 {
            let e = analysis.injector().run_one(site, bit);
            if e.injected_err.is_finite() && e.injected_err > 0.0 {
                results.push((e.injected_err, e.outcome));
            }
        }
        results.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in results.windows(2) {
            if w[0].1.is_sdc() && w[1].1.is_masked() {
                found = Some((site, w[0].0, w[1].0));
                break 'outer;
            }
        }
    }
    println!("\n=== §5 contrast — CG non-monotonicity ===");
    match found {
        Some((site, e_sdc, e_masked)) => println!(
            "site {site}: ε = {e_sdc:.3e} causes SDC while the larger ε = {e_masked:.3e} is masked \
             — monotonicity does not hold for the iterative solver"
        ),
        None => println!("no non-monotonic site found in the scanned range (unexpected)"),
    }
}
