//! **Figure 4** — the predictive capability of the boundary inference
//! method, per benchmark, three rows:
//!
//! 1. known-true vs predicted per-site SDC ratio at a 1% uniform sampling
//!    rate (sites grouped as in the paper: mean over consecutive groups);
//! 2. each group's *potential impact* on the prediction — how often its
//!    sites were injected with significant error plus how often corrupted
//!    data propagated to them (relative error > 1e-8);
//! 3. predicted SDC ratio after **adaptive** sampling (paper: 1.09% CG,
//!    4.7% LU, 11.2% FFT).
//!
//! Output: one CSV per benchmark in `target/ftb-figures/figure4-<name>.csv`
//! with columns `group_start,golden,pred_uniform,impact,pred_adaptive`,
//! plus printed summaries.
//!
//! Usage: `cargo run --release -p ftb-bench --bin figure4`

use ftb_bench::{exhaustive_cached, paper_suite, Scale};
use ftb_core::prelude::*;
use ftb_report::grouping::{group_means, group_size_for, group_sums};
use ftb_report::{LinePlot, Series};
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_args();
    for b in &paper_suite(scale) {
        let kernel = b.build();
        let analysis = Analysis::new(kernel.as_ref(), b.classifier());
        let truth = exhaustive_cached(b, analysis.injector());
        let n = analysis.n_sites();
        let gsize = group_size_for(n, 200);

        // Row 1: uniform 1% sampling.
        let samples = analysis.sample_uniform(0.01, 2024);
        let inference = analysis.infer(&samples, FilterMode::PerSite);
        let profile = analysis.profile(&inference.boundary, &truth, Some(&samples));

        // Row 2: potential impact.
        let impact: Vec<f64> = (0..n)
            .map(|s| f64::from(inference.potential_impact(s)))
            .collect();

        // Row 3: adaptive sampling.
        let adaptive = analysis.adaptive(&AdaptiveConfig::default());
        let adaptive_profile = analysis.profile(
            &adaptive.inference.boundary,
            &truth,
            Some(&adaptive.samples),
        );

        let golden_g = group_means(&profile.golden, gsize);
        let pred_g = group_means(&profile.predicted, gsize);
        let impact_g = group_sums(&impact, gsize);
        let pred_a_g = group_means(&adaptive_profile.predicted, gsize);

        let mut series = Series::new(&[
            "group_start",
            "golden",
            "pred_uniform",
            "impact",
            "pred_adaptive",
        ]);
        for i in 0..golden_g.len() {
            series.push(&[
                (i * gsize) as f64,
                golden_g[i],
                pred_g[i],
                impact_g[i],
                pred_a_g[i],
            ]);
        }
        let path = PathBuf::from(format!(
            "target/ftb-figures/figure4-{}.csv",
            b.name.to_lowercase()
        ));
        series.write_csv(&path).expect("write csv");

        let mut plot = LinePlot::new(
            &format!("Figure 4 — {} (per-group SDC ratio)", b.name),
            "dynamic instruction (group start)",
            "SDC ratio",
        );
        let xs: Vec<f64> = (0..golden_g.len()).map(|i| (i * gsize) as f64).collect();
        let zip = |ys: &[f64]| -> Vec<(f64, f64)> {
            xs.iter().copied().zip(ys.iter().copied()).collect()
        };
        plot.series("golden", &zip(&golden_g));
        plot.series("predicted @1%", &zip(&pred_g));
        plot.series("adaptive", &zip(&pred_a_g));
        let svg_path = PathBuf::from(format!(
            "target/ftb-figures/figure4-{}.svg",
            b.name.to_lowercase()
        ));
        plot.write_svg(&svg_path, 860, 420).expect("write svg");

        let (g_overall, p_overall) = profile.overall();
        let (_, pa_overall) = adaptive_profile.overall();
        println!(
            "\n=== Figure 4 — {} ({} sites, groups of {}) ===",
            b.name, n, gsize
        );
        println!(
            "row 1 (1% uniform):   golden SDC {:.2}%   predicted {:.2}%",
            g_overall * 100.0,
            p_overall * 100.0
        );
        println!(
            "row 2 (impact):       min {:.0}  max {:.0} per group",
            impact_g.iter().cloned().fold(f64::INFINITY, f64::min),
            impact_g.iter().cloned().fold(0.0, f64::max)
        );
        println!(
            "row 3 (adaptive):     predicted {:.2}% using {:.2}% of sites ({} experiments, {} rounds)",
            pa_overall * 100.0,
            adaptive.samples.site_rate(n) * 100.0,
            adaptive.samples.len(),
            adaptive.rounds.len()
        );
        println!("csv: {}", path.display());
        println!(
            "svg: target/ftb-figures/figure4-{}.svg",
            b.name.to_lowercase()
        );
    }
    println!("\npaper row 3 sampling: CG 1.09%, LU 4.7%, FFT 11.2% of sites");
}
