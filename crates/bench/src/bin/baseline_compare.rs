//! **Baseline comparison** — the fault tolerance boundary vs the
//! Relyzer-style pilot-grouping heuristic (the paper's §6 related-work
//! family), at equal experiment budgets.
//!
//! For each suite kernel: run the grouping baseline, record its budget,
//! give the boundary method the same budget (uniform site sampling), and
//! compare (a) per-site SDC mean absolute error against exhaustive
//! ground truth and (b) overall-SDC error. The paper's qualitative claim
//! is that propagation data lets every sample inform *many* sites, while
//! a pilot informs only its own group.
//!
//! Usage: `cargo run --release -p ftb-bench --bin baseline_compare`

use ftb_bench::{exhaustive_cached, paper_suite, Scale};
use ftb_core::prelude::*;
use ftb_report::Table;

fn mean_abs_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

fn main() {
    let scale = Scale::from_args();
    let mut table = Table::new(&[
        "bench",
        "budget (runs)",
        "pilot groups",
        "pilot per-site MAE",
        "FTB per-site MAE",
        "pilot overall err",
        "FTB overall err",
    ]);

    for b in &paper_suite(scale) {
        let kernel = b.build();
        let analysis = Analysis::new(kernel.as_ref(), b.classifier());
        let truth = exhaustive_cached(b, analysis.injector());
        let golden_per_site = truth.sdc_ratio_per_site();
        let golden_overall = truth.overall_sdc_ratio();
        let bits = usize::from(analysis.golden().precision.bits());

        // baseline: pilot grouping
        let pilot = pilot_estimate(analysis.injector(), &PilotConfig::default());
        let budget = pilot.samples.len();

        // boundary method at the same budget
        let sites = (budget / bits).max(1);
        let samples = SampleSet::sample_sites(analysis.injector(), sites, 2718);
        let inference = analysis.infer(&samples, FilterMode::PerSite);
        let predictor = analysis.predictor(&inference.boundary);
        let ftb_per_site = predictor.sdc_ratio_per_site(Some(&samples));
        let ftb_overall = predictor.overall_sdc_ratio(Some(&samples));

        table.row(&[
            b.name.to_string(),
            budget.to_string(),
            pilot.n_groups.to_string(),
            format!(
                "{:.2}%",
                mean_abs_err(&pilot.per_site, &golden_per_site) * 100.0
            ),
            format!(
                "{:.2}%",
                mean_abs_err(&ftb_per_site, &golden_per_site) * 100.0
            ),
            format!(
                "{:+.2}%",
                (pilot.overall_sdc_ratio() - golden_overall) * 100.0
            ),
            format!("{:+.2}%", (ftb_overall - golden_overall) * 100.0),
        ]);
    }

    println!("\nBaseline comparison: pilot grouping (Relyzer-style) vs fault tolerance boundary,");
    println!("equal experiment budgets, per-site mean absolute SDC error vs exhaustive truth\n");
    print!("{}", table.render());

    // budget sweep: how the boundary's per-site error falls as its budget
    // grows (the pilot heuristic's error is fixed by its grouping
    // assumption; the boundary converges to the truth)
    let mut sweep = Table::new(&[
        "bench",
        "pilot MAE",
        "FTB 1x",
        "FTB 4x",
        "FTB 16x",
        "FTB adaptive",
    ]);
    for b in &paper_suite(scale) {
        let kernel = b.build();
        let analysis = Analysis::new(kernel.as_ref(), b.classifier());
        let truth = exhaustive_cached(b, analysis.injector());
        let golden_per_site = truth.sdc_ratio_per_site();
        let bits = usize::from(analysis.golden().precision.bits());

        let pilot = pilot_estimate(analysis.injector(), &PilotConfig::default());
        let base_sites = (pilot.samples.len() / bits).max(1);

        let mut cells = vec![
            b.name.to_string(),
            format!(
                "{:.2}%",
                mean_abs_err(&pilot.per_site, &golden_per_site) * 100.0
            ),
        ];
        for mult in [1usize, 4, 16] {
            let sites = (base_sites * mult).min(analysis.n_sites());
            let samples = SampleSet::sample_sites(analysis.injector(), sites, 2718);
            let inference = analysis.infer(&samples, FilterMode::PerSite);
            let per_site = analysis
                .predictor(&inference.boundary)
                .sdc_ratio_per_site(Some(&samples));
            cells.push(format!(
                "{:.2}%",
                mean_abs_err(&per_site, &golden_per_site) * 100.0
            ));
        }
        let adaptive = analysis.adaptive(&AdaptiveConfig::default());
        let per_site = analysis
            .predictor(&adaptive.inference.boundary)
            .sdc_ratio_per_site(Some(&adaptive.samples));
        cells.push(format!(
            "{:.2}% ({} runs)",
            mean_abs_err(&per_site, &golden_per_site) * 100.0,
            adaptive.samples.len()
        ));
        sweep.row(&cells);
    }
    println!("\nper-site MAE as the boundary's budget grows (pilot is budget-fixed):\n");
    print!("{}", sweep.render());
    println!(
        "\nthe pilot heuristic is strong where same-static-instruction sites genuinely share \
         behaviour (its founding assumption); the boundary wins where vulnerability varies \
         *within* a code site over execution time, and needs no grouping assumption — the \
         two are complementary, as the paper's §6 notes"
    );
}
