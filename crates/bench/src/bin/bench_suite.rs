//! The extraction-path performance suite: exhaustive + adaptive
//! campaigns over the instrumented kernels at pinned seeds and sizes,
//! run through all three extraction paths, with a machine-readable
//! report (the quick tier also characterizes serial-vs-parallel outcome
//! distributions per workload and gates their TVD at exactly zero).
//!
//! Usage:
//!   `cargo run --release -p ftb-bench --bin bench_suite [-- --quick] [-- --out PATH]`
//!
//! `--quick` runs the tiny CI-smoke tier; the default full tier is what
//! the committed `BENCH_ppopp21.json` reports. Exits nonzero if the
//! three paths disagree on any outcome table — a throughput number from
//! a path that produces different results is meaningless.

use ftb_bench::perf::{merge_tier, run_suite};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_ppopp21.json".to_string());

    let report = run_suite(quick);

    let tier = if quick { "quick" } else { "full" };
    println!(
        "extraction suite ({tier} tier, {} threads)\n",
        report.threads
    );
    for w in &report.workloads {
        println!(
            "{:8} {} sites x {} bits  (golden {:.1} KiB full / {:.1} KiB compact)",
            w.name,
            w.n_sites,
            w.bits,
            w.golden_bytes_full as f64 / 1024.0,
            w.golden_bytes_compact as f64 / 1024.0,
        );
        for p in &w.paths {
            println!(
                "  {:9} {:>9.0} exp/s  ({} experiments in {:.2}s, stride {}, adaptive {:.2}s)",
                p.path,
                p.experiments_per_sec,
                p.exhaustive_experiments,
                p.exhaustive_secs,
                p.site_stride,
                p.adaptive_secs,
            );
        }
        println!(
            "  streamed vs buffered: {:.2}x (floor {:.1})   agree: {}",
            w.speedup_streamed_vs_buffered, w.min_streamed_speedup, w.paths_agree
        );
        if let Some(s) = &w.snapshot {
            println!(
                "  snapshot  {:>9.0} exp/s  ({} experiments in {:.2}s from {} snapshots, \
                 {:.1} MiB store, captured in {:.2}s): {:.2}x vs streamed (floor {:.1}, \
                 eps floor {:.1}), identical {}",
                s.experiments_per_sec,
                s.exhaustive_experiments,
                s.exhaustive_secs,
                s.snapshots,
                s.store_mb,
                s.capture_secs,
                s.speedup_vs_streamed,
                s.min_speedup,
                s.min_eps,
                s.identical,
            );
        }
        if let Some(c) = &w.compose {
            println!(
                "  compose   {} sections, {} injections in {:.2}s: precision {:.4}, \
                 recall {:.4}, conservative {:.1}%",
                c.n_sections,
                c.n_injections,
                c.analyze_secs,
                c.precision,
                c.recall,
                c.conservative_fraction * 100.0,
            );
            if let Some(i) = &c.incremental {
                println!(
                    "  compose~  edit re-ran {} of {} sections ({} injections, {:.2}s): \
                     precision {:.4}, recall {:.4}",
                    i.dirty_sections,
                    c.n_sections,
                    i.n_injections,
                    i.reanalyze_secs,
                    i.precision_after_edit,
                    i.recall_after_edit,
                );
            }
        }
        if let Some(sb) = &w.staticbound {
            println!(
                "  static    {:>6.1} ms record + {:.1} ms backward ({} edges, 0 injections): \
                 precision {:.4}, recall {:.4}, conservative {:.1}%",
                sb.record_secs * 1e3,
                sb.backward_secs * 1e3,
                sb.n_edges,
                sb.precision,
                sb.recall,
                sb.conservative_fraction * 100.0,
            );
        }
        if let Some(t) = &w.tvd {
            println!(
                "  tvd       pools {:?}: max {:.3e}, mean {:.3e} over {} sites \
                 ({} experiments per pool), diverging sites {}, deterministic {}",
                t.thread_counts,
                t.max_tvd,
                t.mean_tvd,
                t.n_sites,
                t.n_experiments,
                t.diverging_sites,
                t.deterministic,
            );
        }
        if let Some(b) = &w.bits_map {
            println!(
                "  bits      {:.2}x reduction ({} of {} bits certified, {:.1} ms analysis): \
                 unpruned {:.0} exp/s ({} exp), pruned {:.0} exp/s ({} exp), \
                 violations {}, agree {}",
                b.reduction_factor,
                b.certified_measured,
                b.total_measured,
                b.analysis_secs * 1e3,
                b.unpruned_eps,
                b.unpruned_experiments,
                b.pruned_eps,
                b.pruned_experiments,
                b.violations,
                b.agree_non_certified,
            );
        }
        println!();
    }

    // merge this tier into the existing document so a quick run never
    // clobbers committed paper-scale numbers (and vice versa)
    let prev = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    let doc = merge_tier(prev, &report);
    let json = serde_json::to_string_pretty(&doc).unwrap();
    std::fs::write(&out, json + "\n").unwrap();
    println!("wrote {out} ({tier} tier)");

    if !report.all_paths_agree {
        eprintln!("FAIL: extraction paths disagree on at least one outcome table");
        std::process::exit(1);
    }
    if !report.compose_ok {
        eprintln!("FAIL: a compositional-analysis stanza missed its quality gate");
        std::process::exit(1);
    }
    if !report.bits_ok {
        eprintln!(
            "FAIL: a bit-prune stanza missed its gate (certified-bit violation, \
             pruned/unpruned divergence, or reduction below floor)"
        );
        std::process::exit(1);
    }
    if !report.snapshot_ok {
        eprintln!(
            "FAIL: a snapshot leg missed its gate (resumed outcome table diverged \
             from the from-t=0 table, speedup below the workload's floor, or \
             absolute exp/s below the workload's eps floor)"
        );
        std::process::exit(1);
    }
    if !report.streamed_ok {
        eprintln!("FAIL: streamed-vs-buffered speedup fell below a workload's pinned floor");
        std::process::exit(1);
    }
    if !report.tvd_ok {
        eprintln!(
            "FAIL: a serial-vs-parallel characterization found a nonzero \
             total-variation distance between pool sizes"
        );
        std::process::exit(1);
    }
}
