//! **Table 4** — the §4.6 scaling study: the fault tolerance boundary of
//! CG approximated from a *fixed* budget of 1000 sampled dynamic
//! instructions, at a small and a large input size. The paper's point:
//! as the input grows, the same absolute budget becomes a vanishing
//! sampling fraction yet prediction quality holds, because a larger share
//! of the execution is reachable by propagation.
//!
//! Paper (20×20 vs 100×100): SDC 4.5%→5.0%, predicted 6.65%→6.1%,
//! precision ≈98%, uncertainty ≈98%, recall ≈96%, sites 254,784 →
//! 16,789,952.
//!
//! Ground truth: exhaustive at the small size; a large uniform
//! statistical sample at the large size (see DESIGN.md §6, substitution
//! 3 — the exhaustive campaign there is cluster-scale).
//!
//! Usage: `cargo run --release -p ftb-bench --bin table4 [-- --trials N]`

use ftb_bench::suite::{Benchmark, CG_TOLERANCE};
use ftb_bench::{exhaustive_cached, sampled_truth_cached};
use ftb_core::prelude::*;
use ftb_kernels::{CgConfig, KernelConfig};
use ftb_report::Table;
use ftb_stats::Summary;
use ftb_trace::Precision;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

const BUDGET_SITES: usize = 1000;
const TRUTH_SAMPLES: usize = 40_000;

fn cg_bench(grid: usize) -> Benchmark {
    Benchmark {
        name: if grid <= 10 { "CG-small" } else { "CG-large" },
        origin: "MiniFE",
        config: KernelConfig::Cg(CgConfig {
            grid,
            rtol: 1e-4,
            max_iters: 4 * grid * grid,
            precision: Precision::F32,
            seed: 42,
            storage: ftb_kernels::CgStorage::MatrixFree,
        }),
        tolerance: CG_TOLERANCE,
    }
}

fn main() {
    let trials: usize = arg_value("--trials")
        .map(|s| s.parse().unwrap())
        .unwrap_or(5);
    let mut table = Table::new(&[
        "Input",
        "SDC ratio",
        "predict SDC ratio",
        "precision",
        "uncertainty",
        "recall",
        "num. of sites",
    ]);

    for (grid, exhaustive_truth) in [(8usize, true), (20, false)] {
        let b = cg_bench(grid);
        let kernel = b.build();
        let analysis = Analysis::new(kernel.as_ref(), b.classifier());
        let n = analysis.n_sites();

        // ground truth: exhaustive where feasible, statistical otherwise
        enum Truth {
            Full(ftb_inject::ExhaustiveResult),
            Sampled(SampleSet),
        }
        let truth = if exhaustive_truth {
            Truth::Full(exhaustive_cached(&b, analysis.injector()))
        } else {
            Truth::Sampled(sampled_truth_cached(
                &b,
                analysis.injector(),
                TRUTH_SAMPLES,
                99,
            ))
        };
        let golden_sdc = match &truth {
            Truth::Full(t) => t.overall_sdc_ratio(),
            Truth::Sampled(s) => {
                let (_, sdc, _) = s.counts();
                sdc as f64 / s.len() as f64
            }
        };

        let (mut preds, mut precs, mut uncs, mut recalls) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for trial in 0..trials {
            let samples =
                SampleSet::sample_sites(analysis.injector(), BUDGET_SITES, 8800 + trial as u64);
            let inf = analysis.infer(&samples, FilterMode::PerSite);
            let predictor = analysis.predictor(&inf.boundary);

            let eval = match &truth {
                Truth::Full(t) => BoundaryEval::against_exhaustive(&predictor, t),
                Truth::Sampled(s) => BoundaryEval::from_truth(
                    &predictor,
                    s.experiments().iter().map(|e| (e.site, e.bit, e.outcome)),
                ),
            };
            precs.push(eval.precision);
            recalls.push(eval.recall);
            uncs.push(analysis.uncertainty(&inf.boundary, &samples));
            let pred = match &truth {
                Truth::Full(_) => predictor.overall_sdc_ratio(Some(&samples)),
                Truth::Sampled(s) => {
                    // predicted ratio over the truth set's experiments
                    let mut sdc = 0usize;
                    for e in s.experiments() {
                        let is_sdc = match samples.get(e.site, e.bit) {
                            Some(k) => k.outcome.is_sdc(),
                            None => {
                                predictor.predict(e.site, e.bit) == PredictedOutcome::AssumedSdc
                            }
                        };
                        sdc += usize::from(is_sdc);
                    }
                    sdc as f64 / s.len() as f64
                }
            };
            preds.push(pred);
        }

        table.row(&[
            format!("{grid}x{grid}"),
            format!("{:.2}%", golden_sdc * 100.0),
            Summary::of(&preds).pct(2),
            Summary::of(&precs).pct(2),
            Summary::of(&uncs).pct(2),
            Summary::of(&recalls).pct(2),
            n.to_string(),
        ]);
    }

    println!(
        "\nTable 4: CG scaling with a fixed budget of {BUDGET_SITES} sampled instructions, \
         {trials} trials\n(large-input ground truth: {TRUTH_SAMPLES}-experiment statistical sample)\n"
    );
    print!("{}", table.render());
    println!("\npaper (20x20 vs 100x100): SDC 4.5%/5.0%, predicted 6.65%±0.9/6.1%±1.2,");
    println!("precision 98.27%/97.64%, uncertainty 98.1%/97.87%, recall 96.28%/96.7%");
}
