//! Ablations over the design choices called out in DESIGN.md:
//!
//! 1. filter operation: off vs per-site vs global scope;
//! 2. adaptive bias term `p_i ∝ 1/S_i` vs uniform progressive sampling;
//! 3. crash-aware prediction vs the paper's plain assume-SDC;
//! 4. all-bits-per-sampled-site (the paper's §4.4 semantics) vs
//!    one-bit-per-site at the same experiment budget.
//!
//! Usage: `cargo run --release -p ftb-bench --bin ablation`

use ftb_bench::{exhaustive_cached, paper_suite, Scale};
use ftb_core::prelude::*;
use ftb_report::Table;

fn main() {
    let scale = Scale::from_args();
    let suite = paper_suite(scale);
    // CG is the benchmark where the design choices matter most
    // (non-monotonic, crash-prone); run every ablation on it, and the
    // filter-scope ablation on all three.
    let b = &suite[0];
    let kernel = b.build();
    let analysis = Analysis::new(kernel.as_ref(), b.classifier());
    let truth = exhaustive_cached(b, analysis.injector());

    // --- 1. filter scope, all benchmarks, 10% sampling -----------------
    println!("\n=== ablation 1: filter operation scope (10% sampling) ===");
    let mut t = Table::new(&["bench", "mode", "precision", "recall"]);
    for bench in &suite {
        let k = bench.build();
        let a = Analysis::new(k.as_ref(), bench.classifier());
        let tr = exhaustive_cached(bench, a.injector());
        let samples = a.sample_uniform(0.10, 21);
        for (label, mode) in [
            ("off", FilterMode::Off),
            ("per-site", FilterMode::PerSite),
            ("global", FilterMode::Global),
        ] {
            let inf = a.infer(&samples, mode);
            let eval = a.evaluate(&inf.boundary, &tr);
            t.row(&[
                bench.name.to_string(),
                label.to_string(),
                format!("{:.2}%", eval.precision * 100.0),
                format!("{:.2}%", eval.recall * 100.0),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "(filtering trades recall for precision; the global scope is the aggressive end \
         of that trade — only CG, the non-monotonic benchmark, is sensitive at all)"
    );

    // --- 2. adaptive bias term -----------------------------------------
    println!("\n=== ablation 2: adaptive bias p_i ∝ 1/S_i vs uniform (CG) ===");
    let mut t = Table::new(&[
        "variant",
        "experiments",
        "rounds",
        "predicted SDC",
        "golden",
    ]);
    for (label, bias) in [("biased (paper)", true), ("uniform rounds", false)] {
        let cfg = AdaptiveConfig {
            bias,
            seed: 17,
            ..Default::default()
        };
        let res = analysis.adaptive(&cfg);
        let pred = analysis
            .profile(&res.inference.boundary, &truth, Some(&res.samples))
            .overall()
            .1;
        t.row(&[
            label.to_string(),
            res.samples.len().to_string(),
            res.rounds.len().to_string(),
            format!("{:.2}%", pred * 100.0),
            format!("{:.2}%", truth.overall_sdc_ratio() * 100.0),
        ]);
    }
    print!("{}", t.render());

    // --- 3. crash-aware prediction --------------------------------------
    println!("\n=== ablation 3: crash-aware prediction (CG, 5% sampling) ===");
    let samples = analysis.sample_uniform(0.05, 33);
    let inf = analysis.infer(&samples, FilterMode::PerSite);
    let aware = analysis.predictor(&inf.boundary);
    let naive = aware.without_crash_prediction();
    let mut t = Table::new(&["variant", "predicted SDC", "golden SDC"]);
    for (label, p) in [("crash-aware", &aware), ("assume-SDC (paper)", &naive)] {
        t.row(&[
            label.to_string(),
            format!("{:.2}%", p.overall_sdc_ratio(Some(&samples)) * 100.0),
            format!("{:.2}%", truth.overall_sdc_ratio() * 100.0),
        ]);
    }
    print!("{}", t.render());

    // --- 4. sampling semantics at equal budget --------------------------
    println!("\n=== ablation 4: all-bits-per-site vs one-bit-per-site (CG, equal budget) ===");
    let bits = usize::from(analysis.golden().precision.bits());
    let n_sites_sampled = (analysis.n_sites() as f64 * 0.01).round() as usize;
    let budget = n_sites_sampled * bits;
    let all_bits = SampleSet::sample_sites(analysis.injector(), n_sites_sampled, 5);
    let one_bit =
        SampleSet::sample_sites_one_bit(analysis.injector(), budget.min(analysis.n_sites()), 5);
    let mut t = Table::new(&[
        "variant",
        "experiments",
        "sites touched",
        "precision",
        "recall",
    ]);
    for (label, s) in [
        ("all bits (paper §4.4)", &all_bits),
        ("one bit per site", &one_bit),
    ] {
        let inf = analysis.infer(s, FilterMode::PerSite);
        let eval = analysis.evaluate(&inf.boundary, &truth);
        t.row(&[
            label.to_string(),
            s.len().to_string(),
            s.distinct_sites().to_string(),
            format!("{:.2}%", eval.precision * 100.0),
            format!("{:.2}%", eval.recall * 100.0),
        ]);
    }
    print!("{}", t.render());
}
