//! The perf-ratchet comparison behind the `bench_ratchet` binary.
//!
//! Compares a freshly measured tier of the extraction suite against the
//! same tier of the committed `BENCH_ppopp21.json` and fails on any
//! throughput metric that regressed past a tolerance band. The metric
//! set is extracted structurally from the report JSON (higher is always
//! better), so metrics absent from the committed baseline — a new
//! workload, a new stanza — are skipped rather than failed: the ratchet
//! only tightens once a number has been committed.
//!
//! CI runners are noisy and differ from the machine that produced the
//! committed baseline, which is why the default band is a generous 20%,
//! why the suite measures each ratcheted leg best-of-N
//! (`PerfWorkload::timing_repeats`), and why the `bench_ratchet` binary
//! takes the per-metric max over several fresh runs before comparing —
//! a regression verdict means even the best of every fresh sample
//! missed the band. The speedup rows (streamed-vs-buffered,
//! snapshot-vs-streamed) additionally divide the machine out, so they
//! stay meaningful when baseline and runner hardware differ.

use serde_json::Value;

/// One metric's baseline/fresh pair and its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Slash-separated metric path, e.g. `jacobi/streamed/exp_per_sec`.
    pub name: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// `fresh / baseline`.
    pub ratio: f64,
    /// Whether `fresh < baseline * (1 - tolerance)`.
    pub regressed: bool,
}

/// Pull the ratcheted metric set out of one tier's report. Every metric
/// is higher-is-better; anything missing or non-numeric is skipped.
pub fn extract_metrics(tier: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(workloads) = tier.get("workloads").and_then(Value::as_array) else {
        return out;
    };
    for w in workloads {
        let Some(name) = w.get("name").and_then(Value::as_str) else {
            continue;
        };
        for p in w
            .get("paths")
            .and_then(Value::as_array)
            .map(Vec::as_slice)
            .unwrap_or(&[])
        {
            let (Some(path), Some(eps)) = (
                p.get("path").and_then(Value::as_str),
                p.get("experiments_per_sec").and_then(Value::as_f64),
            ) else {
                continue;
            };
            out.push((format!("{name}/{path}/exp_per_sec"), eps));
        }
        if let Some(s) = w
            .get("speedup_streamed_vs_buffered")
            .and_then(Value::as_f64)
        {
            out.push((format!("{name}/speedup_streamed_vs_buffered"), s));
        }
        if let Some(snap) = w.get("snapshot").filter(|s| s.is_object()) {
            if let Some(eps) = snap.get("experiments_per_sec").and_then(Value::as_f64) {
                out.push((format!("{name}/snapshot/exp_per_sec"), eps));
            }
            if let Some(s) = snap.get("speedup_vs_streamed").and_then(Value::as_f64) {
                out.push((format!("{name}/snapshot/speedup_vs_streamed"), s));
            }
        }
    }
    out
}

/// Compare fresh metrics against the baseline. Metrics the baseline
/// lacks are skipped (the ratchet has nothing to hold them to yet);
/// metrics the fresh run lacks are reported as full regressions — a
/// stanza that stopped running is exactly what the gate exists to catch.
pub fn compare(
    baseline: &[(String, f64)],
    fresh: &[(String, f64)],
    tolerance: f64,
) -> Vec<MetricDelta> {
    baseline
        .iter()
        .filter(|(_, b)| b.is_finite() && *b > 0.0)
        .map(|(name, b)| {
            let f = fresh
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            MetricDelta {
                name: name.clone(),
                baseline: *b,
                fresh: f,
                ratio: f / b,
                regressed: f < b * (1.0 - tolerance),
            }
        })
        .collect()
}

/// Render the delta table as GitHub-flavoured markdown for the job
/// summary.
pub fn markdown_table(deltas: &[MetricDelta], tolerance: f64) -> String {
    let mut s = String::from("## Perf ratchet\n\n");
    s.push_str(&format!(
        "Tolerance band: {:.0}% below committed baseline.\n\n",
        tolerance * 100.0
    ));
    s.push_str("| metric | baseline | fresh | ratio | verdict |\n");
    s.push_str("|---|---:|---:|---:|---|\n");
    for d in deltas {
        s.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.2}x | {} |\n",
            d.name,
            d.baseline,
            d.fresh,
            d.ratio,
            if d.regressed { "REGRESSED" } else { "ok" },
        ));
    }
    let n = deltas.iter().filter(|d| d.regressed).count();
    s.push_str(&format!(
        "\n{} of {} metrics regressed past the band.\n",
        n,
        deltas.len()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier() -> Value {
        serde_json::from_str(
            r#"{
            "workloads": [
                {
                    "name": "jacobi",
                    "paths": [
                        { "path": "buffered", "experiments_per_sec": 100.0 },
                        { "path": "streamed", "experiments_per_sec": 150.0 }
                    ],
                    "speedup_streamed_vs_buffered": 1.5,
                    "snapshot": {
                        "experiments_per_sec": 1500.0,
                        "speedup_vs_streamed": 10.0
                    }
                },
                { "name": "gemm", "paths": [], "snapshot": null }
            ]
        }"#,
        )
        .unwrap()
    }

    #[test]
    fn extracts_path_speedup_and_snapshot_metrics() {
        let m = extract_metrics(&tier());
        let names: Vec<&str> = m.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "jacobi/buffered/exp_per_sec",
                "jacobi/streamed/exp_per_sec",
                "jacobi/speedup_streamed_vs_buffered",
                "jacobi/snapshot/exp_per_sec",
                "jacobi/snapshot/speedup_vs_streamed",
            ]
        );
        assert_eq!(m[2].1, 1.5);
    }

    #[test]
    fn regression_detection_respects_tolerance_band() {
        let base = vec![("a".to_string(), 100.0), ("b".to_string(), 100.0)];
        let fresh = vec![("a".to_string(), 81.0), ("b".to_string(), 79.0)];
        let d = compare(&base, &fresh, 0.2);
        assert!(!d[0].regressed, "within band: {:?}", d[0]);
        assert!(d[1].regressed, "past band: {:?}", d[1]);
    }

    #[test]
    fn baseline_only_metrics_gate_fresh_only_metrics_skip() {
        let base = vec![("gone".to_string(), 50.0)];
        let fresh = vec![("new".to_string(), 9.0)];
        let d = compare(&base, &fresh, 0.2);
        // a metric the fresh run no longer produces is a regression...
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].name, "gone");
        assert!(d[0].regressed);
        // ...while a metric with no committed baseline is not gated
        assert!(!d.iter().any(|m| m.name == "new"));
    }

    #[test]
    fn zero_and_nonfinite_baselines_are_skipped() {
        let base = vec![("z".to_string(), 0.0), ("n".to_string(), f64::NAN)];
        let d = compare(&base, &[], 0.2);
        assert!(d.is_empty());
    }

    #[test]
    fn markdown_table_lists_every_metric() {
        let d = compare(&[("a".to_string(), 100.0)], &[("a".to_string(), 50.0)], 0.2);
        let md = markdown_table(&d, 0.2);
        assert!(md.contains("| a | 100.000 | 50.000 | 0.50x | REGRESSED |"));
        assert!(md.contains("1 of 1 metrics regressed"));
    }
}
