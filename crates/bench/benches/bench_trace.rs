//! Trace-layer micro-benchmarks: bit flips, branch-stream divergence
//! detection, and propagation extraction (golden-vs-faulty comparison).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ftb_inject::{fold_propagation_lockstep, Classifier};
use ftb_kernels::{Kernel, StencilConfig, StencilKernel};
use ftb_trace::bits::{flip_bit_f64, injected_error, Precision};
use ftb_trace::{divergence_cursor, propagation, FaultSpec, RecordMode};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.sample_size(30);

    group.bench_function("flip_bit_f64", |b| {
        b.iter(|| flip_bit_f64(black_box(1.2345678), black_box(42)));
    });

    group.bench_function("injected_error_all_bits", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for bit in 0..64 {
                acc += injected_error(Precision::F64, black_box(1.2345678), bit).min(1e300);
            }
            acc
        });
    });

    // realistic traces from a stencil kernel
    let kernel = StencilKernel::new(StencilConfig::small());
    let golden = kernel.golden();
    let faulty = kernel.run_injected(FaultSpec { site: 150, bit: 30 }, RecordMode::Full);

    group.bench_function("divergence_cursor_equal_streams", |b| {
        b.iter(|| divergence_cursor(black_box(&golden.branches), black_box(&golden.branches)));
    });

    group.bench_function("propagation_extraction", |b| {
        b.iter(|| propagation(black_box(&golden), black_box(&faulty)));
    });

    group.bench_function("flip_errors_per_site", |b| {
        b.iter(|| golden.flip_errors(black_box(100)));
    });

    // buffered vs lockstep propagation extraction (the §5 memory
    // trade-off: O(sites) buffer vs O(capacity) channel + a second run)
    group.bench_function("propagation_buffered_end_to_end", |b| {
        b.iter(|| {
            let run = kernel.run_injected(FaultSpec { site: 150, bit: 30 }, RecordMode::Full);
            propagation(&golden, &run).touched(0.0)
        });
    });
    group.bench_function("propagation_lockstep_end_to_end", |b| {
        let classifier = Classifier::new(1e-6);
        b.iter(|| {
            let mut n = 0usize;
            fold_propagation_lockstep(
                &kernel,
                FaultSpec { site: 150, bit: 30 },
                &classifier,
                64,
                |_, _| n += 1,
            );
            n
        });
    });

    group.finish();
}

criterion_group!(trace, benches);
criterion_main!(trace);
