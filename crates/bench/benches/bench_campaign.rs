//! Campaign throughput: single experiments, batches, and the exhaustive
//! sweep on a small kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use ftb_inject::{Classifier, Injector};
use ftb_kernels::{MatvecConfig, MatvecKernel, StencilConfig, StencilKernel};
use ftb_trace::FaultSpec;

fn benches(c: &mut Criterion) {
    let stencil = StencilKernel::new(StencilConfig {
        grid: 8,
        sweeps: 4,
        ..StencilConfig::small()
    });
    let inj = Injector::new(&stencil, Classifier::new(1e-6));

    let mut group = c.benchmark_group("campaign");
    group.sample_size(20);

    group.bench_function("run_one", |b| {
        b.iter(|| inj.run_one(50, 30));
    });

    group.bench_function("run_one_traced", |b| {
        b.iter(|| inj.run_one_traced(50, 10));
    });

    let faults: Vec<FaultSpec> = (0..64)
        .map(|i| FaultSpec {
            site: i * 4,
            bit: 20,
        })
        .collect();
    group.bench_function("run_many_64", |b| {
        b.iter(|| inj.run_many(&faults));
    });

    let tiny = MatvecKernel::new(MatvecConfig {
        n: 4,
        ..MatvecConfig::small()
    });
    let tiny_inj = Injector::new(&tiny, Classifier::new(1e-6));
    group.bench_function("exhaustive_matvec4", |b| {
        b.iter(|| tiny_inj.exhaustive());
    });

    group.finish();
}

criterion_group!(campaign, benches);
criterion_main!(campaign);
