//! Kernel execution throughput: untraced vs golden-recording vs
//! fault-injected runs. The golden/untraced gap is the instrumentation
//! overhead discussed in the paper's §5 ("Overhead").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ftb_kernels::{
    CgConfig, CgKernel, FftConfig, FftKernel, Kernel, LuConfig, LuKernel, StencilConfig,
    StencilKernel,
};
use ftb_trace::{FaultSpec, RecordMode};

fn bench_kernel(c: &mut Criterion, name: &str, kernel: &dyn Kernel) {
    let mut group = c.benchmark_group(format!("kernels/{name}"));
    group.sample_size(20);

    group.bench_function("untraced", |b| {
        b.iter(|| kernel.run_untraced());
    });
    group.bench_function("golden", |b| {
        b.iter_batched(|| (), |_| kernel.golden(), BatchSize::SmallInput);
    });
    group.bench_function("inject_output_only", |b| {
        b.iter(|| kernel.run_injected(FaultSpec { site: 10, bit: 20 }, RecordMode::OutputOnly));
    });
    group.bench_function("inject_full_trace", |b| {
        b.iter(|| kernel.run_injected(FaultSpec { site: 10, bit: 20 }, RecordMode::Full));
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_kernel(c, "cg", &CgKernel::new(CgConfig::small()));
    bench_kernel(
        c,
        "lu",
        &LuKernel::new(LuConfig {
            n: 16,
            block: 4,
            ..LuConfig::small()
        }),
    );
    bench_kernel(
        c,
        "fft",
        &FftKernel::new(FftConfig {
            n1: 8,
            n2: 8,
            ..FftConfig::small()
        }),
    );
    bench_kernel(c, "stencil", &StencilKernel::new(StencilConfig::small()));
}

criterion_group!(kernels, benches);
criterion_main!(kernels);
