//! Boundary machinery throughput: Algorithm-1 inference (filter on/off),
//! golden-boundary construction, and whole-space prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use ftb_core::prelude::*;
use ftb_kernels::{StencilConfig, StencilKernel};

fn benches(c: &mut Criterion) {
    let kernel = StencilKernel::new(StencilConfig {
        grid: 8,
        sweeps: 4,
        ..StencilConfig::small()
    });
    let analysis = Analysis::new(&kernel, Classifier::new(1e-6));
    let samples = analysis.sample_uniform(0.10, 5);
    let truth = analysis.exhaustive();
    let boundary = analysis.golden_boundary(&truth);

    let mut group = c.benchmark_group("boundary");
    group.sample_size(15);

    group.bench_function("infer_no_filter", |b| {
        b.iter(|| analysis.infer(&samples, FilterMode::Off));
    });

    group.bench_function("infer_per_site_filter", |b| {
        b.iter(|| analysis.infer(&samples, FilterMode::PerSite));
    });

    group.bench_function("golden_boundary", |b| {
        b.iter(|| analysis.golden_boundary(&truth));
    });

    group.bench_function("predict_whole_space", |b| {
        let predictor = analysis.predictor(&boundary);
        b.iter(|| predictor.overall_sdc_ratio(None));
    });

    group.bench_function("evaluate_against_truth", |b| {
        b.iter(|| analysis.evaluate(&boundary, &truth));
    });

    group.finish();
}

criterion_group!(boundary, benches);
criterion_main!(boundary);
