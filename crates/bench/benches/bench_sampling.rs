//! Sampling machinery throughput: uniform and weighted
//! without-replacement draws, SampleSet bookkeeping, and a full adaptive
//! loop on a small kernel.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ftb_core::prelude::*;
use ftb_kernels::{MatvecConfig, MatvecKernel};
use ftb_stats::sampling::{
    sample_weighted_without_replacement, sample_without_replacement, seeded_rng,
};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.sample_size(20);

    group.bench_function("uniform_wor_1k_of_100k", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(1);
            sample_without_replacement(black_box(100_000), black_box(1000), &mut rng)
        });
    });

    let weights: Vec<f64> = (0..100_000)
        .map(|i| 1.0 / (1.0 + (i % 67) as f64))
        .collect();
    group.bench_function("weighted_wor_1k_of_100k", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(1);
            sample_weighted_without_replacement(black_box(&weights), 1000, &mut rng)
        });
    });

    let kernel = MatvecKernel::new(MatvecConfig {
        n: 8,
        ..MatvecConfig::small()
    });
    let analysis = Analysis::new(&kernel, Classifier::new(1e-6));

    group.bench_function("sample_sites_10", |b| {
        b.iter(|| SampleSet::sample_sites(analysis.injector(), 10, 3));
    });

    group.bench_function("adaptive_loop_matvec8", |b| {
        b.iter(|| {
            analysis.adaptive(&AdaptiveConfig {
                seed: 3,
                ..Default::default()
            })
        });
    });

    group.finish();
}

criterion_group!(sampling, benches);
criterion_main!(sampling);
