//! Terminal histogram rendering (the paper's Figure 3 in ASCII).

use ftb_stats::Histogram;
use std::fmt::Write as _;

/// Render a histogram as rows of `#` bars, one per bin, annotated with
/// bin ranges and counts. `width` is the maximum bar length.
pub fn render_histogram(h: &Histogram, width: usize) -> String {
    let max = h.counts().iter().copied().max().unwrap_or(0);
    let mut out = String::new();
    for i in 0..h.bins() {
        let (lo, hi) = h.bin_edges(i);
        let c = h.counts()[i];
        let bar_len = if max == 0 {
            0
        } else {
            ((c as f64 / max as f64) * width as f64).round() as usize
        };
        let _ = writeln!(
            out,
            "[{lo:>10.3e}, {hi:>10.3e}) {c:>8} {}",
            "#".repeat(bar_len)
        );
    }
    let _ = writeln!(out, "total: {}", h.total());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_one_line_per_bin_plus_total() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend(&[0.1, 0.1, 0.9]);
        let s = render_histogram(&h, 20);
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("total: 3"));
        // fullest bin gets the longest bar
        let first_line = s.lines().next().unwrap();
        assert!(first_line.contains(&"#".repeat(20)));
    }

    #[test]
    fn empty_histogram_renders_without_bars() {
        let h = Histogram::new(0.0, 1.0, 2);
        let s = render_histogram(&h, 10);
        assert!(s.contains("total: 0"));
        assert!(!s.contains('#'));
    }
}
