//! Dependency-free SVG line plots.
//!
//! The figure binaries emit their data as CSV for external tooling, but a
//! reproduction artifact is nicer to inspect when the figures themselves
//! are regenerated too. This is a deliberately small renderer: linear or
//! log₁₀ x-axis, auto-scaled y, tick labels, polyline series with a fixed
//! palette, and a legend — enough for every figure in the paper.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Palette applied to series in order (chosen for contrast on white).
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

/// A multi-series line plot.
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
    log_x: bool,
}

impl LinePlot {
    /// Start a plot with a title and axis labels.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        LinePlot {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
            log_x: false,
        }
    }

    /// Use a log₁₀ x-axis (sampling-rate sweeps). Points with `x <= 0`
    /// are dropped at render time.
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Add a named series. Non-finite points are dropped at render time.
    pub fn series(&mut self, name: &str, points: &[(f64, f64)]) -> &mut Self {
        self.series.push((name.to_string(), points.to_vec()));
        self
    }

    /// Number of series added.
    pub fn n_series(&self) -> usize {
        self.series.len()
    }

    fn clean_points(&self, pts: &[(f64, f64)]) -> Vec<(f64, f64)> {
        pts.iter()
            .copied()
            .filter(|&(x, y)| x.is_finite() && y.is_finite() && (!self.log_x || x > 0.0))
            .map(|(x, y)| (if self.log_x { x.log10() } else { x }, y))
            .collect()
    }

    /// Render to an SVG document of the given pixel size.
    pub fn to_svg(&self, width: usize, height: usize) -> String {
        let (w, h) = (width as f64, height as f64);
        let (ml, mr, mt, mb) = (64.0, 16.0, 36.0, 48.0); // margins
        let (pw, ph) = (w - ml - mr, h - mt - mb); // plot area

        // data ranges over cleaned points
        let cleaned: Vec<(String, Vec<(f64, f64)>)> = self
            .series
            .iter()
            .map(|(n, p)| (n.clone(), self.clean_points(p)))
            .collect();
        let all: Vec<(f64, f64)> = cleaned
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .collect();
        let (mut x0, mut x1, mut y0, mut y1) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if all.is_empty() {
            (x0, x1, y0, y1) = (0.0, 1.0, 0.0, 1.0);
        }
        if x0 == x1 {
            x0 -= 0.5;
            x1 += 0.5;
        }
        if y0 == y1 {
            y0 -= 0.5;
            y1 += 0.5;
        }
        // pad y a little
        let ypad = (y1 - y0) * 0.05;
        y0 -= ypad;
        y1 += ypad;

        let sx = |x: f64| ml + (x - x0) / (x1 - x0) * pw;
        let sy = |y: f64| mt + (1.0 - (y - y0) / (y1 - y0)) * ph;

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="11">"#
        );
        let _ = writeln!(
            svg,
            r#"<rect width="{width}" height="{height}" fill="white"/>"#
        );
        // title
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="18" text-anchor="middle" font-size="13" font-weight="bold">{}</text>"#,
            ml + pw / 2.0,
            escape(&self.title)
        );
        // frame
        let _ = writeln!(
            svg,
            r##"<rect x="{ml:.1}" y="{mt:.1}" width="{pw:.1}" height="{ph:.1}" fill="none" stroke="#444"/>"##
        );

        // ticks: 5 per axis
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * f64::from(i) / 4.0;
            let px = sx(fx);
            let label = if self.log_x {
                format_tick(10f64.powf(fx))
            } else {
                format_tick(fx)
            };
            let _ = writeln!(
                svg,
                r##"<line x1="{px:.1}" y1="{:.1}" x2="{px:.1}" y2="{:.1}" stroke="#ccc"/>"##,
                mt,
                mt + ph
            );
            let _ = writeln!(
                svg,
                r#"<text x="{px:.1}" y="{:.1}" text-anchor="middle">{label}</text>"#,
                mt + ph + 16.0
            );

            let fy = y0 + (y1 - y0) * f64::from(i) / 4.0;
            let py = sy(fy);
            let _ = writeln!(
                svg,
                r##"<line x1="{:.1}" y1="{py:.1}" x2="{:.1}" y2="{py:.1}" stroke="#ccc"/>"##,
                ml,
                ml + pw
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
                ml - 6.0,
                py + 4.0,
                format_tick(fy)
            );
        }
        // axis labels
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="12">{}</text>"#,
            ml + pw / 2.0,
            h - 8.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            r#"<text x="14" y="{:.1}" text-anchor="middle" font-size="12" transform="rotate(-90 14 {:.1})">{}</text>"#,
            mt + ph / 2.0,
            mt + ph / 2.0,
            escape(&self.y_label)
        );

        // series
        for (i, (name, pts)) in cleaned.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            if !pts.is_empty() {
                let mut d = String::new();
                for &(x, y) in pts {
                    let _ = write!(d, "{:.1},{:.1} ", sx(x), sy(y));
                }
                let _ = writeln!(
                    svg,
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                    d.trim_end()
                );
                for &(x, y) in pts {
                    let _ = writeln!(
                        svg,
                        r#"<circle cx="{:.1}" cy="{:.1}" r="2.2" fill="{color}"/>"#,
                        sx(x),
                        sy(y)
                    );
                }
            }
            // legend entry
            let ly = mt + 14.0 + 16.0 * i as f64;
            let _ = writeln!(
                svg,
                r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
                ml + pw - 120.0,
                ml + pw - 100.0
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
                ml + pw - 94.0,
                ly + 4.0,
                escape(name)
            );
        }

        svg.push_str("</svg>\n");
        svg
    }

    /// Write the SVG to a file (parent directories created).
    pub fn write_svg(&self, path: &Path, width: usize, height: usize) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_svg(width, height))
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Compact tick label: trims trailing noise, switches to scientific
/// notation outside a comfortable range.
fn format_tick(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".to_string()
    } else if !(0.001..100_000.0).contains(&a) {
        format!("{v:.0e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_each_series_as_polyline_and_legend() {
        let mut p = LinePlot::new("test", "x", "y");
        p.series("golden", &[(0.0, 1.0), (1.0, 2.0), (2.0, 0.5)]);
        p.series("predicted", &[(0.0, 1.5), (1.0, 1.5)]);
        let svg = p.to_svg(640, 400);
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("golden"));
        assert!(svg.contains("predicted"));
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn empty_plot_still_renders_frame() {
        let p = LinePlot::new("empty", "x", "y");
        let svg = p.to_svg(320, 200);
        assert!(svg.contains("<rect"));
        assert_eq!(svg.matches("<polyline").count(), 0);
    }

    #[test]
    fn log_axis_drops_nonpositive_points() {
        let mut p = LinePlot::new("log", "rate", "recall").log_x();
        p.series("r", &[(0.0, 0.1), (0.001, 0.2), (0.01, 0.5), (0.1, 0.9)]);
        let svg = p.to_svg(640, 400);
        // 3 positive points survive: one polyline, three circles
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn non_finite_points_dropped() {
        let mut p = LinePlot::new("nan", "x", "y");
        p.series("r", &[(0.0, f64::NAN), (1.0, 1.0), (f64::INFINITY, 2.0)]);
        let svg = p.to_svg(640, 400);
        assert_eq!(svg.matches("<circle").count(), 1);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let p = LinePlot::new("a<b & c>d", "x", "y");
        let svg = p.to_svg(320, 200);
        assert!(svg.contains("a&lt;b &amp; c&gt;d"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn tick_formatting_is_compact() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(1.5), "1.5");
        assert_eq!(format_tick(1000.0), "1000");
        assert_eq!(format_tick(1e-6), "1e-6");
        assert_eq!(format_tick(0.25), "0.25");
    }

    #[test]
    fn write_svg_creates_dirs() {
        let dir = std::env::temp_dir().join("ftb_plot_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/plot.svg");
        let mut p = LinePlot::new("t", "x", "y");
        p.series("s", &[(0.0, 0.0), (1.0, 1.0)]);
        p.write_svg(&path, 320, 200).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
