//! # ftb-report
//!
//! Presentation utilities for the `ftb` bench harness: fixed-width ASCII
//! tables (the paper's Tables 1–4), CSV series (the data behind Figures
//! 3–5), per-group aggregation of per-site profiles (the paper groups 8
//! consecutive dynamic instructions in CG, 147 in LU, 208 in FFT for its
//! Figure 4), and terminal histogram rendering (Figure 3).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bits_table;
pub mod boundary_cmp;
pub mod grouping;
pub mod histo;
pub mod plot;
pub mod sections_table;
pub mod series;
pub mod table;

pub use bits_table::{bits_vuln_table, BitsVulnRow};
pub use boundary_cmp::{boundary_comparison, BoundaryMethodRow};
pub use grouping::{group_means, group_sums};
pub use histo::render_histogram;
pub use plot::LinePlot;
pub use sections_table::{sections_table, SectionRow};
pub use series::Series;
pub use table::Table;
