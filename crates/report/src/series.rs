//! CSV series: the machine-readable data behind each figure.
//!
//! Every `figure*` binary prints (and optionally writes) its plot data as
//! CSV so the paper's figures can be regenerated with any plotting tool.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A named multi-column series.
#[derive(Debug, Clone)]
pub struct Series {
    columns: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Series {
    /// Start a series with the given column names.
    pub fn new(columns: &[&str]) -> Self {
        Series {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row of values.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn push(&mut self, row: &[f64]) -> &mut Self {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row has {} values, series has {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the series has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Access a row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// Render as CSV (header + rows, `%.6g` formatting).
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let mut first = true;
            for v in row {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "{v:.6e}");
                first = false;
            }
            out.push('\n');
        }
        out
    }

    /// Write the CSV to a file (parent directories created).
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape() {
        let mut s = Series::new(&["x", "golden", "predicted"]);
        s.push(&[0.0, 0.5, 0.6]).push(&[1.0, 0.25, 0.25]);
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "x,golden,predicted");
        assert_eq!(lines[1].split(',').count(), 3);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn roundtrip_values_parse() {
        let mut s = Series::new(&["a"]);
        s.push(&[0.1234567890123]);
        let csv = s.to_csv();
        let v: f64 = csv.lines().nth(1).unwrap().parse().unwrap();
        assert!((v - 0.1234567890123).abs() < 1e-6);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("ftb_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/series.csv");
        let mut s = Series::new(&["x"]);
        s.push(&[1.0]);
        s.write_csv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut s = Series::new(&["a", "b"]);
        s.push(&[1.0]);
    }
}
