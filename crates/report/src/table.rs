//! Fixed-width ASCII tables.

/// A simple column-aligned table builder.
///
/// ```
/// let mut t = ftb_report::Table::new(&["Name", "SDC"]);
/// t.row(&["CG", "8.2%"]);
/// let s = t.render();
/// assert!(s.contains("| CG"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.as_ref().to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with `|`-separated, width-aligned columns and a header rule.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push(' ');
                line.push_str(cell);
                for _ in cell.chars().count()..*w {
                    line.push(' ');
                }
                line.push_str(" |");
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut rule = String::from("|");
        for w in &widths {
            rule.push_str(&"-".repeat(w + 2));
            rule.push('|');
        }
        rule.push('\n');
        out.push_str(&rule);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        let _ = ncols;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["Name", "Benchmark", "SDC"]);
        t.row(&["CG", "MiniFE", "8.2%"]);
        t.row(&["LU", "splash2", "35.89%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines same width
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w));
        assert!(lines[2].contains("| CG"));
        assert!(lines[3].contains("35.89%"));
    }

    #[test]
    fn n_rows_counts() {
        let mut t = Table::new(&["a"]);
        assert_eq!(t.n_rows(), 0);
        t.row(&["1"]).row(&["2"]);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }
}
