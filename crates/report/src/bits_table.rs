//! Per-static-instruction view of a bit-level vulnerability analysis:
//! one row per instruction with its dynamic-site count, certified
//! safe-bit fraction and crash-band incidence.
//!
//! Like the rest of this crate, the rows are plain data computed
//! elsewhere — rendering only.

use crate::table::Table;
use serde::{Deserialize, Serialize};

/// One static instruction's line in the vulnerability map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitsVulnRow {
    /// Static instruction name (e.g. `jacobi.sweep.x`).
    pub name: String,
    /// Kernel region the instruction belongs to.
    pub region: String,
    /// Dynamic sites the instruction expands to.
    pub dynamic_sites: usize,
    /// Mean certified-masked bit fraction over the instruction's sites.
    pub mean_safe_fraction: f64,
    /// Sites with a provable crash-likely exponent band.
    pub crash_band_sites: usize,
}

/// Render vulnerability rows as an aligned table.
pub fn bits_vuln_table(rows: &[BitsVulnRow]) -> String {
    let mut t = Table::new(&[
        "static instruction",
        "region",
        "dyn sites",
        "safe bits",
        "crash-band sites",
    ]);
    for r in rows {
        t.row(&[
            r.name.clone(),
            r.region.clone(),
            r.dynamic_sites.to_string(),
            format!("{:.1}%", r.mean_safe_fraction * 100.0),
            r.crash_band_sites.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fraction_as_percentage() {
        let rows = vec![
            BitsVulnRow {
                name: "jacobi.sweep.x".into(),
                region: "compute".into(),
                dynamic_sites: 160,
                mean_safe_fraction: 0.668,
                crash_band_sites: 0,
            },
            BitsVulnRow {
                name: "jacobi.residual".into(),
                region: "reduce".into(),
                dynamic_sites: 10,
                mean_safe_fraction: 0.998,
                crash_band_sites: 1,
            },
        ];
        let s = bits_vuln_table(&rows);
        assert!(s.contains("66.8%"), "{s}");
        assert!(s.contains("99.8%"), "{s}");
        assert!(s.contains("jacobi.residual"), "{s}");
        assert!(s.contains("crash-band sites"), "{s}");
    }
}
