//! Side-by-side comparison of boundary-estimation methods.
//!
//! The rows are plain data — this crate renders results but never
//! computes them, so it takes no dependency on the analysis crates.

use crate::table::Table;
use serde::{Deserialize, Serialize};

/// One boundary-estimation method's scorecard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundaryMethodRow {
    /// Method label (`static`, `inferred`, `golden`, …).
    pub method: String,
    /// Kernel executions the method spent on injections.
    pub injections: u64,
    /// Fraction of sites with a positive threshold.
    pub coverage: f64,
    /// Precision against exhaustive ground truth.
    pub precision: f64,
    /// Recall against exhaustive ground truth.
    pub recall: f64,
    /// The §3.6 self-verified uncertainty (sampled precision), if the
    /// method computed one.
    pub uncertainty: Option<f64>,
}

/// Render method rows as an aligned comparison table.
pub fn boundary_comparison(rows: &[BoundaryMethodRow]) -> String {
    let mut t = Table::new(&[
        "method",
        "injections",
        "coverage",
        "precision",
        "recall",
        "uncertainty",
    ]);
    for r in rows {
        t.row(&[
            r.method.clone(),
            r.injections.to_string(),
            format!("{:.1}%", r.coverage * 100.0),
            format!("{:.4}", r.precision),
            format!("{:.4}", r.recall),
            r.uncertainty
                .map_or_else(|| "-".to_string(), |u| format!("{u:.4}")),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_methods_with_optional_uncertainty() {
        let rows = vec![
            BoundaryMethodRow {
                method: "static".into(),
                injections: 0,
                coverage: 0.95,
                precision: 1.0,
                recall: 0.9653,
                uncertainty: Some(1.0),
            },
            BoundaryMethodRow {
                method: "golden".into(),
                injections: 12928,
                coverage: 1.0,
                precision: 0.999,
                recall: 1.0,
                uncertainty: None,
            },
        ];
        let s = boundary_comparison(&rows);
        assert!(s.contains("| static"), "{s}");
        assert!(
            s.contains("| 0 "),
            "static must advertise zero injections: {s}"
        );
        assert!(s.contains("0.9653"), "{s}");
        assert!(s.contains("| -"), "missing uncertainty renders as '-': {s}");
        assert!(s.contains("12928"), "{s}");
    }
}
