//! Per-section view of a compositional analysis: one row per section
//! with its extent, campaign cost, transfer summary, backward budget and
//! incremental status.
//!
//! Like the rest of this crate, the rows are plain data computed
//! elsewhere — rendering only.

use crate::table::Table;
use serde::{Deserialize, Serialize};

/// One section's line in the compose report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectionRow {
    /// Section index.
    pub index: usize,
    /// First site.
    pub lo: usize,
    /// One past the last site.
    pub hi: usize,
    /// Kernel executions the section's campaign spent (0 when reused).
    pub injections: u64,
    /// Largest observed inlet-to-frontier amplification.
    pub amp_in: f64,
    /// Backward error budget at the section's output frontier.
    pub budget: f64,
    /// Whether the campaign was reused from a prior ledger.
    pub reused: bool,
}

/// Render section rows as an aligned table.
pub fn sections_table(rows: &[SectionRow]) -> String {
    let mut t = Table::new(&[
        "section",
        "sites",
        "injections",
        "amp_in",
        "budget",
        "status",
    ]);
    for r in rows {
        t.row(&[
            r.index.to_string(),
            format!("[{}, {})", r.lo, r.hi),
            r.injections.to_string(),
            format!("{:.3}", r.amp_in),
            format!("{:.3e}", r.budget),
            if r.reused { "reused" } else { "ran" }.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ran_and_reused_sections() {
        let rows = vec![
            SectionRow {
                index: 0,
                lo: 0,
                hi: 18,
                injections: 0,
                amp_in: 0.0,
                budget: 2.5e-5,
                reused: true,
            },
            SectionRow {
                index: 1,
                lo: 18,
                hi: 28,
                injections: 640,
                amp_in: 1.25,
                budget: 1e-4,
                reused: false,
            },
        ];
        let s = sections_table(&rows);
        assert!(s.contains("reused"), "{s}");
        assert!(s.contains("| ran"), "{s}");
        assert!(s.contains("[18, 28)"), "{s}");
        assert!(s.contains("640"), "{s}");
    }
}
