//! Per-group aggregation of per-site profiles.
//!
//! Millions of dynamic instructions do not fit in a plot; the paper
//! groups consecutive dynamic instructions (8 in CG, 147 in LU, 208 in
//! FFT) and plots each group's mean SDC ratio (Figure 4, rows 1 and 3)
//! or summed potential impact (row 2).

/// Mean of each consecutive group of `group_size` values. The final
/// partial group (if any) is averaged over its actual length.
///
/// # Panics
/// Panics if `group_size == 0`.
pub fn group_means(values: &[f64], group_size: usize) -> Vec<f64> {
    assert!(group_size > 0, "group size must be positive");
    values
        .chunks(group_size)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Sum of each consecutive group of `group_size` values.
///
/// # Panics
/// Panics if `group_size == 0`.
pub fn group_sums(values: &[f64], group_size: usize) -> Vec<f64> {
    assert!(group_size > 0, "group size must be positive");
    values.chunks(group_size).map(|c| c.iter().sum()).collect()
}

/// Choose a group size that yields at most `max_groups` groups (the
/// paper-style plotting resolution).
pub fn group_size_for(n_sites: usize, max_groups: usize) -> usize {
    assert!(max_groups > 0, "need at least one group");
    n_sites.div_ceil(max_groups).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_of_even_groups() {
        let v = [1.0, 3.0, 5.0, 7.0];
        assert_eq!(group_means(&v, 2), vec![2.0, 6.0]);
    }

    #[test]
    fn partial_tail_group_uses_its_own_length() {
        let v = [1.0, 3.0, 10.0];
        assert_eq!(group_means(&v, 2), vec![2.0, 10.0]);
    }

    #[test]
    fn sums() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(group_sums(&v, 2), vec![3.0, 3.0]);
    }

    #[test]
    fn group_size_for_caps_group_count() {
        assert_eq!(group_size_for(1000, 200), 5);
        assert_eq!(group_size_for(1001, 200), 6);
        assert_eq!(group_size_for(10, 200), 1);
        assert!(group_means(&vec![0.0; 1001], group_size_for(1001, 200)).len() <= 200);
    }

    #[test]
    #[should_panic]
    fn zero_group_size_panics() {
        let _ = group_means(&[1.0], 0);
    }
}
