//! # ftb-cli
//!
//! Library backing the `ftb` command-line tool: argument parsing, kernel
//! construction from flags, and the command implementations. Kept as a
//! library so the commands are unit-testable without spawning processes.
//!
//! ```text
//! ftb golden     --kernel cg --grid 8                 # golden-run stats
//! ftb campaign   --kernel lu --n 16 --samples 2000    # Monte-Carlo campaign
//! ftb exhaustive --kernel fft --n1 8 --n2 8           # exhaustive ground truth
//! ftb analyze    --kernel cg --rate 0.01              # boundary inference
//! ftb adaptive   --kernel fft --n1 16 --n2 16         # §3.4 adaptive loop
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{parse, Args, CliError};

/// Entry point shared by `main.rs` and the tests. Returns the process
/// exit code.
pub fn run(raw: &[String]) -> i32 {
    match parse(raw) {
        Ok(args) => match commands::dispatch(&args) {
            Ok(output) => {
                println!("{output}");
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            2
        }
    }
}
