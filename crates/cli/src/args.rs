//! Flag parsing for the `ftb` CLI (hand-rolled; the workspace's offline
//! dependency set has no argument-parsing crate, and the surface is
//! small enough not to need one).

use ftb_inject::ExtractionMode;
use ftb_kernels::{
    CgConfig, CgStorage, FftConfig, GemmConfig, JacobiConfig, KernelConfig, LuConfig, MatvecConfig,
    SpmvConfig, StencilConfig, SweepTweak,
};
use ftb_trace::Precision;
use std::collections::HashMap;
use std::fmt;

/// Usage text printed on parse errors and `ftb help`.
pub const USAGE: &str = "\
ftb — fault tolerance boundary analysis (PPoPP'21 reproduction)

USAGE:
    ftb <command> --kernel <cg|lu|fft|stencil|matvec|spmv|gemm|jacobi> [options]

COMMANDS:
    golden       record the golden run and print its statistics
    campaign     uniform Monte-Carlo fault-injection campaign
    exhaustive   exhaustive campaign (every bit of every site)
    analyze      sample uniformly, infer the boundary, self-verify
    analyze static
                 zero-injection analytical boundary from the golden run's
                 dependence graph, validated against exhaustive truth
    analyze compose
                 compositional boundary: segment the golden run into
                 sections, run per-section campaigns, compose them through
                 error-transfer summaries; incremental re-analysis via a
                 sectioned ledger (--checkpoint / --resume)
    analyze bits
                 bit-level vulnerability map: forward interval analysis
                 over the dependence graph classifies every (site, bit)
                 flip as certified-masked / crash-likely / unknown, with a
                 conservatism scorecard against exhaustive ground truth
    analyze characterize
                 serial-vs-parallel outcome characterization: re-run the
                 exhaustive campaign under dedicated worker pools
                 (--threads, default 1,4,8) and compare per-site outcome
                 distributions with the total-variation distance; any
                 nonzero distance is a reproducibility bug
    adaptive     adaptive progressive sampling (paper §3.4); seeds from
                 the static boundary with --static-prior
    report       per-static-instruction / per-region vulnerability table
    protect      selective-protection plan from the inferred boundary
    help         print this text

KERNEL OPTIONS (defaults in parentheses):
    --kernel NAME          kernel to analyse (required)
    --grid N               cg/stencil/spmv/jacobi grid dimension (8 / 12 / 10 / 6)
    --csr                  cg only: assemble an explicit CSR matrix (MiniFE
                           semantics; matrix entries become injectable)
    --n N                  lu/matvec/gemm matrix dimension (16 / 24 / 12)
    --block N              lu block size (4)
    --n1 N --n2 N          fft factorisation (16 x 16)
    --sweeps N             stencil sweeps (8)
    --f32                  32-bit data elements (default for cg)
    --f64                  64-bit data elements
    --seed N               input/sampling seed (42)

ANALYSIS OPTIONS:
    --tolerance T          output tolerance, L-inf (1e-6)
    --rate R               sampling rate for analyze (0.01)
    --samples N            experiment count for campaign (1000)
    --filter MODE          off | per-site | global (per-site)
    --extraction MODE      propagation-extraction path: buffered |
                           lockstep | streamed (streamed). All paths
                           produce identical results.
    --capacity N           lockstep channel capacity, >= 1 (64); only
                           meaningful with --extraction lockstep
    --safety F             analyze static: divide analytical thresholds
                           by F >= 1 as a rounding margin (1.0)
    --no-validate          analyze static/bits: skip the exhaustive
                           validation campaign, print only the
                           zero-injection artifact
    --static-prior         adaptive: seed the sampler with the static
                           boundary (instrumented kernels only)
    --max-sections N       analyze compose: coalesce the section map to at
                           most N sections (32)
    --secant               analyze compose: additionally bound each
                           section's transfer amplification with the DDG
                           secant quotient (instrumented kernels only)
    --tweak-sweep N        jacobi only: weighted-relaxation edit to sweep
                           N's body (the incremental re-analysis demo)
    --tweak-omega F        relaxation weight of the tweaked sweep (0.5)
    --widen F              analyze bits: relative input widening for the
                           forward interval pass, >= 0 (0 = envelopes
                           around the concrete golden run)
    --threads LIST         analyze characterize: comma-separated worker
                           pool sizes to compare (1,4,8)
    --bit-prune            exhaustive/adaptive: skip (exhaustive) or
                           deprioritise (adaptive) bits the forward
                           interval analysis certifies as masked
                           (instrumented kernels only)
    --snapshot             campaign/exhaustive: snapshot full kernel state
                           at golden-run section boundaries and start each
                           experiment from the snapshot preceding its
                           fault site (snapshot-capable kernels only:
                           jacobi, gemm, matrix-free cg). Results are
                           bit-identical to from-scratch execution.
    --snapshot-max N       snapshot: retain at most N evenly spaced
                           boundary snapshots (128)
    --json PATH            also write results as JSON

CHECKPOINT / OBSERVABILITY OPTIONS (campaign, exhaustive, adaptive):
    --checkpoint PATH      stream progress to a crash-safe checkpoint: a
                           JSONL experiment ledger (campaign/exhaustive)
                           or a per-round sampler state file (adaptive)
    --resume               continue from an existing checkpoint, running
                           only the experiments it does not already hold
    --metrics-out PATH     write a machine-readable metrics summary JSON
                           (counts, throughput, chunk timings)
    --chunk N              experiments per ledger chunk (256)
";

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// Subcommand name.
    pub command: String,
    /// Kernel configuration assembled from the flags.
    pub kernel: KernelConfig,
    /// Output tolerance `T`.
    pub tolerance: f64,
    /// Sampling rate for `analyze`.
    pub rate: f64,
    /// Experiment count for `campaign`.
    pub samples: u64,
    /// Filter mode string (validated in the command layer).
    pub filter: String,
    /// Propagation-extraction path for campaigns and inference.
    pub extraction: ExtractionMode,
    /// Seed.
    pub seed: u64,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Optional checkpoint path (experiment ledger / adaptive state).
    pub checkpoint: Option<String>,
    /// Resume from an existing checkpoint instead of starting over.
    pub resume: bool,
    /// Optional metrics-summary JSON output path.
    pub metrics_out: Option<String>,
    /// Experiments per ledger chunk.
    pub chunk: usize,
    /// `analyze static`: safety divisor applied to analytical thresholds.
    pub safety: f64,
    /// `analyze static`: skip the validation campaign.
    pub no_validate: bool,
    /// `adaptive`: seed the sampler with the static boundary.
    pub static_prior: bool,
    /// `analyze compose`: section-map coalescing cap.
    pub max_sections: usize,
    /// `analyze compose`: secant-bound transfer amplifications with the
    /// DDG quotient.
    pub secant: bool,
    /// `exhaustive`/`adaptive`: prune statically certified bits.
    pub bit_prune: bool,
    /// `campaign`/`exhaustive`: resume experiments from golden-run
    /// boundary snapshots.
    pub snapshot: bool,
    /// Snapshot-store retention cap.
    pub snapshot_max: usize,
    /// `analyze bits`: relative input widening for the forward pass.
    pub widen: f64,
    /// `analyze characterize`: worker pool sizes to compare.
    pub threads: Vec<usize>,
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parse raw arguments (excluding the program name).
pub fn parse(raw: &[String]) -> Result<Args, CliError> {
    let command = raw
        .first()
        .ok_or_else(|| err("missing command"))?
        .to_string();
    if command == "help" || command == "--help" || command == "-h" {
        return Err(err("help requested"));
    }
    const COMMANDS: [&str; 7] = [
        "golden",
        "campaign",
        "exhaustive",
        "analyze",
        "adaptive",
        "report",
        "protect",
    ];
    if !COMMANDS.contains(&command.as_str()) {
        return Err(err(format!("unknown command '{command}'")));
    }
    // `analyze static` / `analyze compose` are two-word subcommands
    let mut flag_start = 1;
    let command = match (command.as_str(), raw.get(1).map(String::as_str)) {
        ("analyze", Some("static")) => {
            flag_start = 2;
            "analyze-static".to_string()
        }
        ("analyze", Some("compose")) => {
            flag_start = 2;
            "analyze-compose".to_string()
        }
        ("analyze", Some("bits")) => {
            flag_start = 2;
            "analyze-bits".to_string()
        }
        ("analyze", Some("characterize")) => {
            flag_start = 2;
            "analyze-characterize".to_string()
        }
        _ => command,
    };

    // collect --key value / --flag pairs
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut i = flag_start;
    while i < raw.len() {
        let key = raw[i]
            .strip_prefix("--")
            .ok_or_else(|| err(format!("expected a --flag, got '{}'", raw[i])))?;
        let boolean = matches!(
            key,
            "f32"
                | "f64"
                | "csr"
                | "resume"
                | "no-validate"
                | "static-prior"
                | "secant"
                | "bit-prune"
                | "snapshot"
        );
        if boolean {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = raw
                .get(i + 1)
                .ok_or_else(|| err(format!("--{key} needs a value")))?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        }
    }

    let get_usize = |k: &str, default: usize| -> Result<usize, CliError> {
        match flags.get(k) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{k}: bad integer '{v}'"))),
        }
    };
    let get_f64 = |k: &str, default: f64| -> Result<f64, CliError> {
        match flags.get(k) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{k}: bad number '{v}'"))),
        }
    };

    let seed = get_usize("seed", 42)? as u64;
    let kernel_name = flags
        .get("kernel")
        .ok_or_else(|| err("--kernel is required"))?
        .as_str();

    let precision = if flags.contains_key("f32") {
        Some(Precision::F32)
    } else if flags.contains_key("f64") {
        Some(Precision::F64)
    } else {
        None
    };

    let kernel = match kernel_name {
        "cg" => {
            let grid = get_usize("grid", 8)?;
            KernelConfig::Cg(CgConfig {
                grid,
                rtol: get_f64("rtol", 1e-4)?,
                max_iters: get_usize("max-iters", 4 * grid * grid)?,
                precision: precision.unwrap_or(Precision::F32),
                seed,
                storage: if flags.contains_key("csr") {
                    CgStorage::AssembledCsr
                } else {
                    CgStorage::MatrixFree
                },
            })
        }
        "lu" => KernelConfig::Lu(LuConfig {
            n: get_usize("n", 16)?,
            block: get_usize("block", 4)?,
            precision: precision.unwrap_or(Precision::F64),
            seed,
        }),
        "fft" => KernelConfig::Fft(FftConfig {
            n1: get_usize("n1", 16)?,
            n2: get_usize("n2", 16)?,
            precision: precision.unwrap_or(Precision::F64),
            seed,
        }),
        "stencil" => KernelConfig::Stencil(StencilConfig {
            grid: get_usize("grid", 12)?,
            sweeps: get_usize("sweeps", 8)?,
            precision: precision.unwrap_or(Precision::F64),
            seed,
        }),
        "matvec" => KernelConfig::Matvec(MatvecConfig {
            n: get_usize("n", 24)?,
            precision: precision.unwrap_or(Precision::F64),
            seed,
        }),
        "spmv" => KernelConfig::Spmv(SpmvConfig {
            grid: get_usize("grid", 10)?,
            precision: precision.unwrap_or(Precision::F64),
            seed,
        }),
        "jacobi" => KernelConfig::Jacobi(JacobiConfig {
            grid: get_usize("grid", 6)?,
            sweeps: get_usize("sweeps", 30)?,
            precision: precision.unwrap_or(Precision::F64),
            seed,
            fine_grained: get_usize("fine", 0)? != 0,
            residual_every: {
                let re = get_usize("resid-every", 1)?;
                if re == 0 {
                    return Err(err("--resid-every must be at least 1"));
                }
                re
            },
            tweak: if flags.contains_key("tweak-sweep") {
                Some(SweepTweak {
                    sweep: get_usize("tweak-sweep", 0)?,
                    omega: {
                        let w = get_f64("tweak-omega", 0.5)?;
                        if !(w.is_finite() && w > 0.0 && w <= 1.0) {
                            return Err(err("--tweak-omega must be in (0, 1]"));
                        }
                        w
                    },
                })
            } else {
                None
            },
        }),
        "gemm" => KernelConfig::Gemm(GemmConfig {
            n: get_usize("n", 12)?,
            precision: precision.unwrap_or(Precision::F64),
            seed,
        }),
        other => return Err(err(format!("unknown kernel '{other}'"))),
    };

    // validated here, once, so every command sees a well-formed mode
    let capacity = get_usize("capacity", 64)?;
    if capacity == 0 {
        return Err(err("--capacity must be at least 1"));
    }
    let extraction_name = flags
        .get("extraction")
        .map(String::as_str)
        .unwrap_or("streamed");
    let extraction = ExtractionMode::from_name(extraction_name, capacity).ok_or_else(|| {
        err(format!(
            "--extraction: unknown mode '{extraction_name}' (expected {})",
            ExtractionMode::NAMES.join(" | ")
        ))
    })?;

    Ok(Args {
        command,
        kernel,
        tolerance: get_f64("tolerance", 1e-6)?,
        rate: get_f64("rate", 0.01)?,
        samples: get_usize("samples", 1000)? as u64,
        filter: flags
            .get("filter")
            .cloned()
            .unwrap_or_else(|| "per-site".into()),
        extraction,
        seed,
        json: flags.get("json").cloned(),
        checkpoint: flags.get("checkpoint").cloned(),
        resume: flags.contains_key("resume"),
        metrics_out: flags.get("metrics-out").cloned(),
        chunk: {
            let chunk = get_usize("chunk", 256)?;
            if chunk == 0 {
                return Err(err("--chunk must be at least 1"));
            }
            chunk
        },
        safety: {
            let safety = get_f64("safety", 1.0)?;
            if !(safety >= 1.0 && safety.is_finite()) {
                return Err(err("--safety must be a finite number >= 1"));
            }
            safety
        },
        no_validate: flags.contains_key("no-validate"),
        static_prior: flags.contains_key("static-prior"),
        max_sections: {
            let m = get_usize("max-sections", 32)?;
            if m == 0 {
                return Err(err("--max-sections must be at least 1"));
            }
            m
        },
        secant: flags.contains_key("secant"),
        bit_prune: flags.contains_key("bit-prune"),
        snapshot: flags.contains_key("snapshot"),
        snapshot_max: {
            let m = get_usize("snapshot-max", 128)?;
            if m == 0 {
                return Err(err("--snapshot-max must be at least 1"));
            }
            m
        },
        widen: {
            let w = get_f64("widen", 0.0)?;
            if !(w.is_finite() && w >= 0.0) {
                return Err(err("--widen must be a finite number >= 0"));
            }
            w
        },
        threads: match flags.get("threads") {
            None => vec![1, 4, 8],
            Some(list) => {
                let counts: Vec<usize> = list
                    .split(',')
                    .map(|s| s.trim().parse())
                    .collect::<Result<_, _>>()
                    .map_err(|_| err(format!("--threads: bad pool-size list '{list}'")))?;
                if counts.is_empty() || counts.contains(&0) {
                    return Err(err("--threads: pool sizes must be at least 1"));
                }
                counts
            }
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_minimal_analyze() {
        let a = parse(&v(&["analyze", "--kernel", "cg"])).unwrap();
        assert_eq!(a.command, "analyze");
        assert!(matches!(a.kernel, KernelConfig::Cg(_)));
        assert_eq!(a.rate, 0.01);
        assert_eq!(a.filter, "per-site");
    }

    #[test]
    fn parses_analyze_compose_subcommand() {
        let a = parse(&v(&[
            "analyze",
            "compose",
            "--kernel",
            "jacobi",
            "--tolerance",
            "1e-4",
        ]))
        .unwrap();
        assert_eq!(a.command, "analyze-compose");
        assert_eq!(a.max_sections, 32);
        assert!(!a.secant);

        let a = parse(&v(&[
            "analyze",
            "compose",
            "--kernel",
            "jacobi",
            "--max-sections",
            "8",
            "--secant",
        ]))
        .unwrap();
        assert_eq!(a.max_sections, 8);
        assert!(a.secant);

        assert!(parse(&v(&[
            "analyze",
            "compose",
            "--kernel",
            "jacobi",
            "--max-sections",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn parses_analyze_bits_subcommand() {
        let a = parse(&v(&["analyze", "bits", "--kernel", "jacobi"])).unwrap();
        assert_eq!(a.command, "analyze-bits");
        assert_eq!(a.widen, 0.0);
        assert!(!a.no_validate);

        let a = parse(&v(&[
            "analyze",
            "bits",
            "--kernel",
            "gemm",
            "--widen",
            "1e-6",
            "--no-validate",
        ]))
        .unwrap();
        assert_eq!(a.widen, 1e-6);
        assert!(a.no_validate);

        // negative or non-finite widening is refused
        assert!(parse(&v(&[
            "analyze", "bits", "--kernel", "gemm", "--widen", "-1"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "analyze", "bits", "--kernel", "gemm", "--widen", "inf"
        ]))
        .is_err());
    }

    #[test]
    fn parses_analyze_characterize_subcommand() {
        let a = parse(&v(&["analyze", "characterize", "--kernel", "lu"])).unwrap();
        assert_eq!(a.command, "analyze-characterize");
        assert_eq!(a.threads, vec![1, 4, 8]);

        let a = parse(&v(&[
            "analyze",
            "characterize",
            "--kernel",
            "fft",
            "--threads",
            "1,2,16",
        ]))
        .unwrap();
        assert_eq!(a.threads, vec![1, 2, 16]);

        // zero or malformed pool sizes are refused
        assert!(parse(&v(&[
            "analyze",
            "characterize",
            "--kernel",
            "fft",
            "--threads",
            "1,0"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "analyze",
            "characterize",
            "--kernel",
            "fft",
            "--threads",
            "two"
        ]))
        .is_err());
    }

    #[test]
    fn parses_bit_prune_flag() {
        let a = parse(&v(&["exhaustive", "--kernel", "jacobi", "--bit-prune"])).unwrap();
        assert!(a.bit_prune);
        let a = parse(&v(&["adaptive", "--kernel", "jacobi"])).unwrap();
        assert!(!a.bit_prune);
    }

    #[test]
    fn parses_snapshot_flags() {
        let a = parse(&v(&["exhaustive", "--kernel", "jacobi", "--snapshot"])).unwrap();
        assert!(a.snapshot);
        assert_eq!(a.snapshot_max, 128);
        let a = parse(&v(&[
            "exhaustive",
            "--kernel",
            "jacobi",
            "--snapshot",
            "--snapshot-max",
            "16",
        ]))
        .unwrap();
        assert_eq!(a.snapshot_max, 16);
        let a = parse(&v(&["exhaustive", "--kernel", "jacobi"])).unwrap();
        assert!(!a.snapshot);
        assert!(parse(&v(&[
            "exhaustive",
            "--kernel",
            "jacobi",
            "--snapshot",
            "--snapshot-max",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn parses_jacobi_sweep_tweak() {
        let a = parse(&v(&[
            "golden",
            "--kernel",
            "jacobi",
            "--grid",
            "4",
            "--tweak-sweep",
            "2",
        ]))
        .unwrap();
        let KernelConfig::Jacobi(cfg) = &a.kernel else {
            panic!("wrong kernel")
        };
        let tweak = cfg.tweak.expect("tweak must be set");
        assert_eq!(tweak.sweep, 2);
        assert_eq!(tweak.omega, 0.5);

        let a = parse(&v(&[
            "golden",
            "--kernel",
            "jacobi",
            "--tweak-sweep",
            "1",
            "--tweak-omega",
            "0.8",
        ]))
        .unwrap();
        let KernelConfig::Jacobi(cfg) = &a.kernel else {
            panic!("wrong kernel")
        };
        assert_eq!(cfg.tweak.unwrap().omega, 0.8);

        // omega outside (0, 1] is refused
        assert!(parse(&v(&[
            "golden",
            "--kernel",
            "jacobi",
            "--tweak-sweep",
            "1",
            "--tweak-omega",
            "1.5"
        ]))
        .is_err());
    }

    #[test]
    fn parses_analyze_static_subcommand() {
        let a = parse(&v(&[
            "analyze",
            "static",
            "--kernel",
            "jacobi",
            "--tolerance",
            "1e-4",
        ]))
        .unwrap();
        assert_eq!(a.command, "analyze-static");
        assert!(matches!(a.kernel, KernelConfig::Jacobi(_)));
        assert_eq!(a.tolerance, 1e-4);
        assert_eq!(a.safety, 1.0);
        assert!(!a.no_validate);

        let a = parse(&v(&[
            "analyze",
            "static",
            "--kernel",
            "gemm",
            "--safety",
            "2",
            "--no-validate",
        ]))
        .unwrap();
        assert_eq!(a.safety, 2.0);
        assert!(a.no_validate);
        // plain analyze is unaffected
        let a = parse(&v(&["analyze", "--kernel", "gemm"])).unwrap();
        assert_eq!(a.command, "analyze");
    }

    #[test]
    fn rejects_sub_one_safety() {
        assert!(parse(&v(&[
            "analyze", "static", "--kernel", "gemm", "--safety", "0.5"
        ]))
        .is_err());
    }

    #[test]
    fn parses_static_prior_flag() {
        let a = parse(&v(&["adaptive", "--kernel", "jacobi", "--static-prior"])).unwrap();
        assert!(a.static_prior);
        let a = parse(&v(&["adaptive", "--kernel", "jacobi"])).unwrap();
        assert!(!a.static_prior);
    }

    #[test]
    fn parses_kernel_dimensions() {
        let a = parse(&v(&[
            "exhaustive",
            "--kernel",
            "fft",
            "--n1",
            "8",
            "--n2",
            "4",
            "--tolerance",
            "0.5",
        ]))
        .unwrap();
        match a.kernel {
            KernelConfig::Fft(f) => {
                assert_eq!(f.n1, 8);
                assert_eq!(f.n2, 4);
            }
            _ => panic!("wrong kernel"),
        }
        assert_eq!(a.tolerance, 0.5);
    }

    #[test]
    fn precision_flags() {
        let a = parse(&v(&["golden", "--kernel", "lu", "--f32"])).unwrap();
        match a.kernel {
            KernelConfig::Lu(l) => assert_eq!(l.precision, Precision::F32),
            _ => panic!(),
        }
        let a = parse(&v(&["golden", "--kernel", "cg"])).unwrap();
        match a.kernel {
            KernelConfig::Cg(c) => assert_eq!(c.precision, Precision::F32),
            _ => panic!(),
        }
    }

    #[test]
    fn seed_feeds_kernel_config() {
        let a = parse(&v(&["golden", "--kernel", "gemm", "--seed", "7"])).unwrap();
        match a.kernel {
            KernelConfig::Gemm(g) => assert_eq!(g.seed, 7),
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_unknown_command_and_kernel() {
        assert!(parse(&v(&["frobnicate", "--kernel", "cg"])).is_err());
        assert!(parse(&v(&["golden", "--kernel", "quantum"])).is_err());
        assert!(parse(&v(&["golden"])).is_err());
        assert!(parse(&v(&[])).is_err());
    }

    #[test]
    fn parses_checkpoint_flags() {
        let a = parse(&v(&[
            "campaign",
            "--kernel",
            "matvec",
            "--checkpoint",
            "ledger.jsonl",
            "--resume",
            "--metrics-out",
            "metrics.json",
            "--chunk",
            "64",
        ]))
        .unwrap();
        assert_eq!(a.checkpoint.as_deref(), Some("ledger.jsonl"));
        assert!(a.resume);
        assert_eq!(a.metrics_out.as_deref(), Some("metrics.json"));
        assert_eq!(a.chunk, 64);
    }

    #[test]
    fn checkpoint_flags_default_off() {
        let a = parse(&v(&["campaign", "--kernel", "matvec"])).unwrap();
        assert!(a.checkpoint.is_none());
        assert!(!a.resume);
        assert!(a.metrics_out.is_none());
        assert_eq!(a.chunk, 256);
    }

    #[test]
    fn zero_chunk_rejected() {
        assert!(parse(&v(&["campaign", "--kernel", "matvec", "--chunk", "0"])).is_err());
    }

    #[test]
    fn extraction_defaults_to_streamed() {
        let a = parse(&v(&["campaign", "--kernel", "matvec"])).unwrap();
        assert_eq!(a.extraction, ExtractionMode::Streamed);
    }

    #[test]
    fn extraction_modes_parse() {
        let a = parse(&v(&[
            "campaign",
            "--kernel",
            "matvec",
            "--extraction",
            "buffered",
        ]))
        .unwrap();
        assert_eq!(a.extraction, ExtractionMode::Buffered);
        let a = parse(&v(&[
            "campaign",
            "--kernel",
            "matvec",
            "--extraction",
            "lockstep",
            "--capacity",
            "16",
        ]))
        .unwrap();
        assert_eq!(a.extraction, ExtractionMode::Lockstep { capacity: 16 });
    }

    #[test]
    fn unknown_extraction_mode_rejected_with_choices() {
        let e = parse(&v(&[
            "campaign",
            "--kernel",
            "matvec",
            "--extraction",
            "warp",
        ]))
        .unwrap_err();
        assert!(e.0.contains("buffered | lockstep | streamed"), "{}", e.0);
    }

    #[test]
    fn zero_capacity_rejected_at_parse_time() {
        // regression: the lockstep extractor asserts on capacity > 0, so
        // a zero capacity must die here with a clear message, not deep in
        // a worker thread mid-campaign
        let e = parse(&v(&[
            "campaign",
            "--kernel",
            "matvec",
            "--extraction",
            "lockstep",
            "--capacity",
            "0",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--capacity must be at least 1"), "{}", e.0);
        // a zero capacity is rejected even when lockstep is not selected
        assert!(parse(&v(&["campaign", "--kernel", "matvec", "--capacity", "0"])).is_err());
    }

    #[test]
    fn rejects_malformed_flags() {
        assert!(parse(&v(&["golden", "kernel", "cg"])).is_err());
        assert!(parse(&v(&["golden", "--kernel", "cg", "--grid"])).is_err());
        assert!(parse(&v(&["golden", "--kernel", "cg", "--grid", "NaNa"])).is_err());
    }
}
