//! Command implementations. Each returns its report as a `String` so the
//! commands are testable without capturing stdout.

use crate::args::{Args, CliError};
use ftb_core::prelude::*;
use ftb_core::{AdaptiveState, StaticValidation};
use ftb_inject::{
    exhaustive_plan, monte_carlo_plan, pruned_exhaustive_plan, schedule_snapshot_major,
    BitPruneBinding, CampaignBinding, CampaignMetrics, ChunkedCampaign, ExhaustiveResult,
    MetricsSnapshot,
};
use ftb_report::{
    bits_vuln_table, boundary_comparison, sections_table, BitsVulnRow, BoundaryMethodRow,
    SectionRow, Table,
};
use ftb_trace::FaultSpec;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

fn filter_mode(name: &str) -> Result<FilterMode, CliError> {
    match name {
        "off" => Ok(FilterMode::Off),
        "per-site" => Ok(FilterMode::PerSite),
        "global" => Ok(FilterMode::Global),
        other => Err(CliError(format!("unknown filter mode '{other}'"))),
    }
}

fn maybe_write_json<T: serde::Serialize>(args: &Args, value: &T) -> Result<(), CliError> {
    if let Some(path) = &args.json {
        let data = serde_json::to_vec_pretty(value)
            .map_err(|e| CliError(format!("serialising JSON: {e}")))?;
        std::fs::write(path, data).map_err(|e| CliError(format!("writing {path}: {e}")))?;
    }
    Ok(())
}

fn maybe_write_metrics(args: &Args, metrics: &MetricsSnapshot) -> Result<(), CliError> {
    if let Some(path) = &args.metrics_out {
        let data = serde_json::to_vec_pretty(metrics)
            .map_err(|e| CliError(format!("serialising metrics: {e}")))?;
        std::fs::write(path, data).map_err(|e| CliError(format!("writing {path}: {e}")))?;
    }
    Ok(())
}

/// The identity a checkpoint file is bound to for this invocation.
fn campaign_binding(args: &Args, injector: &Injector<'_>, plan: &str) -> CampaignBinding {
    CampaignBinding {
        kernel: args.kernel.clone(),
        classifier: *injector.classifier(),
        n_sites: injector.n_sites(),
        bits: injector.bits(),
        plan: plan.to_string(),
        bit_prune: None,
        snapshot: injector.snapshot_store().map(|s| s.binding()),
    }
}

/// Run a fixed fault plan through the chunked campaign runtime, with the
/// ledger, resume, progress, and metrics behavior selected by the flags.
fn run_chunked<'k>(
    args: &Args,
    injector: &'k Injector<'k>,
    plan_desc: &str,
    plan: Vec<FaultSpec>,
    bit_prune: Option<BitPruneBinding>,
) -> Result<ChunkedCampaign<'k>, CliError> {
    // snapshot-major order: one warm snapshot serves a contiguous batch.
    // Stable, so the (already snapshot-major) exhaustive plans pass
    // through unchanged and keep their site-major record layout.
    let plan = match injector.snapshot_store() {
        Some(store) => schedule_snapshot_major(&plan, store),
        None => plan,
    };
    let mut cc = ChunkedCampaign::new(injector, plan, args.chunk)
        .with_reporter(format!("ftb {}", args.command), Duration::from_secs(2));
    if let Some(path) = &args.checkpoint {
        let mut binding = campaign_binding(args, injector, plan_desc);
        binding.bit_prune = bit_prune;
        cc = cc
            .with_ledger(Path::new(path), binding, args.resume)
            .map_err(|e| CliError(format!("checkpoint {path}: {e}")))?;
    }
    cc.run_to_completion()
        .map_err(|e| CliError(format!("campaign: {e}")))?;
    maybe_write_metrics(args, &cc.metrics())?;
    Ok(cc)
}

/// Run the selected command.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "golden" => golden(args),
        "campaign" => campaign(args),
        "exhaustive" => exhaustive(args),
        "analyze" => analyze(args),
        "analyze-static" => analyze_static(args),
        "analyze-compose" => analyze_compose(args),
        "analyze-bits" => analyze_bits(args),
        "analyze-characterize" => analyze_characterize(args),
        "adaptive" => adaptive(args),
        "report" => report(args),
        "protect" => protect(args),
        other => Err(CliError(format!("unknown command '{other}'"))),
    }
}

fn golden(args: &Args) -> Result<String, CliError> {
    let kernel = args.kernel.build();
    let g = kernel.golden();
    let mut out = String::new();
    let _ = writeln!(out, "kernel:               {}", kernel.name());
    let _ = writeln!(out, "dynamic instructions: {}", g.n_sites());
    let _ = writeln!(out, "experiment space:     {}", g.n_experiments());
    let _ = writeln!(out, "branch events:        {}", g.branches.len());
    let _ = writeln!(out, "output elements:      {}", g.output.len());
    let _ = writeln!(
        out,
        "trace memory:         {:.1} KiB",
        g.memory_bytes() as f64 / 1024.0
    );

    // per-region site counts
    let registry = kernel.registry();
    let mut counts = vec![0usize; registry.len()];
    for site in 0..g.n_sites() {
        counts[g.static_id(site).index()] += 1;
    }
    let mut table = Table::new(&["static instruction", "region", "dynamic sites"]);
    for (id, instr) in registry.iter() {
        table.row(&[
            instr.name.to_string(),
            instr.region.label().to_string(),
            counts[id.index()].to_string(),
        ]);
    }
    let _ = write!(out, "\n{}", table.render());
    Ok(out)
}

fn campaign(args: &Args) -> Result<String, CliError> {
    let kernel = args.kernel.build();
    let mut analysis = Analysis::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    if args.snapshot {
        analysis = analysis.with_snapshots(args.snapshot_max);
    }
    let injector = analysis.injector();
    let plan_desc = format!("monte-carlo n={} seed={}", args.samples, args.seed);
    let plan = monte_carlo_plan(injector.n_sites(), injector.bits(), args.samples, args.seed);
    let cc = run_chunked(args, injector, &plan_desc, plan, None)?;
    let est = ftb_inject::monte_carlo::summarize(cc.experiments(), 0.95);
    maybe_write_json(args, &est)?;
    let mut out = String::new();
    let _ = writeln!(out, "experiments:     {}", est.n);
    let _ = writeln!(
        out,
        "outcomes:        {} masked, {} SDC, {} crash",
        est.n_masked, est.n_sdc, est.n_crash
    );
    let _ = writeln!(
        out,
        "SDC ratio:       {:.3}%  (95% CI [{:.3}%, {:.3}%])",
        est.sdc_ratio() * 100.0,
        est.sdc_ci.lo * 100.0,
        est.sdc_ci.hi * 100.0
    );
    let _ = writeln!(
        out,
        "sites observed:  {} of {}",
        est.distinct_sites,
        analysis.n_sites()
    );
    Ok(out)
}

/// Forward-interval safe-bit masks for `--bit-prune` and `analyze bits`:
/// static backward boundary × forward value envelopes, both derived from
/// the golden run's provenance DDG with zero injections.
fn static_bit_masks(args: &Args, kernel: &dyn ftb_kernels::Kernel) -> Result<BitMasks, CliError> {
    let (golden, ddg) = kernel.golden_with_ddg();
    let sb = static_bound(
        &ddg,
        &ftb_core::StaticBoundConfig {
            tolerance: args.tolerance,
            safety: args.safety,
        },
    )
    .map_err(|e| CliError(format!("bit masks: {e}")))?;
    let fw = forward_pass(&ddg, &golden, &ForwardConfig { widen: args.widen })
        .map_err(|e| CliError(format!("forward pass: {e}")))?;
    Ok(safe_bit_masks(&fw, &sb.boundary(), MaskSource::Static))
}

fn exhaustive(args: &Args) -> Result<String, CliError> {
    let kernel = args.kernel.build();
    let mut analysis = Analysis::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    if args.snapshot {
        analysis = analysis.with_snapshots(args.snapshot_max);
    }
    let injector = analysis.injector();
    if args.snapshot && injector.snapshot_store().is_none() {
        eprintln!("[ftb exhaustive] note: kernel is not snapshot-capable; running from scratch");
    }

    let masks = if args.bit_prune {
        Some(static_bit_masks(args, kernel.as_ref())?)
    } else {
        None
    };
    let (ex, skipped) = match &masks {
        Some(masks) => {
            let certified = masks.certified_masks();
            let plan = pruned_exhaustive_plan(injector.n_sites(), injector.bits(), &certified);
            let binding = BitPruneBinding {
                certified: masks.certified_total(),
                digest: masks.digest(),
            };
            let cc = run_chunked(args, injector, "exhaustive bit-prune", plan, Some(binding))?;
            (
                cc.into_exhaustive_with_certified(&certified),
                masks.certified_total(),
            )
        }
        None => {
            let plan = exhaustive_plan(injector.n_sites(), injector.bits());
            let cc = run_chunked(args, injector, "exhaustive", plan, None)?;
            (cc.into_exhaustive(), 0)
        }
    };
    maybe_write_json(args, &ex)?;
    let (m, s, c) = ex.counts();
    let mut out = String::new();
    let _ = writeln!(out, "experiments:  {}", ex.n_experiments() - skipped);
    if let Some(store) = injector.snapshot_store() {
        let _ = writeln!(
            out,
            "snapshots:    {} boundaries ({:.1} MiB), experiments resumed mid-trace",
            store.len(),
            store.store_bytes() as f64 / (1024.0 * 1024.0)
        );
    }
    if let Some(masks) = &masks {
        let _ = writeln!(
            out,
            "bit-prune:    {skipped} certified bits skipped ({:.2}x campaign reduction)",
            masks.reduction_factor()
        );
    }
    let _ = writeln!(out, "outcomes:     {m} masked, {s} SDC, {c} crash");
    let _ = writeln!(out, "SDC ratio:    {:.3}%", ex.overall_sdc_ratio() * 100.0);
    Ok(out)
}

fn analyze(args: &Args) -> Result<String, CliError> {
    let filter = filter_mode(&args.filter)?;
    let kernel = args.kernel.build();
    let analysis = Analysis::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let samples = analysis.sample_uniform(args.rate, args.seed);
    let inference = analysis.infer(&samples, filter);
    let predictor = analysis.predictor(&inference.boundary);
    let uncertainty = analysis.uncertainty(&inference.boundary, &samples);
    let overall = predictor.overall_sdc_ratio(Some(&samples));
    maybe_write_json(args, &inference)?;

    let (m, s, c) = samples.counts();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sampled:            {} experiments at {} sites ({:.2}% of {})",
        samples.len(),
        samples.distinct_sites(),
        samples.site_rate(analysis.n_sites()) * 100.0,
        analysis.n_sites()
    );
    let _ = writeln!(out, "outcomes:           {m} masked, {s} SDC, {c} crash");
    let _ = writeln!(
        out,
        "boundary coverage:  {:.1}% of sites",
        inference.boundary.coverage() * 100.0
    );
    let _ = writeln!(out, "predicted SDC:      {:.3}%", overall * 100.0);
    let _ = writeln!(
        out,
        "uncertainty (§3.6): {:.2}%  (self-verified precision; 100% = no \
         contradiction between boundary and samples)",
        uncertainty * 100.0
    );
    Ok(out)
}

/// Machine-readable result of `ftb analyze static`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StaticAnalysisReport {
    kernel: String,
    tolerance: f64,
    safety: f64,
    n_sites: usize,
    n_edges: usize,
    n_constrained: usize,
    record_seconds: f64,
    backward_seconds: f64,
    /// Always zero — the analytical boundary's whole point.
    n_injections_static: u64,
    validation: Option<StaticValidation>,
    comparison: Vec<BoundaryMethodRow>,
}

fn analyze_static(args: &Args) -> Result<String, CliError> {
    let filter = filter_mode(&args.filter)?;
    let kernel = args.kernel.build();

    let t0 = Instant::now();
    let (golden, ddg) = kernel.golden_with_ddg();
    let record_seconds = t0.elapsed().as_secs_f64();
    let cfg = ftb_core::StaticBoundConfig {
        tolerance: args.tolerance,
        safety: args.safety,
    };
    let t1 = Instant::now();
    let sb = static_bound(&ddg, &cfg).map_err(|e| CliError(format!("static analysis: {e}")))?;
    let backward_seconds = t1.elapsed().as_secs_f64();
    let boundary = sb.boundary();

    let mut out = String::new();
    let _ = writeln!(out, "kernel:             {}", kernel.name());
    let _ = writeln!(out, "dynamic sites:      {}", sb.n_sites());
    let _ = writeln!(out, "dependence edges:   {}", sb.n_edges);
    let _ = writeln!(
        out,
        "constrained sites:  {} ({:.1}%)",
        sb.n_constrained,
        sb.n_constrained as f64 / sb.n_sites().max(1) as f64 * 100.0
    );
    let _ = writeln!(
        out,
        "wall time:          {:.1} ms golden+DDG, {:.1} ms backward pass",
        record_seconds * 1e3,
        backward_seconds * 1e3
    );
    let _ = writeln!(
        out,
        "injections used:    0 (analytical bound from the golden run only)"
    );

    let mut report = StaticAnalysisReport {
        kernel: kernel.name().to_string(),
        tolerance: args.tolerance,
        safety: args.safety,
        n_sites: sb.n_sites(),
        n_edges: sb.n_edges,
        n_constrained: sb.n_constrained,
        record_seconds,
        backward_seconds,
        n_injections_static: 0,
        validation: None,
        comparison: Vec::new(),
    };

    if args.no_validate {
        maybe_write_json(args, &report)?;
        return Ok(out);
    }

    // validation: exhaustive ground truth + a pinned-seed sample, then the
    // static / inferred / golden three-way comparison
    let injector = Injector::with_golden(kernel.as_ref(), golden, Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let truth = injector.exhaustive();
    let n_val_sites = ((args.rate * injector.n_sites() as f64).ceil() as usize).max(4);
    let samples = SampleSet::sample_sites(&injector, n_val_sites, args.seed);
    let v = validate_static(
        &Predictor::new(injector.golden(), &boundary),
        &truth,
        &samples,
        injector.golden(),
        &sb.thresholds,
    );

    let inference = infer_boundary(&injector, &samples, filter);
    let inferred_pred = Predictor::new(injector.golden(), &inference.boundary);
    let inferred_eval = BoundaryEval::against_exhaustive(&inferred_pred, &truth);
    let inferred_unc = BoundaryEval::uncertainty(&inferred_pred, &samples).precision;

    let gb = golden_boundary(injector.golden(), &truth);
    let golden_eval =
        BoundaryEval::against_exhaustive(&Predictor::new(injector.golden(), &gb), &truth);

    report.comparison = vec![
        BoundaryMethodRow {
            method: "static".into(),
            injections: 0,
            coverage: boundary.coverage(),
            precision: v.eval.precision,
            recall: v.eval.recall,
            uncertainty: Some(v.uncertainty),
        },
        BoundaryMethodRow {
            method: "inferred".into(),
            injections: samples.len() as u64,
            coverage: inference.boundary.coverage(),
            precision: inferred_eval.precision,
            recall: inferred_eval.recall,
            uncertainty: Some(inferred_unc),
        },
        BoundaryMethodRow {
            method: "golden (exhaustive)".into(),
            injections: truth.n_experiments(),
            coverage: gb.coverage(),
            precision: golden_eval.precision,
            recall: golden_eval.recall,
            uncertainty: None,
        },
    ];
    report.validation = Some(v);

    let _ = writeln!(
        out,
        "conservative:       {:.1}% of SDC-bearing sites (median slack {:.1}x)",
        v.conservative_fraction * 100.0,
        v.median_slack
    );
    let _ = writeln!(
        out,
        "\nstatic vs inferred (rate {:.1}%) vs exhaustive:\n",
        args.rate * 100.0
    );
    let _ = write!(out, "{}", boundary_comparison(&report.comparison));
    maybe_write_json(args, &report)?;
    Ok(out)
}

/// JSON artifact of `ftb analyze compose`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ComposeReport {
    kernel: String,
    tolerance: f64,
    n_sites: usize,
    n_sections: usize,
    reran: Vec<usize>,
    reused: Vec<usize>,
    n_injections: u64,
    conservative_fraction: Option<f64>,
    sections: Vec<SectionRow>,
    comparison: Vec<BoundaryMethodRow>,
}

/// Per-site smallest SDC-causing injected error, from exhaustive truth.
fn min_sdc_per_site(golden: &ftb_trace::GoldenRun, truth: &ExhaustiveResult) -> Vec<f64> {
    (0..golden.n_sites())
        .map(|site| {
            let errs = golden.flip_errors(site);
            (0..truth.bits)
                .filter(|&bit| truth.outcome(site, bit).is_sdc())
                .map(|bit| errs[bit as usize])
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

fn analyze_compose(args: &Args) -> Result<String, CliError> {
    let kernel = args.kernel.build();
    let injector = Injector::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let cfg = ftb_core::ComposeConfig {
        tolerance: args.tolerance,
        rate: args.rate,
        seed: args.seed,
        safety: args.safety,
        extrapolate: true,
        max_sections: args.max_sections,
        secant: args.secant,
    };
    let ledger = args.checkpoint.as_ref().map(Path::new);
    let t0 = Instant::now();
    let r = compose_analysis(kernel.as_ref(), &args.kernel, &injector, &cfg, ledger)
        .map_err(|e| CliError(format!("compose analysis: {e}")))?;
    let compose_seconds = t0.elapsed().as_secs_f64();

    let m = r.map.n_sections();
    let sections: Vec<SectionRow> = (0..m)
        .map(|t| {
            let (lo, hi) = r.map.range(t);
            SectionRow {
                index: t,
                lo,
                hi,
                injections: if r.reused.contains(&t) {
                    0
                } else {
                    r.summaries[t].n_experiments
                },
                amp_in: r.summaries[t].amp_in,
                budget: r.budgets[t],
                reused: r.reused.contains(&t),
            }
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "kernel:            {}", kernel.name());
    let _ = writeln!(out, "dynamic sites:     {}", injector.n_sites());
    let _ = writeln!(out, "sections:          {m}");
    let _ = writeln!(
        out,
        "sections re-run:   {} of {m} ({} reused from ledger)",
        r.reran.len(),
        r.reused.len()
    );
    let _ = writeln!(out, "injections spent:  {}", r.n_experiments);
    let _ = writeln!(out, "wall time:         {:.1} ms", compose_seconds * 1e3);
    let _ = writeln!(out, "\nper-section summary:\n");
    let _ = write!(out, "{}", sections_table(&sections));

    let mut report = ComposeReport {
        kernel: kernel.name().to_string(),
        tolerance: args.tolerance,
        n_sites: injector.n_sites(),
        n_sections: m,
        reran: r.reran.clone(),
        reused: r.reused.clone(),
        n_injections: r.n_experiments,
        conservative_fraction: None,
        sections,
        comparison: Vec::new(),
    };

    if args.no_validate {
        maybe_write_json(args, &report)?;
        return Ok(out);
    }

    // four-way scorecard: composed vs inferred vs static vs exhaustive
    let truth = injector.exhaustive();
    let golden = injector.golden();
    let composed_eval =
        BoundaryEval::against_exhaustive(&Predictor::new(golden, &r.boundary), &truth);
    let min_sdc = min_sdc_per_site(golden, &truth);
    let conservative = (0..golden.n_sites())
        .filter(|&s| r.boundary.threshold(s) < min_sdc[s] || min_sdc[s].is_infinite())
        .count() as f64
        / golden.n_sites().max(1) as f64;
    report.conservative_fraction = Some(conservative);

    let n_val_sites = ((args.rate * injector.n_sites() as f64).ceil() as usize).max(4);
    let samples = SampleSet::sample_sites(&injector, n_val_sites, args.seed);
    let inference = infer_boundary(&injector, &samples, FilterMode::PerSite);
    let inferred_eval =
        BoundaryEval::against_exhaustive(&Predictor::new(golden, &inference.boundary), &truth);

    let gb = golden_boundary(golden, &truth);
    let golden_eval = BoundaryEval::against_exhaustive(&Predictor::new(golden, &gb), &truth);

    report.comparison = vec![
        BoundaryMethodRow {
            method: "composed".into(),
            injections: r.n_experiments,
            coverage: r.boundary.coverage(),
            precision: composed_eval.precision,
            recall: composed_eval.recall,
            uncertainty: None,
        },
        BoundaryMethodRow {
            method: "inferred".into(),
            injections: samples.len() as u64,
            coverage: inference.boundary.coverage(),
            precision: inferred_eval.precision,
            recall: inferred_eval.recall,
            uncertainty: None,
        },
    ];
    // the static row needs provenance instrumentation; skip it (with a
    // note) for kernels that lack it rather than failing the command
    let (_, ddg) = kernel.golden_with_ddg();
    let static_cfg = ftb_core::StaticBoundConfig {
        tolerance: args.tolerance,
        safety: args.safety,
    };
    match static_bound(&ddg, &static_cfg) {
        Ok(sb) => {
            let sb_boundary = sb.boundary();
            let static_eval =
                BoundaryEval::against_exhaustive(&Predictor::new(golden, &sb_boundary), &truth);
            report.comparison.push(BoundaryMethodRow {
                method: "static".into(),
                injections: 0,
                coverage: sb_boundary.coverage(),
                precision: static_eval.precision,
                recall: static_eval.recall,
                uncertainty: None,
            });
        }
        Err(e) => {
            let _ = writeln!(out, "\n(static row skipped: {e})");
        }
    }
    report.comparison.push(BoundaryMethodRow {
        method: "golden (exhaustive)".into(),
        injections: truth.n_experiments(),
        coverage: gb.coverage(),
        precision: golden_eval.precision,
        recall: golden_eval.recall,
        uncertainty: None,
    });

    let _ = writeln!(
        out,
        "\nconservative:      {:.1}% of sites stay below their smallest SDC error",
        conservative * 100.0
    );
    let _ = writeln!(
        out,
        "\ncomposed vs inferred vs static vs exhaustive (rate {:.1}%):\n",
        args.rate * 100.0
    );
    let _ = write!(out, "{}", boundary_comparison(&report.comparison));
    maybe_write_json(args, &report)?;
    Ok(out)
}

/// Conservatism scorecard of the masks against exhaustive ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BitsScorecard {
    /// Certified bits whose true outcome is SDC or Crash. Soundness
    /// demands zero.
    violations: u64,
    /// Bits that really are masked in the exhaustive table.
    truly_masked: u64,
    /// Fraction of truly-masked bits the analysis certified without an
    /// injection (the map's recall; 1 - this is the conservatism cost).
    certified_recall: f64,
    /// Crash-likely bits whose true outcome really is a crash.
    crash_likely_hits: u64,
    /// Injections the validation spent.
    n_injections: u64,
}

/// Machine-readable result of `ftb analyze bits`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BitsAnalysisReport {
    kernel: String,
    tolerance: f64,
    safety: f64,
    widen: f64,
    source: String,
    n_sites: usize,
    bits: u8,
    /// Sites whose forward envelope escaped to NaN/overflow.
    n_unbounded: usize,
    certified_total: u64,
    crash_likely_total: u64,
    total_bits: u64,
    /// `total / (total - certified)` — campaign work factor saved by
    /// `--bit-prune`.
    reduction_factor: f64,
    /// Order-sensitive digest of the certified masks (binds pruned
    /// ledgers).
    digest: u64,
    per_instruction: Vec<BitsVulnRow>,
    /// Per-site certified-masked bit fraction (the vulnerability map).
    per_site_safe_fraction: Vec<f64>,
    /// Per-site provable crash-likely exponent-bit band, if any.
    crash_bands: Vec<Option<(u8, u8)>>,
    scorecard: Option<BitsScorecard>,
}

fn analyze_bits(args: &Args) -> Result<String, CliError> {
    let kernel = args.kernel.build();
    let t0 = Instant::now();
    let masks = static_bit_masks(args, kernel.as_ref())?;
    let (golden, ddg) = kernel.golden_with_ddg();
    let fw = forward_pass(&ddg, &golden, &ForwardConfig { widen: args.widen })
        .map_err(|e| CliError(format!("forward pass: {e}")))?;
    let analysis_seconds = t0.elapsed().as_secs_f64();
    let n = masks.n_sites();
    let bits = masks.bits;

    // aggregate the per-site map by static instruction
    let registry = kernel.registry();
    let mut counts = vec![0usize; registry.len()];
    let mut safe_sum = vec![0.0f64; registry.len()];
    let mut crash_sites = vec![0usize; registry.len()];
    for site in 0..n {
        let id = golden.static_id(site).index();
        counts[id] += 1;
        safe_sum[id] += masks.safe_fraction(site);
        crash_sites[id] += usize::from(masks.crash_band(site).is_some());
    }
    let per_instruction: Vec<BitsVulnRow> = registry
        .iter()
        .filter(|(id, _)| counts[id.index()] > 0)
        .map(|(id, instr)| BitsVulnRow {
            name: instr.name.to_string(),
            region: instr.region.label().to_string(),
            dynamic_sites: counts[id.index()],
            mean_safe_fraction: safe_sum[id.index()] / counts[id.index()] as f64,
            crash_band_sites: crash_sites[id.index()],
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "kernel:             {}", kernel.name());
    let _ = writeln!(out, "fault space:        {n} sites x {bits} bits");
    let _ = writeln!(
        out,
        "forward envelopes:  {} unbounded of {n} sites (widen {:e})",
        fw.n_unbounded, args.widen
    );
    let _ = writeln!(
        out,
        "certified masked:   {} of {} bits ({:.1}%)",
        masks.certified_total(),
        masks.total_bits(),
        masks.certified_total() as f64 / masks.total_bits().max(1) as f64 * 100.0
    );
    let _ = writeln!(
        out,
        "crash-likely:       {} bits",
        masks.crash_likely_total()
    );
    let _ = writeln!(
        out,
        "campaign reduction: {:.2}x under --bit-prune",
        masks.reduction_factor()
    );
    let _ = writeln!(
        out,
        "wall time:          {:.1} ms (certification source: static, 0 injections)",
        analysis_seconds * 1e3
    );
    let _ = writeln!(out, "\nper-instruction vulnerability map:\n");
    let _ = write!(out, "{}", bits_vuln_table(&per_instruction));

    let mut report = BitsAnalysisReport {
        kernel: kernel.name().to_string(),
        tolerance: args.tolerance,
        safety: args.safety,
        widen: args.widen,
        source: "static".into(),
        n_sites: n,
        bits,
        n_unbounded: fw.n_unbounded,
        certified_total: masks.certified_total(),
        crash_likely_total: masks.crash_likely_total(),
        total_bits: masks.total_bits(),
        reduction_factor: masks.reduction_factor(),
        digest: masks.digest(),
        per_instruction,
        per_site_safe_fraction: (0..n).map(|s| masks.safe_fraction(s)).collect(),
        crash_bands: (0..n).map(|s| masks.crash_band(s)).collect(),
        scorecard: None,
    };

    if args.no_validate {
        maybe_write_json(args, &report)?;
        return Ok(out);
    }

    // conservatism scorecard: every certified bit must really be masked
    let injector = Injector::with_golden(kernel.as_ref(), golden, Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let truth = injector.exhaustive();
    let (mut violations, mut truly_masked, mut certified_ok, mut crash_hits) =
        (0u64, 0u64, 0u64, 0u64);
    for site in 0..n {
        for bit in 0..bits {
            let o = truth.outcome(site, bit);
            let masked = matches!(o, Outcome::Masked);
            truly_masked += u64::from(masked);
            match masks.class(site, bit) {
                BitClass::CertifiedMasked => {
                    if masked {
                        certified_ok += 1;
                    } else {
                        violations += 1;
                    }
                }
                BitClass::CrashLikely => {
                    crash_hits += u64::from(matches!(o, Outcome::Crash(_)));
                }
                BitClass::Unknown => {}
            }
        }
    }
    let scorecard = BitsScorecard {
        violations,
        truly_masked,
        certified_recall: certified_ok as f64 / truly_masked.max(1) as f64,
        crash_likely_hits: crash_hits,
        n_injections: truth.n_experiments(),
    };
    let _ = writeln!(
        out,
        "\nconservatism vs exhaustive ({} injections):",
        scorecard.n_injections
    );
    let _ = writeln!(
        out,
        "  violations:        {} of {} certified bits ({})",
        scorecard.violations,
        masks.certified_total(),
        if scorecard.violations == 0 {
            "sound"
        } else {
            "UNSOUND"
        }
    );
    let _ = writeln!(
        out,
        "  certified recall:  {:.1}% of truly-masked bits certified with 0 injections",
        scorecard.certified_recall * 100.0
    );
    let _ = writeln!(
        out,
        "  crash-likely hits: {} of {} provably non-finite flips crashed",
        scorecard.crash_likely_hits,
        masks.crash_likely_total()
    );
    report.scorecard = Some(scorecard);
    maybe_write_json(args, &report)?;
    Ok(out)
}

fn analyze_characterize(args: &Args) -> Result<String, CliError> {
    let kernel = args.kernel.build();
    let injector = Injector::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let report = ftb_inject::characterize(&injector, &args.threads);
    maybe_write_json(args, &report)?;

    let mut out = String::new();
    let _ = writeln!(out, "kernel:        {}", report.kernel);
    let _ = writeln!(out, "sites:         {}", report.n_sites);
    let _ = writeln!(
        out,
        "experiments:   {} per pool size ({} pool sizes)",
        report.n_experiments,
        report.thread_counts.len()
    );

    let mut runs = Table::new(&["threads", "masked", "SDC", "crash"]);
    for r in &report.runs {
        runs.row(&[
            r.threads.to_string(),
            r.masked.to_string(),
            r.sdc.to_string(),
            r.crash.to_string(),
        ]);
    }
    let _ = write!(out, "\nper-pool outcome totals:\n\n{}", runs.render());

    let mut pairs = Table::new(&["pools", "max TVD", "mean TVD", "diverging sites"]);
    for p in &report.pairs {
        pairs.row(&[
            format!("{} vs {}", p.threads_a, p.threads_b),
            format!("{:.6}", p.max_tvd),
            format!("{:.6}", p.mean_tvd),
            match p.worst_site {
                Some(site) => format!("{} (worst: site {site})", p.diverging_sites),
                None => p.diverging_sites.to_string(),
            },
        ]);
    }
    let _ = write!(
        out,
        "\nper-site outcome-distribution distance:\n\n{}",
        pairs.render()
    );
    let _ = writeln!(
        out,
        "\nreproducible:  {}",
        if report.deterministic {
            "yes (every per-site distribution identical across pool sizes)"
        } else {
            "NO — outcome distributions depend on worker count"
        }
    );
    Ok(out)
}

/// On-disk format of an adaptive `--checkpoint` file: the complete
/// sampler state (including the per-site information counts) plus the
/// campaign binding a resume must agree with.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdaptiveCheckpoint {
    format: String,
    binding: CampaignBinding,
    state: AdaptiveState,
}

const ADAPTIVE_FORMAT: &str = "ftb-adaptive-v1";

/// Atomically replace the checkpoint (write-to-temp + rename), so a
/// crash mid-write leaves the previous round's state intact.
fn write_adaptive_checkpoint(
    path: &str,
    binding: &CampaignBinding,
    state: &AdaptiveState,
) -> Result<(), CliError> {
    let cp = AdaptiveCheckpoint {
        format: ADAPTIVE_FORMAT.to_string(),
        binding: binding.clone(),
        state: state.clone(),
    };
    let data =
        serde_json::to_vec(&cp).map_err(|e| CliError(format!("serialising checkpoint: {e}")))?;
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, data).map_err(|e| CliError(format!("writing {tmp}: {e}")))?;
    std::fs::rename(&tmp, path).map_err(|e| CliError(format!("replacing {path}: {e}")))?;
    Ok(())
}

fn load_adaptive_checkpoint(
    path: &str,
    expected: &CampaignBinding,
    injector: &Injector<'_>,
) -> Result<AdaptiveState, CliError> {
    let data =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("reading {path}: {e}")))?;
    let cp: AdaptiveCheckpoint =
        serde_json::from_str(&data).map_err(|e| CliError(format!("parsing {path}: {e}")))?;
    if cp.format != ADAPTIVE_FORMAT {
        return Err(CliError(format!(
            "{path}: unsupported checkpoint format {:?} (expected {ADAPTIVE_FORMAT:?})",
            cp.format
        )));
    }
    if !cp.binding.matches(expected) {
        return Err(CliError(format!(
            "{path}: checkpoint belongs to a different campaign (recorded plan: {:?})",
            cp.binding.plan
        )));
    }
    if !cp.state.matches(injector) {
        return Err(CliError(format!(
            "{path}: checkpoint fault space ({} sites × {} bits) does not match the kernel",
            cp.state.n_sites, cp.state.bits
        )));
    }
    Ok(cp.state)
}

fn adaptive(args: &Args) -> Result<String, CliError> {
    let filter = filter_mode(&args.filter)?;
    let kernel = args.kernel.build();
    let analysis = Analysis::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let injector = analysis.injector();
    let cfg = AdaptiveConfig {
        filter,
        seed: args.seed,
        ..AdaptiveConfig::default()
    };
    let plan_desc = format!(
        "adaptive seed={} filter={} static-prior={}",
        args.seed, args.filter, args.static_prior
    );
    let masks = if args.bit_prune {
        Some(static_bit_masks(args, kernel.as_ref())?)
    } else {
        None
    };
    let mut binding = campaign_binding(args, injector, &plan_desc);
    binding.bit_prune = masks.as_ref().map(|m| BitPruneBinding {
        certified: m.certified_total(),
        digest: m.digest(),
    });

    let mut state = match &args.checkpoint {
        Some(path) if args.resume && Path::new(path).exists() => {
            let state = load_adaptive_checkpoint(path, &binding, injector)?;
            eprintln!(
                "[ftb adaptive] resuming from {path}: {} rounds, {} experiments done",
                state.round,
                state.samples.len()
            );
            state
        }
        _ if args.static_prior => {
            let (_, ddg) = kernel.golden_with_ddg();
            let sb = static_bound(&ddg, &ftb_core::StaticBoundConfig::new(args.tolerance))
                .map_err(|e| CliError(format!("--static-prior: {e}")))?;
            AdaptiveState::with_prior(injector, &cfg, sb.boundary())
        }
        _ => AdaptiveState::new(injector, &cfg),
    };
    // Prune certified bits from the candidate space so the round budget
    // re-weights toward Unknown bits. Idempotent, so re-applying after a
    // resume (whose checkpoint already carries the pruned space) is a
    // no-op — and the binding's bit_prune digest guarantees the masks
    // have not drifted since the checkpoint was written.
    let mut bits_pruned = 0u64;
    if let Some(masks) = &masks {
        bits_pruned = state.apply_bit_masks(masks);
    }

    let total_space = injector.n_sites() as u64 * u64::from(injector.bits());
    let mut metrics = CampaignMetrics::new(total_space);
    metrics.note_resumed(state.samples.experiments());
    let mut reporter = ftb_inject::ProgressReporter::new("ftb adaptive", Duration::from_secs(2));

    loop {
        let before = state.samples.len();
        let started = Instant::now();
        let stepped = state.step(injector).is_some();
        if stepped {
            metrics.record_chunk(&state.samples.experiments()[before..], started.elapsed());
        }
        if let Some(path) = &args.checkpoint {
            write_adaptive_checkpoint(path, &binding, &state)?;
        }
        if !stepped {
            break;
        }
        reporter.report(&metrics, state.is_done());
    }
    maybe_write_metrics(args, &metrics.snapshot())?;

    let result = state.finish(injector);
    let predictor = analysis.predictor(&result.inference.boundary);
    let overall = predictor.overall_sdc_ratio(Some(&result.samples));
    let uncertainty = analysis.uncertainty(&result.inference.boundary, &result.samples);
    maybe_write_json(args, &result)?;

    let mut out = String::new();
    let _ = writeln!(out, "rounds:             {}", result.rounds.len());
    if let Some(masks) = &masks {
        let _ = writeln!(
            out,
            "bit-prune:          {bits_pruned} certified bits removed from the sample \
             space ({} certified total)",
            masks.certified_total()
        );
    }
    let _ = writeln!(
        out,
        "experiments:        {} ({:.2}% of the exhaustive campaign)",
        result.samples.len(),
        result.samples.len() as f64 / analysis.golden().n_experiments() as f64 * 100.0
    );
    let _ = writeln!(
        out,
        "boundary coverage:  {:.1}% of sites",
        result.inference.boundary.coverage() * 100.0
    );
    let _ = writeln!(out, "predicted SDC:      {:.3}%", overall * 100.0);
    let _ = writeln!(out, "uncertainty (§3.6): {:.2}%", uncertainty * 100.0);
    if let Some(last) = result.rounds.last() {
        let _ = writeln!(
            out,
            "final round:        {} run, {} masked, {} SDC, {} candidates left",
            last.n_run, last.n_masked, last.n_sdc, last.candidates_left
        );
    }
    Ok(out)
}

fn report(args: &Args) -> Result<String, CliError> {
    let filter = filter_mode(&args.filter)?;
    let kernel = args.kernel.build();
    let analysis = Analysis::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let samples = analysis.sample_uniform(args.rate, args.seed);
    let inference = analysis.infer(&samples, filter);
    let predictor = analysis.predictor(&inference.boundary);
    let per_site = predictor.sdc_ratio_per_site(Some(&samples));

    let registry = kernel.registry();
    let rows = by_static_instruction(analysis.golden(), &registry, &per_site)
        .map_err(|e| CliError(e.to_string()))?;
    maybe_write_json(args, &rows)?;

    let mut table = Table::new(&["static instruction", "region", "dyn sites", "predicted SDC"]);
    for r in &rows {
        table.row(&[
            r.name.to_string(),
            r.region.label().to_string(),
            r.dynamic_sites.to_string(),
            format!("{:.2}%", r.mean * 100.0),
        ]);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "per-static-instruction vulnerability at {:.1}% sampling (most vulnerable first):\n",
        args.rate * 100.0
    );
    let _ = write!(out, "{}", table.render());

    let regions =
        by_region(analysis.golden(), &registry, &per_site).map_err(|e| CliError(e.to_string()))?;
    let mut rt = Table::new(&["region", "dyn sites", "predicted SDC"]);
    for r in &regions {
        rt.row(&[
            r.region.label().to_string(),
            r.dynamic_sites.to_string(),
            format!("{:.2}%", r.mean * 100.0),
        ]);
    }
    let _ = write!(out, "\nby region:\n\n{}", rt.render());
    Ok(out)
}

fn protect(args: &Args) -> Result<String, CliError> {
    let filter = filter_mode(&args.filter)?;
    let kernel = args.kernel.build();
    let analysis = Analysis::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let samples = analysis.sample_uniform(args.rate, args.seed);
    let inference = analysis.infer(&samples, filter);
    let predictor = analysis.predictor(&inference.boundary);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "protection planning from a {:.1}% sample ({} experiments):\n",
        args.rate * 100.0,
        samples.len()
    );
    let mut table = Table::new(&["budget", "sites guarded", "predicted SDC removed"]);
    let mut last_plan = None;
    for pct in [5usize, 10, 20, 40] {
        let budget = analysis.n_sites() * pct / 100;
        let plan = ProtectionPlan::rank(&predictor, Some(&samples), budget);
        table.row(&[
            format!("{pct}%"),
            plan.sites.len().to_string(),
            format!("{:.1}%", plan.predicted_sdc_removed * 100.0),
        ]);
        last_plan = Some(plan);
    }
    let _ = write!(out, "{}", table.render());
    if let Some(plan) = last_plan {
        maybe_write_json(args, &plan)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn golden_reports_sites() {
        let args = parse(&v(&["golden", "--kernel", "matvec", "--n", "4"])).unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("dynamic instructions: 24"));
        assert!(out.contains("matvec.row"));
    }

    #[test]
    fn campaign_reports_ci() {
        let args = parse(&v(&[
            "campaign",
            "--kernel",
            "matvec",
            "--n",
            "4",
            "--samples",
            "50",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("experiments:     50"));
        assert!(out.contains("95% CI"));
    }

    #[test]
    fn exhaustive_covers_space() {
        let args = parse(&v(&["exhaustive", "--kernel", "matvec", "--n", "4"])).unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("experiments:  1536"), "{out}");
    }

    #[test]
    fn analyze_self_verifies() {
        let args = parse(&v(&[
            "analyze", "--kernel", "stencil", "--grid", "8", "--sweeps", "4", "--rate", "0.2",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("uncertainty"), "{out}");
        assert!(out.contains("boundary coverage"));
    }

    #[test]
    fn analyze_static_zero_injection_table() {
        let args = parse(&v(&[
            "analyze",
            "static",
            "--kernel",
            "gemm",
            "--n",
            "5",
            "--tolerance",
            "1e-6",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("injections used:    0"), "{out}");
        assert!(out.contains("| static"), "{out}");
        assert!(out.contains("| inferred"), "{out}");
        assert!(out.contains("golden (exhaustive)"), "{out}");
        assert!(out.contains("backward pass"), "{out}");
    }

    #[test]
    fn analyze_static_no_validate_skips_campaign() {
        let args = parse(&v(&[
            "analyze",
            "static",
            "--kernel",
            "jacobi",
            "--grid",
            "4",
            "--sweeps",
            "10",
            "--tolerance",
            "1e-4",
            "--no-validate",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("injections used:    0"), "{out}");
        assert!(
            !out.contains("| static"),
            "validation table must be absent: {out}"
        );
    }

    #[test]
    fn analyze_compose_reports_sections_and_comparison() {
        let args = parse(&v(&[
            "analyze",
            "compose",
            "--kernel",
            "jacobi",
            "--grid",
            "3",
            "--sweeps",
            "4",
            "--tolerance",
            "1e-4",
            "--rate",
            "0.4",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("per-section summary"), "{out}");
        assert!(out.contains("| composed"), "{out}");
        assert!(out.contains("| inferred"), "{out}");
        assert!(out.contains("golden (exhaustive)"), "{out}");
        assert!(out.contains("sections re-run:"), "{out}");
        assert!(out.contains("conservative:"), "{out}");
    }

    #[test]
    fn analyze_compose_incremental_reuses_sections() {
        let dir = std::env::temp_dir().join("ftb-cli-compose-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ledger = dir.join("sections.jsonl");
        let _ = std::fs::remove_file(&ledger);
        let base = [
            "analyze",
            "compose",
            "--kernel",
            "jacobi",
            "--grid",
            "3",
            "--sweeps",
            "4",
            "--tolerance",
            "1e-4",
            "--rate",
            "0.4",
            "--no-validate",
            "--checkpoint",
            ledger.to_str().unwrap(),
        ];
        let args = parse(&v(&base)).unwrap();
        let first = dispatch(&args).unwrap();
        let m = first
            .lines()
            .find(|l| l.starts_with("sections:"))
            .and_then(|l| l.split_whitespace().last())
            .unwrap()
            .to_string();
        assert!(
            first.contains(&format!("sections re-run:   {m} of {m}")),
            "{first}"
        );
        // unchanged config: everything reuses, zero injections
        let second = dispatch(&args).unwrap();
        assert!(
            second.contains(&format!("sections re-run:   0 of {m} ({m} reused")),
            "{second}"
        );
        assert!(second.contains("injections spent:  0"), "{second}");
    }

    #[test]
    fn analyze_compose_secant_refuses_uninstrumented_kernel() {
        // CG over assembled-CSR storage runs DDG-blind, so it is the one
        // remaining configuration without provenance instrumentation
        let args = parse(&v(&[
            "analyze", "compose", "--kernel", "cg", "--csr", "--grid", "4", "--secant",
        ]))
        .unwrap();
        let e = dispatch(&args).unwrap_err();
        assert!(e.0.contains("secant mode needs"), "{}", e.0);
        assert!(
            e.0.contains("instrumented kernels:"),
            "refusal must list the instrumented kernels: {}",
            e.0
        );
    }

    #[test]
    fn analyze_static_rejects_uninstrumented_kernel() {
        let args = parse(&v(&[
            "analyze", "static", "--kernel", "cg", "--csr", "--grid", "4",
        ]))
        .unwrap();
        let e = dispatch(&args).unwrap_err();
        assert!(e.0.contains("not provenance-instrumented"), "{}", e.0);
        assert!(
            e.0.contains("instrumented kernels:"),
            "refusal must list the instrumented kernels: {}",
            e.0
        );
    }

    #[test]
    fn analyze_bits_prints_map_and_scorecard() {
        let args = parse(&v(&[
            "analyze",
            "bits",
            "--kernel",
            "jacobi",
            "--grid",
            "4",
            "--sweeps",
            "10",
            "--tolerance",
            "1e-4",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("certified masked:"), "{out}");
        assert!(out.contains("per-instruction vulnerability map"), "{out}");
        assert!(out.contains("campaign reduction:"), "{out}");
        assert!(out.contains("violations:"), "{out}");
        assert!(
            out.contains("(sound)"),
            "certification must be conservative: {out}"
        );
    }

    #[test]
    fn analyze_bits_no_validate_skips_scorecard() {
        let args = parse(&v(&[
            "analyze",
            "bits",
            "--kernel",
            "gemm",
            "--n",
            "4",
            "--no-validate",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("certified masked:"), "{out}");
        assert!(!out.contains("violations:"), "{out}");
    }

    #[test]
    fn analyze_bits_rejects_uninstrumented_kernel() {
        let args = parse(&v(&[
            "analyze", "bits", "--kernel", "cg", "--csr", "--grid", "4",
        ]))
        .unwrap();
        let e = dispatch(&args).unwrap_err();
        assert!(e.0.contains("not provenance-instrumented"), "{}", e.0);
    }

    #[test]
    fn analyze_characterize_reports_distribution_distance() {
        let args = parse(&v(&[
            "analyze",
            "characterize",
            "--kernel",
            "matvec",
            "--n",
            "4",
            "--threads",
            "1,2",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("per-pool outcome totals"), "{out}");
        assert!(out.contains("1 vs 2"), "{out}");
        assert!(out.contains("max TVD"), "{out}");
        assert!(
            out.contains("reproducible:  yes"),
            "campaign outcomes must not depend on worker count: {out}"
        );
    }

    #[test]
    fn analyze_characterize_json_schema() {
        let path = std::env::temp_dir().join("ftb_cli_characterize.json");
        let _ = std::fs::remove_file(&path);
        let args = parse(&v(&[
            "analyze",
            "characterize",
            "--kernel",
            "matvec",
            "--n",
            "4",
            "--threads",
            "1,2",
            "--json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&args).unwrap();
        let data = std::fs::read_to_string(&path).unwrap();
        for key in [
            "\"kernel\"",
            "\"tolerance\"",
            "\"n_sites\"",
            "\"bits\"",
            "\"n_experiments\"",
            "\"thread_counts\"",
            "\"runs\"",
            "\"histograms\"",
            "\"pairs\"",
            "\"max_tvd\"",
            "\"mean_tvd\"",
            "\"deterministic\"",
        ] {
            assert!(data.contains(key), "missing key {key}");
        }
        // the artifact round-trips through its schema struct
        let r: ftb_inject::CharacterizeReport = serde_json::from_str(&data).unwrap();
        assert_eq!(r.kernel, "matvec");
        assert_eq!(r.thread_counts, vec![1, 2]);
        assert_eq!(r.runs.len(), 2);
        assert_eq!(r.pairs.len(), 1);
        assert!(r.deterministic);
        assert_eq!(r.pairs[0].max_tvd, 0.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_compose_json_schema() {
        // `analyze compose` writes its report in both the validated and
        // --no-validate paths; check the artifact's schema for parity
        // with `analyze static` / `analyze bits`
        let path = std::env::temp_dir().join("ftb_cli_compose.json");
        let _ = std::fs::remove_file(&path);
        let args = parse(&v(&[
            "analyze",
            "compose",
            "--kernel",
            "jacobi",
            "--grid",
            "3",
            "--sweeps",
            "4",
            "--tolerance",
            "1e-4",
            "--rate",
            "0.4",
            "--no-validate",
            "--json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&args).unwrap();
        let data = std::fs::read_to_string(&path).unwrap();
        for key in ["\"kernel\"", "\"tolerance\"", "\"sections\""] {
            assert!(data.contains(key), "missing key {key}: {data}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exhaustive_bit_prune_agrees_with_unpruned() {
        let base = [
            "exhaustive",
            "--kernel",
            "jacobi",
            "--grid",
            "4",
            "--sweeps",
            "10",
            "--tolerance",
            "1e-4",
        ];
        let full = dispatch(&parse(&v(&base)).unwrap()).unwrap();
        let mut pruned_args = base.to_vec();
        pruned_args.push("--bit-prune");
        let pruned = dispatch(&parse(&v(&pruned_args)).unwrap()).unwrap();
        assert!(pruned.contains("bit-prune:"), "{pruned}");
        // the certified cells are filled with Masked, so outcome counts
        // and the SDC ratio line must be identical to the full campaign
        let tail = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("outcomes:") || l.starts_with("SDC ratio:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            tail(&full),
            tail(&pruned),
            "\nfull:\n{full}\npruned:\n{pruned}"
        );
        // and the pruned campaign really ran fewer experiments
        let n = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("experiments:"))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|w| w.parse::<u64>().ok())
                .unwrap()
        };
        assert!(n(&pruned) < n(&full), "\nfull:\n{full}\npruned:\n{pruned}");
    }

    #[test]
    fn exhaustive_snapshot_agrees_with_from_scratch() {
        let base = [
            "exhaustive",
            "--kernel",
            "jacobi",
            "--grid",
            "4",
            "--sweeps",
            "10",
            "--tolerance",
            "1e-4",
        ];
        let scratch = dispatch(&parse(&v(&base)).unwrap()).unwrap();
        let mut snap_args = base.to_vec();
        snap_args.extend(["--snapshot", "--snapshot-max", "4"]);
        let snap = dispatch(&parse(&v(&snap_args)).unwrap()).unwrap();
        assert!(snap.contains("snapshots:    4 boundaries"), "{snap}");
        let tail = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("outcomes:") || l.starts_with("SDC ratio:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            tail(&scratch),
            tail(&snap),
            "\nscratch:\n{scratch}\nsnapshot:\n{snap}"
        );
    }

    #[test]
    fn adaptive_bit_prune_runs() {
        let args = parse(&v(&[
            "adaptive",
            "--kernel",
            "jacobi",
            "--grid",
            "4",
            "--sweeps",
            "10",
            "--tolerance",
            "1e-4",
            "--bit-prune",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("bit-prune:"), "{out}");
        assert!(out.contains("rounds:"), "{out}");
    }

    #[test]
    fn analyze_static_json_schema() {
        let path = std::env::temp_dir().join("ftb_cli_static.json");
        let _ = std::fs::remove_file(&path);
        let args = parse(&v(&[
            "analyze",
            "static",
            "--kernel",
            "gemm",
            "--n",
            "5",
            "--json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&args).unwrap();
        let data = std::fs::read_to_string(&path).unwrap();
        for key in [
            "\"kernel\"",
            "\"tolerance\"",
            "\"safety\"",
            "\"n_sites\"",
            "\"n_edges\"",
            "\"n_constrained\"",
            "\"n_injections_static\"",
            "\"validation\"",
            "\"comparison\"",
        ] {
            assert!(data.contains(key), "missing key {key}: {data}");
        }
        // the artifact round-trips through its schema struct
        let r: StaticAnalysisReport = serde_json::from_str(&data).unwrap();
        assert_eq!(r.n_injections_static, 0);
        assert!(r.validation.is_some());
        assert_eq!(r.comparison.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_bits_json_schema() {
        let path = std::env::temp_dir().join("ftb_cli_bits.json");
        let _ = std::fs::remove_file(&path);
        let args = parse(&v(&[
            "analyze",
            "bits",
            "--kernel",
            "jacobi",
            "--grid",
            "4",
            "--sweeps",
            "10",
            "--tolerance",
            "1e-4",
            "--json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&args).unwrap();
        let data = std::fs::read_to_string(&path).unwrap();
        for key in [
            "\"kernel\"",
            "\"tolerance\"",
            "\"widen\"",
            "\"source\"",
            "\"n_sites\"",
            "\"bits\"",
            "\"n_unbounded\"",
            "\"certified_total\"",
            "\"crash_likely_total\"",
            "\"total_bits\"",
            "\"reduction_factor\"",
            "\"digest\"",
            "\"per_instruction\"",
            "\"per_site_safe_fraction\"",
            "\"crash_bands\"",
            "\"scorecard\"",
        ] {
            assert!(data.contains(key), "missing key {key}");
        }
        // the artifact round-trips through its schema struct
        let r: BitsAnalysisReport = serde_json::from_str(&data).unwrap();
        assert_eq!(r.source, "static");
        assert_eq!(r.per_site_safe_fraction.len(), r.n_sites);
        assert_eq!(r.crash_bands.len(), r.n_sites);
        let sc = r
            .scorecard
            .expect("scorecard present without --no-validate");
        assert_eq!(sc.violations, 0, "certification must be conservative");
        assert!(sc.certified_recall > 0.0, "some masked bits must certify");
        assert!(r.certified_total > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn adaptive_accepts_static_prior() {
        let args = parse(&v(&[
            "adaptive",
            "--kernel",
            "jacobi",
            "--grid",
            "4",
            "--sweeps",
            "10",
            "--tolerance",
            "1e-4",
            "--static-prior",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("rounds:"), "{out}");
    }

    #[test]
    fn adaptive_runs_rounds() {
        let args = parse(&v(&["adaptive", "--kernel", "matvec", "--n", "6"])).unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("rounds:"), "{out}");
    }

    #[test]
    fn bad_filter_rejected() {
        let args = parse(&v(&[
            "analyze", "--kernel", "matvec", "--n", "4", "--filter", "sideways",
        ]))
        .unwrap();
        assert!(dispatch(&args).is_err());
    }

    #[test]
    fn report_lists_static_instructions() {
        let args = parse(&v(&[
            "report", "--kernel", "stencil", "--grid", "8", "--sweeps", "3", "--rate", "0.2",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("stencil.sweep"), "{out}");
        assert!(out.contains("by region"), "{out}");
    }

    #[test]
    fn protect_prints_budget_ladder() {
        let args = parse(&v(&[
            "protect", "--kernel", "matvec", "--n", "6", "--rate", "0.3",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("predicted SDC removed"), "{out}");
        assert!(out.contains("40%"), "{out}");
    }

    #[test]
    fn new_kernels_reachable_from_cli() {
        for kernel in ["spmv", "jacobi"] {
            let args = parse(&v(&["golden", "--kernel", kernel])).unwrap();
            let out = dispatch(&args).unwrap();
            assert!(out.contains("dynamic instructions"), "{kernel}: {out}");
        }
        let args = parse(&v(&["golden", "--kernel", "cg", "--csr", "--grid", "4"])).unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("cg.init.matrix"), "{out}");
    }

    #[test]
    fn json_output_written() {
        let path = std::env::temp_dir().join("ftb_cli_test.json");
        let _ = std::fs::remove_file(&path);
        let args = parse(&v(&[
            "campaign",
            "--kernel",
            "matvec",
            "--n",
            "4",
            "--samples",
            "20",
            "--json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&args).unwrap();
        let data = std::fs::read_to_string(&path).unwrap();
        assert!(data.contains("sdc_ci"));
        let _ = std::fs::remove_file(&path);
    }
}
