//! Command implementations. Each returns its report as a `String` so the
//! commands are testable without capturing stdout.

use crate::args::{Args, CliError};
use ftb_core::prelude::*;
use ftb_core::{AdaptiveState, StaticValidation};
use ftb_inject::{
    exhaustive_plan, monte_carlo_plan, CampaignBinding, CampaignMetrics, ChunkedCampaign,
    ExhaustiveResult, MetricsSnapshot,
};
use ftb_report::{boundary_comparison, sections_table, BoundaryMethodRow, SectionRow, Table};
use ftb_trace::FaultSpec;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

fn filter_mode(name: &str) -> Result<FilterMode, CliError> {
    match name {
        "off" => Ok(FilterMode::Off),
        "per-site" => Ok(FilterMode::PerSite),
        "global" => Ok(FilterMode::Global),
        other => Err(CliError(format!("unknown filter mode '{other}'"))),
    }
}

fn maybe_write_json<T: serde::Serialize>(args: &Args, value: &T) -> Result<(), CliError> {
    if let Some(path) = &args.json {
        let data = serde_json::to_vec_pretty(value)
            .map_err(|e| CliError(format!("serialising JSON: {e}")))?;
        std::fs::write(path, data).map_err(|e| CliError(format!("writing {path}: {e}")))?;
    }
    Ok(())
}

fn maybe_write_metrics(args: &Args, metrics: &MetricsSnapshot) -> Result<(), CliError> {
    if let Some(path) = &args.metrics_out {
        let data = serde_json::to_vec_pretty(metrics)
            .map_err(|e| CliError(format!("serialising metrics: {e}")))?;
        std::fs::write(path, data).map_err(|e| CliError(format!("writing {path}: {e}")))?;
    }
    Ok(())
}

/// The identity a checkpoint file is bound to for this invocation.
fn campaign_binding(args: &Args, injector: &Injector<'_>, plan: &str) -> CampaignBinding {
    CampaignBinding {
        kernel: args.kernel.clone(),
        classifier: *injector.classifier(),
        n_sites: injector.n_sites(),
        bits: injector.bits(),
        plan: plan.to_string(),
    }
}

/// Run a fixed fault plan through the chunked campaign runtime, with the
/// ledger, resume, progress, and metrics behavior selected by the flags.
fn run_chunked<'k>(
    args: &Args,
    injector: &'k Injector<'k>,
    plan_desc: &str,
    plan: Vec<FaultSpec>,
) -> Result<ChunkedCampaign<'k>, CliError> {
    let mut cc = ChunkedCampaign::new(injector, plan, args.chunk)
        .with_reporter(format!("ftb {}", args.command), Duration::from_secs(2));
    if let Some(path) = &args.checkpoint {
        let binding = campaign_binding(args, injector, plan_desc);
        cc = cc
            .with_ledger(Path::new(path), binding, args.resume)
            .map_err(|e| CliError(format!("checkpoint {path}: {e}")))?;
    }
    cc.run_to_completion()
        .map_err(|e| CliError(format!("campaign: {e}")))?;
    maybe_write_metrics(args, &cc.metrics())?;
    Ok(cc)
}

/// Run the selected command.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "golden" => golden(args),
        "campaign" => campaign(args),
        "exhaustive" => exhaustive(args),
        "analyze" => analyze(args),
        "analyze-static" => analyze_static(args),
        "analyze-compose" => analyze_compose(args),
        "adaptive" => adaptive(args),
        "report" => report(args),
        "protect" => protect(args),
        other => Err(CliError(format!("unknown command '{other}'"))),
    }
}

fn golden(args: &Args) -> Result<String, CliError> {
    let kernel = args.kernel.build();
    let g = kernel.golden();
    let mut out = String::new();
    let _ = writeln!(out, "kernel:               {}", kernel.name());
    let _ = writeln!(out, "dynamic instructions: {}", g.n_sites());
    let _ = writeln!(out, "experiment space:     {}", g.n_experiments());
    let _ = writeln!(out, "branch events:        {}", g.branches.len());
    let _ = writeln!(out, "output elements:      {}", g.output.len());
    let _ = writeln!(
        out,
        "trace memory:         {:.1} KiB",
        g.memory_bytes() as f64 / 1024.0
    );

    // per-region site counts
    let registry = kernel.registry();
    let mut counts = vec![0usize; registry.len()];
    for site in 0..g.n_sites() {
        counts[g.static_id(site).index()] += 1;
    }
    let mut table = Table::new(&["static instruction", "region", "dynamic sites"]);
    for (id, instr) in registry.iter() {
        table.row(&[
            instr.name.to_string(),
            instr.region.label().to_string(),
            counts[id.index()].to_string(),
        ]);
    }
    let _ = write!(out, "\n{}", table.render());
    Ok(out)
}

fn campaign(args: &Args) -> Result<String, CliError> {
    let kernel = args.kernel.build();
    let analysis = Analysis::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let injector = analysis.injector();
    let plan_desc = format!("monte-carlo n={} seed={}", args.samples, args.seed);
    let plan = monte_carlo_plan(injector.n_sites(), injector.bits(), args.samples, args.seed);
    let cc = run_chunked(args, injector, &plan_desc, plan)?;
    let est = ftb_inject::monte_carlo::summarize(cc.experiments(), 0.95);
    maybe_write_json(args, &est)?;
    let mut out = String::new();
    let _ = writeln!(out, "experiments:     {}", est.n);
    let _ = writeln!(
        out,
        "outcomes:        {} masked, {} SDC, {} crash",
        est.n_masked, est.n_sdc, est.n_crash
    );
    let _ = writeln!(
        out,
        "SDC ratio:       {:.3}%  (95% CI [{:.3}%, {:.3}%])",
        est.sdc_ratio() * 100.0,
        est.sdc_ci.lo * 100.0,
        est.sdc_ci.hi * 100.0
    );
    let _ = writeln!(
        out,
        "sites observed:  {} of {}",
        est.distinct_sites,
        analysis.n_sites()
    );
    Ok(out)
}

fn exhaustive(args: &Args) -> Result<String, CliError> {
    let kernel = args.kernel.build();
    let analysis = Analysis::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let injector = analysis.injector();
    let plan = exhaustive_plan(injector.n_sites(), injector.bits());
    let cc = run_chunked(args, injector, "exhaustive", plan)?;
    let ex = cc.into_exhaustive();
    maybe_write_json(args, &ex)?;
    let (m, s, c) = ex.counts();
    let mut out = String::new();
    let _ = writeln!(out, "experiments:  {}", ex.n_experiments());
    let _ = writeln!(out, "outcomes:     {m} masked, {s} SDC, {c} crash");
    let _ = writeln!(out, "SDC ratio:    {:.3}%", ex.overall_sdc_ratio() * 100.0);
    Ok(out)
}

fn analyze(args: &Args) -> Result<String, CliError> {
    let filter = filter_mode(&args.filter)?;
    let kernel = args.kernel.build();
    let analysis = Analysis::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let samples = analysis.sample_uniform(args.rate, args.seed);
    let inference = analysis.infer(&samples, filter);
    let predictor = analysis.predictor(&inference.boundary);
    let uncertainty = analysis.uncertainty(&inference.boundary, &samples);
    let overall = predictor.overall_sdc_ratio(Some(&samples));
    maybe_write_json(args, &inference)?;

    let (m, s, c) = samples.counts();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sampled:            {} experiments at {} sites ({:.2}% of {})",
        samples.len(),
        samples.distinct_sites(),
        samples.site_rate(analysis.n_sites()) * 100.0,
        analysis.n_sites()
    );
    let _ = writeln!(out, "outcomes:           {m} masked, {s} SDC, {c} crash");
    let _ = writeln!(
        out,
        "boundary coverage:  {:.1}% of sites",
        inference.boundary.coverage() * 100.0
    );
    let _ = writeln!(out, "predicted SDC:      {:.3}%", overall * 100.0);
    let _ = writeln!(
        out,
        "uncertainty (§3.6): {:.2}%  (self-verified precision; 100% = no \
         contradiction between boundary and samples)",
        uncertainty * 100.0
    );
    Ok(out)
}

/// Machine-readable result of `ftb analyze static`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StaticAnalysisReport {
    kernel: String,
    tolerance: f64,
    safety: f64,
    n_sites: usize,
    n_edges: usize,
    n_constrained: usize,
    record_seconds: f64,
    backward_seconds: f64,
    /// Always zero — the analytical boundary's whole point.
    n_injections_static: u64,
    validation: Option<StaticValidation>,
    comparison: Vec<BoundaryMethodRow>,
}

fn analyze_static(args: &Args) -> Result<String, CliError> {
    let filter = filter_mode(&args.filter)?;
    let kernel = args.kernel.build();

    let t0 = Instant::now();
    let (golden, ddg) = kernel.golden_with_ddg();
    let record_seconds = t0.elapsed().as_secs_f64();
    let cfg = ftb_core::StaticBoundConfig {
        tolerance: args.tolerance,
        safety: args.safety,
    };
    let t1 = Instant::now();
    let sb = static_bound(&ddg, &cfg).map_err(|e| CliError(format!("static analysis: {e}")))?;
    let backward_seconds = t1.elapsed().as_secs_f64();
    let boundary = sb.boundary();

    let mut out = String::new();
    let _ = writeln!(out, "kernel:             {}", kernel.name());
    let _ = writeln!(out, "dynamic sites:      {}", sb.n_sites());
    let _ = writeln!(out, "dependence edges:   {}", sb.n_edges);
    let _ = writeln!(
        out,
        "constrained sites:  {} ({:.1}%)",
        sb.n_constrained,
        sb.n_constrained as f64 / sb.n_sites().max(1) as f64 * 100.0
    );
    let _ = writeln!(
        out,
        "wall time:          {:.1} ms golden+DDG, {:.1} ms backward pass",
        record_seconds * 1e3,
        backward_seconds * 1e3
    );
    let _ = writeln!(
        out,
        "injections used:    0 (analytical bound from the golden run only)"
    );

    let mut report = StaticAnalysisReport {
        kernel: kernel.name().to_string(),
        tolerance: args.tolerance,
        safety: args.safety,
        n_sites: sb.n_sites(),
        n_edges: sb.n_edges,
        n_constrained: sb.n_constrained,
        record_seconds,
        backward_seconds,
        n_injections_static: 0,
        validation: None,
        comparison: Vec::new(),
    };

    if args.no_validate {
        maybe_write_json(args, &report)?;
        return Ok(out);
    }

    // validation: exhaustive ground truth + a pinned-seed sample, then the
    // static / inferred / golden three-way comparison
    let injector = Injector::with_golden(kernel.as_ref(), golden, Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let truth = injector.exhaustive();
    let n_val_sites = ((args.rate * injector.n_sites() as f64).ceil() as usize).max(4);
    let samples = SampleSet::sample_sites(&injector, n_val_sites, args.seed);
    let v = validate_static(
        &Predictor::new(injector.golden(), &boundary),
        &truth,
        &samples,
        injector.golden(),
        &sb.thresholds,
    );

    let inference = infer_boundary(&injector, &samples, filter);
    let inferred_pred = Predictor::new(injector.golden(), &inference.boundary);
    let inferred_eval = BoundaryEval::against_exhaustive(&inferred_pred, &truth);
    let inferred_unc = BoundaryEval::uncertainty(&inferred_pred, &samples).precision;

    let gb = golden_boundary(injector.golden(), &truth);
    let golden_eval =
        BoundaryEval::against_exhaustive(&Predictor::new(injector.golden(), &gb), &truth);

    report.comparison = vec![
        BoundaryMethodRow {
            method: "static".into(),
            injections: 0,
            coverage: boundary.coverage(),
            precision: v.eval.precision,
            recall: v.eval.recall,
            uncertainty: Some(v.uncertainty),
        },
        BoundaryMethodRow {
            method: "inferred".into(),
            injections: samples.len() as u64,
            coverage: inference.boundary.coverage(),
            precision: inferred_eval.precision,
            recall: inferred_eval.recall,
            uncertainty: Some(inferred_unc),
        },
        BoundaryMethodRow {
            method: "golden (exhaustive)".into(),
            injections: truth.n_experiments(),
            coverage: gb.coverage(),
            precision: golden_eval.precision,
            recall: golden_eval.recall,
            uncertainty: None,
        },
    ];
    report.validation = Some(v);

    let _ = writeln!(
        out,
        "conservative:       {:.1}% of SDC-bearing sites (median slack {:.1}x)",
        v.conservative_fraction * 100.0,
        v.median_slack
    );
    let _ = writeln!(
        out,
        "\nstatic vs inferred (rate {:.1}%) vs exhaustive:\n",
        args.rate * 100.0
    );
    let _ = write!(out, "{}", boundary_comparison(&report.comparison));
    maybe_write_json(args, &report)?;
    Ok(out)
}

/// JSON artifact of `ftb analyze compose`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ComposeReport {
    kernel: String,
    tolerance: f64,
    n_sites: usize,
    n_sections: usize,
    reran: Vec<usize>,
    reused: Vec<usize>,
    n_injections: u64,
    conservative_fraction: Option<f64>,
    sections: Vec<SectionRow>,
    comparison: Vec<BoundaryMethodRow>,
}

/// Per-site smallest SDC-causing injected error, from exhaustive truth.
fn min_sdc_per_site(golden: &ftb_trace::GoldenRun, truth: &ExhaustiveResult) -> Vec<f64> {
    (0..golden.n_sites())
        .map(|site| {
            let errs = golden.flip_errors(site);
            (0..truth.bits)
                .filter(|&bit| truth.outcome(site, bit).is_sdc())
                .map(|bit| errs[bit as usize])
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

fn analyze_compose(args: &Args) -> Result<String, CliError> {
    let kernel = args.kernel.build();
    let injector = Injector::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let cfg = ftb_core::ComposeConfig {
        tolerance: args.tolerance,
        rate: args.rate,
        seed: args.seed,
        safety: args.safety,
        extrapolate: true,
        max_sections: args.max_sections,
        secant: args.secant,
    };
    let ledger = args.checkpoint.as_ref().map(Path::new);
    let t0 = Instant::now();
    let r = compose_analysis(kernel.as_ref(), &args.kernel, &injector, &cfg, ledger)
        .map_err(|e| CliError(format!("compose analysis: {e}")))?;
    let compose_seconds = t0.elapsed().as_secs_f64();

    let m = r.map.n_sections();
    let sections: Vec<SectionRow> = (0..m)
        .map(|t| {
            let (lo, hi) = r.map.range(t);
            SectionRow {
                index: t,
                lo,
                hi,
                injections: if r.reused.contains(&t) {
                    0
                } else {
                    r.summaries[t].n_experiments
                },
                amp_in: r.summaries[t].amp_in,
                budget: r.budgets[t],
                reused: r.reused.contains(&t),
            }
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "kernel:            {}", kernel.name());
    let _ = writeln!(out, "dynamic sites:     {}", injector.n_sites());
    let _ = writeln!(out, "sections:          {m}");
    let _ = writeln!(
        out,
        "sections re-run:   {} of {m} ({} reused from ledger)",
        r.reran.len(),
        r.reused.len()
    );
    let _ = writeln!(out, "injections spent:  {}", r.n_experiments);
    let _ = writeln!(out, "wall time:         {:.1} ms", compose_seconds * 1e3);
    let _ = writeln!(out, "\nper-section summary:\n");
    let _ = write!(out, "{}", sections_table(&sections));

    let mut report = ComposeReport {
        kernel: kernel.name().to_string(),
        tolerance: args.tolerance,
        n_sites: injector.n_sites(),
        n_sections: m,
        reran: r.reran.clone(),
        reused: r.reused.clone(),
        n_injections: r.n_experiments,
        conservative_fraction: None,
        sections,
        comparison: Vec::new(),
    };

    if args.no_validate {
        maybe_write_json(args, &report)?;
        return Ok(out);
    }

    // four-way scorecard: composed vs inferred vs static vs exhaustive
    let truth = injector.exhaustive();
    let golden = injector.golden();
    let composed_eval =
        BoundaryEval::against_exhaustive(&Predictor::new(golden, &r.boundary), &truth);
    let min_sdc = min_sdc_per_site(golden, &truth);
    let conservative = (0..golden.n_sites())
        .filter(|&s| r.boundary.threshold(s) < min_sdc[s] || min_sdc[s].is_infinite())
        .count() as f64
        / golden.n_sites().max(1) as f64;
    report.conservative_fraction = Some(conservative);

    let n_val_sites = ((args.rate * injector.n_sites() as f64).ceil() as usize).max(4);
    let samples = SampleSet::sample_sites(&injector, n_val_sites, args.seed);
    let inference = infer_boundary(&injector, &samples, FilterMode::PerSite);
    let inferred_eval =
        BoundaryEval::against_exhaustive(&Predictor::new(golden, &inference.boundary), &truth);

    let gb = golden_boundary(golden, &truth);
    let golden_eval = BoundaryEval::against_exhaustive(&Predictor::new(golden, &gb), &truth);

    report.comparison = vec![
        BoundaryMethodRow {
            method: "composed".into(),
            injections: r.n_experiments,
            coverage: r.boundary.coverage(),
            precision: composed_eval.precision,
            recall: composed_eval.recall,
            uncertainty: None,
        },
        BoundaryMethodRow {
            method: "inferred".into(),
            injections: samples.len() as u64,
            coverage: inference.boundary.coverage(),
            precision: inferred_eval.precision,
            recall: inferred_eval.recall,
            uncertainty: None,
        },
    ];
    // the static row needs provenance instrumentation; skip it (with a
    // note) for kernels that lack it rather than failing the command
    let (_, ddg) = kernel.golden_with_ddg();
    let static_cfg = ftb_core::StaticBoundConfig {
        tolerance: args.tolerance,
        safety: args.safety,
    };
    match static_bound(&ddg, &static_cfg) {
        Ok(sb) => {
            let sb_boundary = sb.boundary();
            let static_eval =
                BoundaryEval::against_exhaustive(&Predictor::new(golden, &sb_boundary), &truth);
            report.comparison.push(BoundaryMethodRow {
                method: "static".into(),
                injections: 0,
                coverage: sb_boundary.coverage(),
                precision: static_eval.precision,
                recall: static_eval.recall,
                uncertainty: None,
            });
        }
        Err(e) => {
            let _ = writeln!(out, "\n(static row skipped: {e})");
        }
    }
    report.comparison.push(BoundaryMethodRow {
        method: "golden (exhaustive)".into(),
        injections: truth.n_experiments(),
        coverage: gb.coverage(),
        precision: golden_eval.precision,
        recall: golden_eval.recall,
        uncertainty: None,
    });

    let _ = writeln!(
        out,
        "\nconservative:      {:.1}% of sites stay below their smallest SDC error",
        conservative * 100.0
    );
    let _ = writeln!(
        out,
        "\ncomposed vs inferred vs static vs exhaustive (rate {:.1}%):\n",
        args.rate * 100.0
    );
    let _ = write!(out, "{}", boundary_comparison(&report.comparison));
    maybe_write_json(args, &report)?;
    Ok(out)
}

/// On-disk format of an adaptive `--checkpoint` file: the complete
/// sampler state (including the per-site information counts) plus the
/// campaign binding a resume must agree with.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdaptiveCheckpoint {
    format: String,
    binding: CampaignBinding,
    state: AdaptiveState,
}

const ADAPTIVE_FORMAT: &str = "ftb-adaptive-v1";

/// Atomically replace the checkpoint (write-to-temp + rename), so a
/// crash mid-write leaves the previous round's state intact.
fn write_adaptive_checkpoint(
    path: &str,
    binding: &CampaignBinding,
    state: &AdaptiveState,
) -> Result<(), CliError> {
    let cp = AdaptiveCheckpoint {
        format: ADAPTIVE_FORMAT.to_string(),
        binding: binding.clone(),
        state: state.clone(),
    };
    let data =
        serde_json::to_vec(&cp).map_err(|e| CliError(format!("serialising checkpoint: {e}")))?;
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, data).map_err(|e| CliError(format!("writing {tmp}: {e}")))?;
    std::fs::rename(&tmp, path).map_err(|e| CliError(format!("replacing {path}: {e}")))?;
    Ok(())
}

fn load_adaptive_checkpoint(
    path: &str,
    expected: &CampaignBinding,
    injector: &Injector<'_>,
) -> Result<AdaptiveState, CliError> {
    let data =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("reading {path}: {e}")))?;
    let cp: AdaptiveCheckpoint =
        serde_json::from_str(&data).map_err(|e| CliError(format!("parsing {path}: {e}")))?;
    if cp.format != ADAPTIVE_FORMAT {
        return Err(CliError(format!(
            "{path}: unsupported checkpoint format {:?} (expected {ADAPTIVE_FORMAT:?})",
            cp.format
        )));
    }
    if !cp.binding.matches(expected) {
        return Err(CliError(format!(
            "{path}: checkpoint belongs to a different campaign (recorded plan: {:?})",
            cp.binding.plan
        )));
    }
    if !cp.state.matches(injector) {
        return Err(CliError(format!(
            "{path}: checkpoint fault space ({} sites × {} bits) does not match the kernel",
            cp.state.n_sites, cp.state.bits
        )));
    }
    Ok(cp.state)
}

fn adaptive(args: &Args) -> Result<String, CliError> {
    let filter = filter_mode(&args.filter)?;
    let kernel = args.kernel.build();
    let analysis = Analysis::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let injector = analysis.injector();
    let cfg = AdaptiveConfig {
        filter,
        seed: args.seed,
        ..AdaptiveConfig::default()
    };
    let plan_desc = format!(
        "adaptive seed={} filter={} static-prior={}",
        args.seed, args.filter, args.static_prior
    );
    let binding = campaign_binding(args, injector, &plan_desc);

    let mut state = match &args.checkpoint {
        Some(path) if args.resume && Path::new(path).exists() => {
            let state = load_adaptive_checkpoint(path, &binding, injector)?;
            eprintln!(
                "[ftb adaptive] resuming from {path}: {} rounds, {} experiments done",
                state.round,
                state.samples.len()
            );
            state
        }
        _ if args.static_prior => {
            let (_, ddg) = kernel.golden_with_ddg();
            let sb = static_bound(&ddg, &ftb_core::StaticBoundConfig::new(args.tolerance))
                .map_err(|e| CliError(format!("--static-prior: {e}")))?;
            AdaptiveState::with_prior(injector, &cfg, sb.boundary())
        }
        _ => AdaptiveState::new(injector, &cfg),
    };

    let total_space = injector.n_sites() as u64 * u64::from(injector.bits());
    let mut metrics = CampaignMetrics::new(total_space);
    metrics.note_resumed(state.samples.experiments());
    let mut reporter = ftb_inject::ProgressReporter::new("ftb adaptive", Duration::from_secs(2));

    loop {
        let before = state.samples.len();
        let started = Instant::now();
        let stepped = state.step(injector).is_some();
        if stepped {
            metrics.record_chunk(&state.samples.experiments()[before..], started.elapsed());
        }
        if let Some(path) = &args.checkpoint {
            write_adaptive_checkpoint(path, &binding, &state)?;
        }
        if !stepped {
            break;
        }
        reporter.report(&metrics, state.is_done());
    }
    maybe_write_metrics(args, &metrics.snapshot())?;

    let result = state.finish(injector);
    let predictor = analysis.predictor(&result.inference.boundary);
    let overall = predictor.overall_sdc_ratio(Some(&result.samples));
    let uncertainty = analysis.uncertainty(&result.inference.boundary, &result.samples);
    maybe_write_json(args, &result)?;

    let mut out = String::new();
    let _ = writeln!(out, "rounds:             {}", result.rounds.len());
    let _ = writeln!(
        out,
        "experiments:        {} ({:.2}% of the exhaustive campaign)",
        result.samples.len(),
        result.samples.len() as f64 / analysis.golden().n_experiments() as f64 * 100.0
    );
    let _ = writeln!(
        out,
        "boundary coverage:  {:.1}% of sites",
        result.inference.boundary.coverage() * 100.0
    );
    let _ = writeln!(out, "predicted SDC:      {:.3}%", overall * 100.0);
    let _ = writeln!(out, "uncertainty (§3.6): {:.2}%", uncertainty * 100.0);
    if let Some(last) = result.rounds.last() {
        let _ = writeln!(
            out,
            "final round:        {} run, {} masked, {} SDC, {} candidates left",
            last.n_run, last.n_masked, last.n_sdc, last.candidates_left
        );
    }
    Ok(out)
}

fn report(args: &Args) -> Result<String, CliError> {
    let filter = filter_mode(&args.filter)?;
    let kernel = args.kernel.build();
    let analysis = Analysis::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let samples = analysis.sample_uniform(args.rate, args.seed);
    let inference = analysis.infer(&samples, filter);
    let predictor = analysis.predictor(&inference.boundary);
    let per_site = predictor.sdc_ratio_per_site(Some(&samples));

    let registry = kernel.registry();
    let rows = by_static_instruction(analysis.golden(), &registry, &per_site)
        .map_err(|e| CliError(e.to_string()))?;
    maybe_write_json(args, &rows)?;

    let mut table = Table::new(&["static instruction", "region", "dyn sites", "predicted SDC"]);
    for r in &rows {
        table.row(&[
            r.name.to_string(),
            r.region.label().to_string(),
            r.dynamic_sites.to_string(),
            format!("{:.2}%", r.mean * 100.0),
        ]);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "per-static-instruction vulnerability at {:.1}% sampling (most vulnerable first):\n",
        args.rate * 100.0
    );
    let _ = write!(out, "{}", table.render());

    let regions =
        by_region(analysis.golden(), &registry, &per_site).map_err(|e| CliError(e.to_string()))?;
    let mut rt = Table::new(&["region", "dyn sites", "predicted SDC"]);
    for r in &regions {
        rt.row(&[
            r.region.label().to_string(),
            r.dynamic_sites.to_string(),
            format!("{:.2}%", r.mean * 100.0),
        ]);
    }
    let _ = write!(out, "\nby region:\n\n{}", rt.render());
    Ok(out)
}

fn protect(args: &Args) -> Result<String, CliError> {
    let filter = filter_mode(&args.filter)?;
    let kernel = args.kernel.build();
    let analysis = Analysis::new(kernel.as_ref(), Classifier::new(args.tolerance))
        .with_extraction(args.extraction);
    let samples = analysis.sample_uniform(args.rate, args.seed);
    let inference = analysis.infer(&samples, filter);
    let predictor = analysis.predictor(&inference.boundary);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "protection planning from a {:.1}% sample ({} experiments):\n",
        args.rate * 100.0,
        samples.len()
    );
    let mut table = Table::new(&["budget", "sites guarded", "predicted SDC removed"]);
    let mut last_plan = None;
    for pct in [5usize, 10, 20, 40] {
        let budget = analysis.n_sites() * pct / 100;
        let plan = ProtectionPlan::rank(&predictor, Some(&samples), budget);
        table.row(&[
            format!("{pct}%"),
            plan.sites.len().to_string(),
            format!("{:.1}%", plan.predicted_sdc_removed * 100.0),
        ]);
        last_plan = Some(plan);
    }
    let _ = write!(out, "{}", table.render());
    if let Some(plan) = last_plan {
        maybe_write_json(args, &plan)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn golden_reports_sites() {
        let args = parse(&v(&["golden", "--kernel", "matvec", "--n", "4"])).unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("dynamic instructions: 24"));
        assert!(out.contains("matvec.row"));
    }

    #[test]
    fn campaign_reports_ci() {
        let args = parse(&v(&[
            "campaign",
            "--kernel",
            "matvec",
            "--n",
            "4",
            "--samples",
            "50",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("experiments:     50"));
        assert!(out.contains("95% CI"));
    }

    #[test]
    fn exhaustive_covers_space() {
        let args = parse(&v(&["exhaustive", "--kernel", "matvec", "--n", "4"])).unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("experiments:  1536"), "{out}");
    }

    #[test]
    fn analyze_self_verifies() {
        let args = parse(&v(&[
            "analyze", "--kernel", "stencil", "--grid", "8", "--sweeps", "4", "--rate", "0.2",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("uncertainty"), "{out}");
        assert!(out.contains("boundary coverage"));
    }

    #[test]
    fn analyze_static_zero_injection_table() {
        let args = parse(&v(&[
            "analyze",
            "static",
            "--kernel",
            "gemm",
            "--n",
            "5",
            "--tolerance",
            "1e-6",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("injections used:    0"), "{out}");
        assert!(out.contains("| static"), "{out}");
        assert!(out.contains("| inferred"), "{out}");
        assert!(out.contains("golden (exhaustive)"), "{out}");
        assert!(out.contains("backward pass"), "{out}");
    }

    #[test]
    fn analyze_static_no_validate_skips_campaign() {
        let args = parse(&v(&[
            "analyze",
            "static",
            "--kernel",
            "jacobi",
            "--grid",
            "4",
            "--sweeps",
            "10",
            "--tolerance",
            "1e-4",
            "--no-validate",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("injections used:    0"), "{out}");
        assert!(
            !out.contains("| static"),
            "validation table must be absent: {out}"
        );
    }

    #[test]
    fn analyze_compose_reports_sections_and_comparison() {
        let args = parse(&v(&[
            "analyze",
            "compose",
            "--kernel",
            "jacobi",
            "--grid",
            "3",
            "--sweeps",
            "4",
            "--tolerance",
            "1e-4",
            "--rate",
            "0.4",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("per-section summary"), "{out}");
        assert!(out.contains("| composed"), "{out}");
        assert!(out.contains("| inferred"), "{out}");
        assert!(out.contains("golden (exhaustive)"), "{out}");
        assert!(out.contains("sections re-run:"), "{out}");
        assert!(out.contains("conservative:"), "{out}");
    }

    #[test]
    fn analyze_compose_incremental_reuses_sections() {
        let dir = std::env::temp_dir().join("ftb-cli-compose-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ledger = dir.join("sections.jsonl");
        let _ = std::fs::remove_file(&ledger);
        let base = [
            "analyze",
            "compose",
            "--kernel",
            "jacobi",
            "--grid",
            "3",
            "--sweeps",
            "4",
            "--tolerance",
            "1e-4",
            "--rate",
            "0.4",
            "--no-validate",
            "--checkpoint",
            ledger.to_str().unwrap(),
        ];
        let args = parse(&v(&base)).unwrap();
        let first = dispatch(&args).unwrap();
        let m = first
            .lines()
            .find(|l| l.starts_with("sections:"))
            .and_then(|l| l.split_whitespace().last())
            .unwrap()
            .to_string();
        assert!(
            first.contains(&format!("sections re-run:   {m} of {m}")),
            "{first}"
        );
        // unchanged config: everything reuses, zero injections
        let second = dispatch(&args).unwrap();
        assert!(
            second.contains(&format!("sections re-run:   0 of {m} ({m} reused")),
            "{second}"
        );
        assert!(second.contains("injections spent:  0"), "{second}");
    }

    #[test]
    fn analyze_compose_secant_refuses_uninstrumented_kernel() {
        let args = parse(&v(&[
            "analyze", "compose", "--kernel", "lu", "--n", "8", "--secant",
        ]))
        .unwrap();
        let e = dispatch(&args).unwrap_err();
        assert!(e.0.contains("secant mode needs"), "{}", e.0);
    }

    #[test]
    fn analyze_static_rejects_uninstrumented_kernel() {
        let args = parse(&v(&["analyze", "static", "--kernel", "lu", "--n", "8"])).unwrap();
        let e = dispatch(&args).unwrap_err();
        assert!(e.0.contains("not provenance-instrumented"), "{}", e.0);
    }

    #[test]
    fn adaptive_accepts_static_prior() {
        let args = parse(&v(&[
            "adaptive",
            "--kernel",
            "jacobi",
            "--grid",
            "4",
            "--sweeps",
            "10",
            "--tolerance",
            "1e-4",
            "--static-prior",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("rounds:"), "{out}");
    }

    #[test]
    fn adaptive_runs_rounds() {
        let args = parse(&v(&["adaptive", "--kernel", "matvec", "--n", "6"])).unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("rounds:"), "{out}");
    }

    #[test]
    fn bad_filter_rejected() {
        let args = parse(&v(&[
            "analyze", "--kernel", "matvec", "--n", "4", "--filter", "sideways",
        ]))
        .unwrap();
        assert!(dispatch(&args).is_err());
    }

    #[test]
    fn report_lists_static_instructions() {
        let args = parse(&v(&[
            "report", "--kernel", "stencil", "--grid", "8", "--sweeps", "3", "--rate", "0.2",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("stencil.sweep"), "{out}");
        assert!(out.contains("by region"), "{out}");
    }

    #[test]
    fn protect_prints_budget_ladder() {
        let args = parse(&v(&[
            "protect", "--kernel", "matvec", "--n", "6", "--rate", "0.3",
        ]))
        .unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("predicted SDC removed"), "{out}");
        assert!(out.contains("40%"), "{out}");
    }

    #[test]
    fn new_kernels_reachable_from_cli() {
        for kernel in ["spmv", "jacobi"] {
            let args = parse(&v(&["golden", "--kernel", kernel])).unwrap();
            let out = dispatch(&args).unwrap();
            assert!(out.contains("dynamic instructions"), "{kernel}: {out}");
        }
        let args = parse(&v(&["golden", "--kernel", "cg", "--csr", "--grid", "4"])).unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("cg.init.matrix"), "{out}");
    }

    #[test]
    fn json_output_written() {
        let path = std::env::temp_dir().join("ftb_cli_test.json");
        let _ = std::fs::remove_file(&path);
        let args = parse(&v(&[
            "campaign",
            "--kernel",
            "matvec",
            "--n",
            "4",
            "--samples",
            "20",
            "--json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&args).unwrap();
        let data = std::fs::read_to_string(&path).unwrap();
        assert!(data.contains("sdc_ci"));
        let _ = std::fs::remove_file(&path);
    }
}
