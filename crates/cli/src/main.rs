//! `ftb` — the fault-tolerance-boundary command-line tool.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ftb_cli::run(&raw));
}
