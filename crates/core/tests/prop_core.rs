//! Property tests for the boundary/prediction/metrics layer against
//! synthetic ground truths, where the exact expected values can be
//! computed independently.

use ftb_core::prelude::*;
use ftb_core::{golden_boundary, Boundary};
use ftb_inject::{ExhaustiveResult, Outcome};
use ftb_trace::{Precision, StaticId, Tracer};
use proptest::prelude::*;

/// Build a golden run holding exactly `vals`.
fn golden_of(vals: &[f64]) -> ftb_trace::GoldenRun {
    let mut t = Tracer::golden(Precision::F64);
    for &v in vals {
        t.value(StaticId(0), v);
    }
    t.finish_golden(vals.to_vec())
}

/// Build a *monotone* synthetic exhaustive truth for `vals`: at each
/// site, flips with injected error ≤ cutoff are masked, larger finite
/// errors are SDC, non-finite flips are crashes.
fn monotone_truth(golden: &ftb_trace::GoldenRun, cutoffs: &[f64]) -> ExhaustiveResult {
    let bits = golden.precision.bits();
    let mut codes = Vec::with_capacity(golden.n_sites() * bits as usize);
    for (site, &cutoff) in cutoffs.iter().enumerate().take(golden.n_sites()) {
        for e in golden.flip_errors(site) {
            let o = if !e.is_finite() {
                Outcome::Crash(ftb_inject::CrashKind::NonFinite)
            } else if e <= cutoff {
                Outcome::Masked
            } else {
                Outcome::Sdc
            };
            codes.push(o.code());
        }
    }
    ExhaustiveResult {
        n_sites: golden.n_sites(),
        bits,
        codes,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On a perfectly monotone program, the golden boundary recovers a
    /// classifier with precision 1 and recall 1: every masked flip sits
    /// at or below the recovered threshold, every SDC flip above it.
    #[test]
    fn golden_boundary_is_exact_on_monotone_truth(
        vals in proptest::collection::vec(0.5f64..100.0, 1..20),
        cutoff_scale in 0.0f64..2.0,
    ) {
        let golden = golden_of(&vals);
        let cutoffs: Vec<f64> = vals.iter().map(|v| v * cutoff_scale).collect();
        let truth = monotone_truth(&golden, &cutoffs);
        let boundary = golden_boundary(&golden, &truth);
        let predictor = Predictor::new(&golden, &boundary);
        let eval = BoundaryEval::against_exhaustive(&predictor, &truth);
        prop_assert_eq!(eval.precision, 1.0);
        prop_assert_eq!(eval.recall, 1.0, "m_total {} m_positive {}", eval.m_total, eval.m_positive);
    }

    /// Counting identities of the evaluation hold for arbitrary truth
    /// streams and boundaries.
    #[test]
    fn eval_counting_identities(
        vals in proptest::collection::vec(0.5f64..100.0, 1..15),
        thresholds in proptest::collection::vec(0.0f64..200.0, 1..15),
        outcome_bits in any::<u64>(),
    ) {
        let n = vals.len().min(thresholds.len());
        let golden = golden_of(&vals[..n]);
        let boundary = Boundary::from_thresholds(thresholds[..n].to_vec());
        let predictor = Predictor::new(&golden, &boundary);
        // a pseudorandom truth assignment
        let truth: Vec<(usize, u8, Outcome)> = (0..n)
            .flat_map(|site| (0..64u8).map(move |bit| {
                let h = (site as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ (u64::from(bit) << 32) ^ outcome_bits;
                let o = match h % 3 {
                    0 => Outcome::Masked,
                    1 => Outcome::Sdc,
                    _ => Outcome::Crash(ftb_inject::CrashKind::NonFinite),
                };
                (site, bit, o)
            }))
            .collect();
        let eval = BoundaryEval::from_truth(&predictor, truth.iter().copied());
        prop_assert_eq!(eval.n_evaluated as usize, truth.len());
        prop_assert!(eval.m_positive <= eval.m_predict);
        prop_assert!(eval.m_positive <= eval.m_total);
        prop_assert!((0.0..=1.0).contains(&eval.precision));
        prop_assert!((0.0..=1.0).contains(&eval.recall));
        // brute-force recount
        let mut mp = 0u64;
        let mut mt = 0u64;
        let mut pos = 0u64;
        for &(site, bit, o) in &truth {
            let pm = predictor.predict(site, bit).is_masked();
            mp += u64::from(pm);
            mt += u64::from(o.is_masked());
            pos += u64::from(pm && o.is_masked());
        }
        prop_assert_eq!(mp, eval.m_predict);
        prop_assert_eq!(mt, eval.m_total);
        prop_assert_eq!(pos, eval.m_positive);
    }

    /// Raising a threshold can only move predictions from assumed-SDC to
    /// masked, never the reverse — so recall is monotone in the boundary.
    #[test]
    fn recall_is_monotone_in_the_boundary(
        vals in proptest::collection::vec(0.5f64..100.0, 1..12),
        lo in proptest::collection::vec(0.0f64..10.0, 1..12),
        bumps in proptest::collection::vec(0.0f64..100.0, 1..12),
    ) {
        let n = vals.len().min(lo.len()).min(bumps.len());
        let golden = golden_of(&vals[..n]);
        let cutoffs: Vec<f64> = vals[..n].iter().map(|v| v * 0.7).collect();
        let truth = monotone_truth(&golden, &cutoffs);

        let small = Boundary::from_thresholds(lo[..n].to_vec());
        let big_thresholds: Vec<f64> = lo[..n]
            .iter()
            .zip(&bumps[..n])
            .map(|(&a, &b)| a + b)
            .collect();
        let big = Boundary::from_thresholds(big_thresholds);

        let ps = Predictor::new(&golden, &small);
        let pb = Predictor::new(&golden, &big);
        let es = BoundaryEval::against_exhaustive(&ps, &truth);
        let eb = BoundaryEval::against_exhaustive(&pb, &truth);
        prop_assert!(eb.recall >= es.recall, "recall {} -> {}", es.recall, eb.recall);
    }

    /// The predicted SDC ratio of a site is exactly the fraction of
    /// finite, above-threshold, non-crash flips.
    #[test]
    fn site_sdc_ratio_matches_brute_force(
        v in 0.5f64..100.0,
        threshold in 0.0f64..300.0,
    ) {
        let golden = golden_of(&[v]);
        let boundary = Boundary::from_thresholds(vec![threshold]);
        let predictor = Predictor::new(&golden, &boundary);
        let ratio = predictor.sdc_ratio_at(0, None);
        let expected = (0..64u8)
            .filter(|&bit| predictor.predict(0, bit) == PredictedOutcome::AssumedSdc)
            .count() as f64
            / 64.0;
        prop_assert_eq!(ratio, expected);
    }

    /// Protection-plan accounting: residual SDC plus removed SDC equals
    /// the baseline, for any budget.
    #[test]
    fn protection_budget_accounting(
        vals in proptest::collection::vec(0.5f64..100.0, 2..12),
        budget_frac in 0.0f64..1.0,
    ) {
        let golden = golden_of(&vals);
        let cutoffs: Vec<f64> = vals.iter().map(|v| v * 0.5).collect();
        let truth = monotone_truth(&golden, &cutoffs);
        let boundary = golden_boundary(&golden, &truth);
        let predictor = Predictor::new(&golden, &boundary);
        let budget = (vals.len() as f64 * budget_frac) as usize;
        let plan = ProtectionPlan::rank(&predictor, None, budget);
        let residual = plan.residual_sdc(&truth);
        prop_assert!(residual <= truth.overall_sdc_ratio() + 1e-15);
        prop_assert!((0.0..=1.0).contains(&plan.sdc_reduction(&truth)));
        // guarding everything removes everything
        let full = ProtectionPlan::rank(&predictor, None, vals.len());
        prop_assert_eq!(full.residual_sdc(&truth), 0.0);
    }
}
