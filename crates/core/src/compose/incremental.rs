//! Incremental re-analysis: decide which sections a prior campaign
//! ledger still covers.
//!
//! Each ledger record carries the content signature its campaign was run
//! under ([`ftb_trace::SectionMap::signature`]: the section's extent,
//! its static-instruction stream, and the kernel's
//! [`code_version`](ftb_kernels::Kernel::code_version) stamp for the
//! range). A record is **reusable** iff a current section has the same
//! index, extent and signature; everything else — edited code, a changed
//! segmentation, a section the ledger never finished — is **dirty** and
//! must re-run. Matching is purely structural, so stale caches can only
//! cost re-runs, never wrong reuse (assuming `code_version` honours its
//! contract).

use ftb_inject::SectionRecord;

/// The reuse/re-run split for one incremental pass.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalPlan {
    /// Prior records adopted verbatim, keyed by current section index.
    pub reused: Vec<(usize, SectionRecord)>,
    /// Current section indices that must (re-)run, ascending.
    pub dirty: Vec<usize>,
}

impl IncrementalPlan {
    /// A plan that re-runs everything (no usable prior ledger).
    pub fn all_dirty(n_sections: usize) -> Self {
        IncrementalPlan {
            reused: Vec::new(),
            dirty: (0..n_sections).collect(),
        }
    }
}

/// Split the current sections into reusable and dirty against a prior
/// ledger's records. `current` gives, per current section index, the
/// `(lo, hi, signature)` triple it would campaign under today.
pub fn plan_incremental(
    prior: &[SectionRecord],
    current: &[(usize, usize, u64)],
) -> IncrementalPlan {
    let mut reused = Vec::new();
    let mut dirty = Vec::new();
    for (t, &(lo, hi, sig)) in current.iter().enumerate() {
        let hit = prior.iter().find(|r| {
            r.summary.index == t && r.summary.lo == lo && r.summary.hi == hi && r.signature == sig
        });
        match hit {
            Some(r) => reused.push((t, r.clone())),
            None => dirty.push(t),
        }
    }
    IncrementalPlan { reused, dirty }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_inject::{SectionRecord, SectionSummary};

    fn record(index: usize, lo: usize, hi: usize, signature: u64) -> SectionRecord {
        SectionRecord {
            signature,
            summary: SectionSummary {
                index,
                lo,
                hi,
                n_experiments: 1,
                local_max: vec![0.0; hi - lo],
                min_sdc: vec![f64::INFINITY; hi - lo],
                site_amp: vec![0.0; hi - lo],
                amp_in: 0.0,
                cap_in: 0.0,
                min_sdc_in: f64::INFINITY,
                slot_amp: vec![],
                static_amp: vec![],
            },
        }
    }

    #[test]
    fn matching_signatures_reuse_everything() {
        let prior = vec![record(0, 0, 4, 11), record(1, 4, 8, 22)];
        let plan = plan_incremental(&prior, &[(0, 4, 11), (4, 8, 22)]);
        assert!(plan.dirty.is_empty());
        assert_eq!(plan.reused.len(), 2);
    }

    #[test]
    fn signature_mismatch_dirties_exactly_that_section() {
        let prior = vec![record(0, 0, 4, 11), record(1, 4, 8, 22)];
        let plan = plan_incremental(&prior, &[(0, 4, 11), (4, 8, 99)]);
        assert_eq!(plan.dirty, vec![1]);
        assert_eq!(plan.reused.len(), 1);
        assert_eq!(plan.reused[0].0, 0);
    }

    #[test]
    fn extent_mismatch_is_stale_even_with_equal_signature() {
        let prior = vec![record(0, 0, 4, 11)];
        let plan = plan_incremental(&prior, &[(0, 5, 11)]);
        assert_eq!(plan.dirty, vec![0]);
    }

    #[test]
    fn missing_records_are_dirty() {
        // ledger died after section 0: section 1 never persisted
        let prior = vec![record(0, 0, 4, 11)];
        let plan = plan_incremental(&prior, &[(0, 4, 11), (4, 8, 22)]);
        assert_eq!(plan.dirty, vec![1]);
    }

    #[test]
    fn all_dirty_covers_every_section() {
        let plan = IncrementalPlan::all_dirty(3);
        assert_eq!(plan.dirty, vec![0, 1, 2]);
        assert!(plan.reused.is_empty());
    }
}
