//! The backward composition sweep: turn per-section transfer summaries
//! into whole-program thresholds.
//!
//! Mirrors the static analyzer's backward pass, but over *sections*
//! instead of dependence edges: starting from the output tolerance `T`
//! at the terminal sections, an **error budget** — the largest frontier
//! perturbation the downstream suffix of the program is known to absorb
//! — is propagated backwards through each section's empirical transfer
//! summary. Within a section, the budget is divided by the site's
//! observed frontier amplification to extrapolate a per-site threshold
//! beyond what local injections certified directly.
//!
//! Everything here is pure arithmetic over [`SectionSummary`] values, so
//! the composition properties (monotonicity, order-invariance,
//! single-section degeneration) are testable without running a kernel.

use ftb_inject::SectionSummary;

/// The section-level dependence DAG: which sections consume a section's
/// output frontier. [`SectionMap`](ftb_trace::SectionMap) segmentations
/// are linear in time, so the driver uses [`SectionDag::chain`]; the
/// general form exists for composition over independent phases (and for
/// exercising order-invariance in tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionDag {
    /// `succs[t]` = sections that read section `t`'s output frontier.
    pub succs: Vec<Vec<usize>>,
}

impl SectionDag {
    /// The linear chain `0 → 1 → … → m-1`.
    pub fn chain(m: usize) -> Self {
        SectionDag {
            succs: (0..m)
                .map(|t| if t + 1 < m { vec![t + 1] } else { vec![] })
                .collect(),
        }
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }
}

/// Result of [`compose_thresholds`].
#[derive(Debug, Clone, PartialEq)]
pub struct Composed {
    /// Per-site thresholds, dense over the whole program (sites not
    /// covered by any section stay `0`).
    pub thresholds: Vec<f64>,
    /// Per-section backward error budget: the largest perturbation at
    /// the section's output frontier certified to stay within tolerance
    /// end-to-end.
    pub budgets: Vec<f64>,
    /// Per-site flag: the threshold exceeds what local injections
    /// certified directly (i.e. it rests on the budget extrapolation).
    pub extrapolated: Vec<bool>,
}

/// Knobs of the backward sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComposeParams {
    /// Output tolerance `T`: the budget of every terminal section.
    pub tolerance: f64,
    /// Extrapolated thresholds are divided by this margin (`≥ 1`).
    pub safety: f64,
    /// Whether to extrapolate beyond the locally-certified fold at all.
    /// Off, the composed boundary is exactly the per-section local folds
    /// (clamped below known SDC) — the conservative floor.
    pub extrapolate: bool,
}

/// Reduce a candidate strictly below `cap` (the §3.5 filter shape):
/// a threshold equal to an error known to cause SDC must not certify.
fn below(x: f64, cap: f64) -> f64 {
    if cap.is_finite() && x >= cap {
        cap.next_down().max(0.0)
    } else {
        x
    }
}

/// The error budget a *predecessor* of section `s` inherits, given `s`
/// holds budget `b` at its own frontier: the inlet perturbation must
/// stay within the largest observed masked crossing (`cap_in` — beyond
/// it nothing is certified), amplify through `s` into at most `b`
/// (`amp_in`; an inlet that never measurably reached the frontier keeps
/// the observation cap only), and sit strictly below the smallest inlet
/// error known to cause SDC.
fn inlet_budget(s: &SectionSummary, b: f64) -> f64 {
    if s.cap_in <= 0.0 || s.cap_in.is_nan() {
        return 0.0; // no masked inlet observation: nothing certified
    }
    let through = if s.amp_in > 0.0 {
        (b / s.amp_in).min(s.cap_in)
    } else {
        s.cap_in
    };
    below(through, s.min_sdc_in)
}

/// Compose per-section summaries into whole-program per-site thresholds
/// via a backward sweep over `dag`.
///
/// `summaries[t]` must describe section `t` of the DAG; `n_sites` is the
/// whole program's dynamic-instruction count.
///
/// # Panics
/// Panics if `summaries` and `dag` disagree on the section count.
pub fn compose_thresholds(
    summaries: &[SectionSummary],
    dag: &SectionDag,
    n_sites: usize,
    params: &ComposeParams,
) -> Composed {
    assert_eq!(summaries.len(), dag.len(), "summary/DAG section mismatch");
    let m = summaries.len();

    // Backward budgets. Sections are numbered in execution order and
    // edges point forward, so a reverse index sweep is a valid reverse
    // topological order.
    let mut budgets = vec![f64::INFINITY; m];
    for t in (0..m).rev() {
        let succs = &dag.succs[t];
        budgets[t] = if succs.is_empty() {
            params.tolerance
        } else {
            succs
                .iter()
                .map(|&u| inlet_budget(&summaries[u], budgets[u]))
                .fold(f64::INFINITY, f64::min)
        };
    }

    // Per-site thresholds: the locally-certified fold, raised to the
    // budget extrapolation where an observed frontier amplification
    // makes it meaningful, always strictly below the site's known SDC.
    let mut thresholds = vec![0.0f64; n_sites];
    let mut extrapolated = vec![false; n_sites];
    let safety = params.safety.max(1.0);
    for (t, s) in summaries.iter().enumerate() {
        for li in 0..(s.hi - s.lo) {
            let loc = s.local_max[li];
            let mut val = loc;
            if params.extrapolate && s.site_amp[li] > 0.0 {
                // amplifications below 1 are clamped: we never certify a
                // site for *more* error than its own frontier absorbs
                let ext = budgets[t] / s.site_amp[li].max(1.0) / safety;
                if ext > val {
                    val = ext;
                    extrapolated[s.lo + li] = true;
                }
            }
            val = below(val, s.min_sdc[li]);
            // the clamp may pull an extrapolated value back to the fold
            if val <= loc {
                val = loc;
                extrapolated[s.lo + li] = false;
            }
            thresholds[s.lo + li] = val;
        }
    }

    Composed {
        thresholds,
        budgets,
        extrapolated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(lo: usize, hi: usize) -> SectionSummary {
        SectionSummary {
            index: 0,
            lo,
            hi,
            n_experiments: 1,
            local_max: vec![0.0; hi - lo],
            min_sdc: vec![f64::INFINITY; hi - lo],
            site_amp: vec![0.0; hi - lo],
            amp_in: 0.0,
            cap_in: 0.0,
            min_sdc_in: f64::INFINITY,
            slot_amp: vec![],
            static_amp: vec![],
        }
    }

    fn params() -> ComposeParams {
        ComposeParams {
            tolerance: 1e-4,
            safety: 1.0,
            extrapolate: true,
        }
    }

    #[test]
    fn terminal_budget_is_the_tolerance() {
        let s = summary(0, 3);
        let c = compose_thresholds(&[s], &SectionDag::chain(1), 3, &params());
        assert_eq!(c.budgets, vec![1e-4]);
    }

    #[test]
    fn no_masked_inlet_means_zero_upstream_budget() {
        let mut a = summary(0, 2);
        a.local_max = vec![0.5, 0.25];
        let b = summary(2, 4); // cap_in == 0: nothing crossed b masked
        let c = compose_thresholds(&[a, b], &SectionDag::chain(2), 4, &params());
        assert_eq!(c.budgets[0], 0.0);
        // local certificates survive regardless of the budget
        assert_eq!(&c.thresholds[..2], &[0.5, 0.25]);
    }

    #[test]
    fn budget_divides_by_amplification_and_respects_the_cap() {
        let a = summary(0, 1);
        let mut b = summary(1, 2);
        b.amp_in = 2.0;
        b.cap_in = 1.0;
        let dag = SectionDag::chain(2);
        let c = compose_thresholds(&[a.clone(), b.clone()], &dag, 2, &params());
        // T / amp_in = 5e-5, well under the cap
        assert!((c.budgets[0] - 5e-5).abs() < 1e-18);

        b.cap_in = 1e-5; // observed crossings stop earlier than T/amp
        let c = compose_thresholds(&[a, b], &dag, 2, &params());
        assert_eq!(c.budgets[0], 1e-5);
    }

    #[test]
    fn inlet_sdc_caps_the_budget_strictly_below() {
        let a = summary(0, 1);
        let mut b = summary(1, 2);
        b.amp_in = 1.0;
        b.cap_in = 1.0;
        b.min_sdc_in = 1e-5;
        let c = compose_thresholds(&[a, b], &SectionDag::chain(2), 2, &params());
        assert!(c.budgets[0] < 1e-5);
        assert!(c.budgets[0] > 0.9e-5);
    }

    #[test]
    fn extrapolation_rests_on_site_amp_and_is_flagged() {
        let mut s = summary(0, 2);
        s.local_max = vec![1e-6, 1e-6];
        s.site_amp = vec![2.0, 0.0]; // site 1 never reached the frontier
        let c = compose_thresholds(&[s], &SectionDag::chain(1), 2, &params());
        assert!((c.thresholds[0] - 5e-5).abs() < 1e-18);
        assert!(c.extrapolated[0]);
        assert_eq!(c.thresholds[1], 1e-6); // no amp: local fold only
        assert!(!c.extrapolated[1]);
    }

    #[test]
    fn sub_unit_amplification_never_certifies_above_the_budget() {
        let mut s = summary(0, 1);
        s.site_amp = vec![0.25]; // decays — but we clamp the divisor at 1
        let c = compose_thresholds(&[s], &SectionDag::chain(1), 1, &params());
        assert!(c.thresholds[0] <= params().tolerance);
    }

    #[test]
    fn extrapolation_off_reproduces_the_local_folds() {
        let mut s = summary(0, 2);
        s.local_max = vec![3.0, 4.0];
        s.site_amp = vec![2.0, 2.0];
        let p = ComposeParams {
            extrapolate: false,
            ..params()
        };
        let c = compose_thresholds(&[s], &SectionDag::chain(1), 2, &p);
        assert_eq!(c.thresholds, vec![3.0, 4.0]);
        assert!(!c.extrapolated.iter().any(|&e| e));
    }

    #[test]
    fn local_sdc_clamps_extrapolated_thresholds() {
        let mut s = summary(0, 1);
        s.site_amp = vec![1.0];
        s.min_sdc = vec![1e-6]; // SDC observed well under the tolerance
        let c = compose_thresholds(&[s], &SectionDag::chain(1), 1, &params());
        assert!(c.thresholds[0] < 1e-6);
    }

    #[test]
    fn fan_dag_takes_the_tightest_successor() {
        // 0 feeds both 1 and 2 (independent terminal phases)
        let a = summary(0, 1);
        let mut b = summary(1, 2);
        b.amp_in = 1.0;
        b.cap_in = 1.0;
        let mut c2 = summary(2, 3);
        c2.amp_in = 10.0;
        c2.cap_in = 1.0;
        let dag = SectionDag {
            succs: vec![vec![1, 2], vec![], vec![]],
        };
        let c = compose_thresholds(&[a, b, c2], &dag, 3, &params());
        assert!((c.budgets[0] - 1e-5).abs() < 1e-18); // min(T/1, T/10)
    }

    #[test]
    #[should_panic]
    fn section_count_mismatch_panics() {
        let _ = compose_thresholds(&[summary(0, 1)], &SectionDag::chain(2), 1, &params());
    }
}
