//! Compositional boundary analysis: per-section campaigns composed into
//! a whole-program fault tolerance boundary, with incremental
//! re-analysis.
//!
//! The monolithic pipeline ([`infer_boundary`](crate::infer_boundary))
//! treats the program as one opaque block: any code edit invalidates the
//! whole campaign. This module segments the golden run into **sections**
//! (initialization, each sweep/iteration phase — see
//! [`ftb_trace::SectionMap`]), runs an independent injection campaign
//! per section ([`ftb_inject::run_section_campaign`]), fits each section
//! an empirical **error-transfer summary**, and composes the summaries
//! end-to-end with a backward sweep ([`backward`]) that mirrors the
//! static analyzer's budget propagation — except every number in the
//! summary is a measured whole-program observation, not a model.
//!
//! The payoff is **incremental re-analysis** ([`incremental`]): section
//! campaigns are persisted in a content-addressed ledger
//! (`ftb-sections-v1`), keyed by a signature over the section's
//! static-instruction stream and the kernel's
//! [`code_version`](ftb_kernels::Kernel::code_version) stamp. After a
//! localized code edit only the sections whose signatures changed
//! re-run; the composed boundary is rebuilt from the mixed
//! (reused + fresh) summaries at full quality.
//!
//! Soundness caveats are inherited from both parents: like the inferred
//! boundary, transfer summaries are sampled observations (a secant
//! amplification can under-estimate the true worst case between probe
//! magnitudes); like the static bound, the backward sweep assumes
//! per-section worst cases compose (they multiply, which over-estimates
//! — conservative — whenever errors partially cancel across sections).
//! The optional [`ComposeConfig::secant`] mode additionally folds the
//! provenance DDG's per-section amplification bound into the transfer
//! summaries, tightening budgets against under-sampled inlets.

pub mod backward;
pub mod incremental;

pub use backward::{compose_thresholds, ComposeParams, Composed, SectionDag};
pub use incremental::{plan_incremental, IncrementalPlan};

use crate::boundary::Boundary;
use ftb_inject::{
    create_section_ledger, read_section_ledger, run_section_campaign, CampaignBinding, Injector,
    LedgerError, SectionCampaign, SectionCampaignConfig, SectionRecord, SectionSummary,
};
use ftb_kernels::{Kernel, KernelConfig};
use ftb_trace::{Ddg, SectionMap};
use std::path::Path;

/// Configuration of a compositional analysis run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComposeConfig {
    /// Output tolerance `T` (must match the injector's classifier for
    /// the composed thresholds to be meaningful).
    pub tolerance: f64,
    /// Per-section site sampling rate in `(0, 1]`.
    pub rate: f64,
    /// Campaign seed.
    pub seed: u64,
    /// Safety margin dividing extrapolated thresholds (`≥ 1`).
    pub safety: f64,
    /// Extrapolate beyond locally-certified folds using the backward
    /// budgets (on by default; off degenerates to per-section folds).
    pub extrapolate: bool,
    /// Upper bound on the number of sections (phases beyond it coalesce).
    pub max_sections: usize,
    /// Fold the provenance DDG's per-section secant amplification bound
    /// into the transfer summaries (requires an instrumented kernel).
    pub secant: bool,
}

impl ComposeConfig {
    /// Defaults at tolerance `T`: 35% sampling, extrapolation on, no
    /// extra safety margin, at most 32 sections, no DDG tightening.
    pub fn new(tolerance: f64) -> Self {
        ComposeConfig {
            tolerance,
            rate: 0.35,
            seed: 0x5ec7,
            safety: 1.0,
            extrapolate: true,
            max_sections: 32,
            secant: false,
        }
    }
}

/// Why a compositional analysis could not run.
#[derive(Debug)]
pub enum ComposeError {
    /// The tolerance is not a positive finite number.
    BadTolerance(f64),
    /// The sampling rate is outside `(0, 1]`.
    BadRate(f64),
    /// Secant mode was requested but the kernel's `run` carries no
    /// provenance instrumentation, so no DDG amplification bound exists.
    NotInstrumented,
    /// The section ledger exists but could not be read.
    Ledger(LedgerError),
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::BadTolerance(t) => {
                write!(f, "tolerance must be positive and finite, got {t}")
            }
            ComposeError::BadRate(r) => write!(f, "sampling rate must be in (0, 1], got {r}"),
            ComposeError::NotInstrumented => write!(
                f,
                "secant mode needs a provenance-instrumented kernel: the \
                 recorded dependence graph has no output or branch sinks \
                 (instrumented kernels: jacobi, gemm, cg (matrix-free), \
                 lu, fft, stencil, matvec, spmv)"
            ),
            ComposeError::Ledger(e) => write!(f, "section ledger: {e}"),
        }
    }
}

impl std::error::Error for ComposeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ComposeError::Ledger(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LedgerError> for ComposeError {
    fn from(e: LedgerError) -> Self {
        ComposeError::Ledger(e)
    }
}

/// Everything a compositional analysis produced.
#[derive(Debug)]
pub struct ComposeResult {
    /// The composed whole-program boundary.
    pub boundary: Boundary,
    /// The segmentation the analysis ran under.
    pub map: SectionMap,
    /// Per-section transfer summaries, index order (reused + fresh).
    pub summaries: Vec<SectionSummary>,
    /// Per-section content signatures.
    pub signatures: Vec<u64>,
    /// Per-section backward error budgets.
    pub budgets: Vec<f64>,
    /// Per-site extrapolation flags (threshold rests on a budget, not a
    /// direct local observation).
    pub extrapolated: Vec<bool>,
    /// Sections whose campaigns ran this invocation, ascending.
    pub reran: Vec<usize>,
    /// Sections reused verbatim from the prior ledger, ascending.
    pub reused: Vec<usize>,
    /// The fresh campaigns, indexed by section (`None` where reused).
    pub campaigns: Vec<Option<SectionCampaign>>,
    /// Kernel executions spent this invocation (reused sections cost 0).
    pub n_experiments: u64,
}

/// Largest product of secant edge amplifications along any dependence
/// path from a def *before* `lo` to a frontier site of `[lo, hi)` — the
/// DDG's bound on how hard an inlet error can hit this section's output
/// frontier. Edges are topologically ordered by use site, so one
/// forward pass suffices.
fn ddg_section_amp(ddg: &Ddg, lo: usize, hi: usize, is_frontier: &[bool]) -> f64 {
    let mut amp_to = vec![0.0f64; hi - lo];
    for e in 0..ddg.n_edges() {
        let u = ddg.uses[e] as usize;
        if u < lo {
            continue;
        }
        if u >= hi {
            break; // uses are non-decreasing
        }
        let d = ddg.defs[e] as usize;
        let inflow = if d < lo {
            ddg.amps[e]
        } else {
            amp_to[d - lo] * ddg.amps[e]
        };
        if inflow > amp_to[u - lo] {
            amp_to[u - lo] = inflow;
        }
    }
    amp_to
        .iter()
        .zip(is_frontier)
        .filter(|&(_, &f)| f)
        .map(|(&a, _)| a)
        .fold(0.0, f64::max)
}

/// Run the full compositional analysis: segment, (re-)campaign dirty
/// sections, persist, compose.
///
/// `binding_config` identifies the kernel in the ledger header so stale
/// ledgers from a different campaign are never reused. With
/// `ledger: None` the analysis is purely in-memory (every section runs).
///
/// # Errors
/// [`ComposeError::BadTolerance`] / [`ComposeError::BadRate`] on invalid
/// knobs, [`ComposeError::NotInstrumented`] if `secant` is set on an
/// uninstrumented kernel, [`ComposeError::Ledger`] if an existing ledger
/// file is unreadable (delete it to force a fresh campaign).
pub fn compose_analysis(
    kernel: &dyn Kernel,
    binding_config: &KernelConfig,
    injector: &Injector<'_>,
    cfg: &ComposeConfig,
    ledger: Option<&Path>,
) -> Result<ComposeResult, ComposeError> {
    if !(cfg.tolerance > 0.0 && cfg.tolerance.is_finite()) {
        return Err(ComposeError::BadTolerance(cfg.tolerance));
    }
    if !(cfg.rate > 0.0 && cfg.rate <= 1.0) {
        return Err(ComposeError::BadRate(cfg.rate));
    }

    let golden = injector.golden();
    let registry = kernel.registry();
    let map = SectionMap::phases(golden, &registry).coalesce(cfg.max_sections.max(1));
    let m = map.n_sections();

    let signatures: Vec<u64> = (0..m)
        .map(|t| {
            let (lo, hi) = map.range(t);
            map.signature(golden, t, kernel.code_version(lo, hi))
        })
        .collect();

    // The DDG amplification bounds, fitted before any campaign spends
    // runs, so an uninstrumented kernel fails fast.
    let ddg_amp: Option<Vec<f64>> = if cfg.secant {
        let (_, ddg) = kernel.golden_with_ddg();
        if !ddg.is_instrumented() {
            return Err(ComposeError::NotInstrumented);
        }
        Some(
            (0..m)
                .map(|t| {
                    let (lo, hi) = map.range(t);
                    let frontier = map.frontier(golden, &registry, t);
                    let mut flags = vec![false; hi - lo];
                    for s in frontier {
                        flags[s - lo] = true;
                    }
                    ddg_section_amp(&ddg, lo, hi, &flags)
                })
                .collect(),
        )
    } else {
        None
    };

    let scfg = SectionCampaignConfig::new(cfg.rate, cfg.seed);
    let binding = CampaignBinding {
        kernel: binding_config.clone(),
        classifier: *injector.classifier(),
        n_sites: injector.n_sites(),
        bits: injector.bits(),
        plan: scfg.plan(m),
        bit_prune: None,
        snapshot: None,
    };

    // Which sections does the prior ledger still cover?
    let current: Vec<(usize, usize, u64)> = (0..m)
        .map(|t| {
            let (lo, hi) = map.range(t);
            (lo, hi, signatures[t])
        })
        .collect();
    let plan = match ledger {
        Some(path) if path.exists() => {
            let prior = read_section_ledger(path)?;
            // Compatibility deliberately excludes the kernel config: an
            // edit that changes the config (e.g. a sweep tweak) is
            // exactly the incremental case, and code identity is what
            // the per-section signatures govern. Experiment-space shape
            // and classification must still agree exactly.
            let b = &prior.header.binding;
            let compatible = b.classifier == binding.classifier
                && b.n_sites == binding.n_sites
                && b.bits == binding.bits
                && b.plan == binding.plan;
            if compatible {
                plan_incremental(&prior.sections, &current)
            } else {
                IncrementalPlan::all_dirty(m)
            }
        }
        _ => IncrementalPlan::all_dirty(m),
    };

    // Rewrite the ledger crash-safely: reused records land first, fresh
    // records append as each campaign completes — a kill mid-campaign
    // loses at most the section in flight.
    let mut writer = match ledger {
        Some(path) => Some(create_section_ledger(path, binding)?),
        None => None,
    };
    let mut summaries: Vec<Option<SectionSummary>> = vec![None; m];
    let mut campaigns: Vec<Option<SectionCampaign>> = (0..m).map(|_| None).collect();
    for (t, rec) in &plan.reused {
        if let Some(w) = writer.as_mut() {
            w.append_records(std::slice::from_ref(rec))?;
        }
        summaries[*t] = Some(rec.summary.clone());
    }
    let mut n_experiments = 0u64;
    for &t in &plan.dirty {
        let campaign = run_section_campaign(injector, &registry, &map, t, &scfg);
        let rec = SectionRecord {
            signature: signatures[t],
            summary: campaign.summary.clone(),
        };
        if let Some(w) = writer.as_mut() {
            w.append_records(std::slice::from_ref(&rec))?;
        }
        n_experiments += campaign.summary.n_experiments;
        summaries[t] = Some(campaign.summary.clone());
        campaigns[t] = Some(campaign);
    }
    let summaries: Vec<SectionSummary> = summaries.into_iter().map(Option::unwrap).collect();

    // Prepare the composition input. Two adjustments on a working copy
    // (the persisted summaries stay purely empirical):
    // 1. unsampled sites inherit their static instruction's observed
    //    amplification maximum (dynamic instances of one source
    //    instruction share propagation behaviour), so the budget
    //    extrapolation reaches sites the campaign never injected at;
    // 2. secant tightening: a section's empirical inlet amplification is
    //    raised to the DDG path-product bound, shrinking upstream
    //    budgets.
    let composed_input: Vec<SectionSummary> = summaries
        .iter()
        .cloned()
        .map(|mut s| {
            for li in 0..(s.hi - s.lo) {
                if s.site_amp[li] <= 0.0 {
                    let id = golden.static_ids[s.lo + li];
                    if let Ok(p) = s.static_amp.binary_search_by_key(&id, |a| a.static_id) {
                        s.site_amp[li] = s.static_amp[p].amp;
                    }
                }
            }
            if let Some(bounds) = &ddg_amp {
                s.amp_in = s.amp_in.max(bounds[s.index]);
            }
            s
        })
        .collect();
    let params = ComposeParams {
        tolerance: cfg.tolerance,
        safety: cfg.safety,
        extrapolate: cfg.extrapolate,
    };
    let composed = compose_thresholds(
        &composed_input,
        &SectionDag::chain(m),
        golden.n_sites(),
        &params,
    );

    let reused: Vec<usize> = plan.reused.iter().map(|&(t, _)| t).collect();
    Ok(ComposeResult {
        boundary: Boundary::from_composed(composed.thresholds),
        map,
        summaries,
        signatures,
        budgets: composed.budgets,
        extrapolated: composed.extrapolated,
        reran: plan.dirty,
        reused,
        campaigns,
        n_experiments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_inject::Classifier;
    use ftb_kernels::{JacobiConfig, JacobiKernel};

    fn jacobi() -> (JacobiKernel, KernelConfig) {
        let cfg = JacobiConfig {
            grid: 3,
            sweeps: 4,
            ..JacobiConfig::small()
        };
        (JacobiKernel::new(cfg.clone()), KernelConfig::Jacobi(cfg))
    }

    #[test]
    fn bad_knobs_are_refused() {
        let (k, kc) = jacobi();
        let inj = Injector::new(&k, Classifier::new(1e-4));
        let mut c = ComposeConfig::new(0.0);
        assert!(matches!(
            compose_analysis(&k, &kc, &inj, &c, None),
            Err(ComposeError::BadTolerance(_))
        ));
        c = ComposeConfig::new(1e-4);
        c.rate = 1.5;
        assert!(matches!(
            compose_analysis(&k, &kc, &inj, &c, None),
            Err(ComposeError::BadRate(_))
        ));
    }

    #[test]
    fn fresh_analysis_runs_every_section_and_composes() {
        let (k, kc) = jacobi();
        let inj = Injector::new(&k, Classifier::new(1e-4));
        let cfg = ComposeConfig::new(1e-4);
        let r = compose_analysis(&k, &kc, &inj, &cfg, None).unwrap();
        let m = r.map.n_sections();
        assert!(m > 2);
        assert_eq!(r.reran, (0..m).collect::<Vec<_>>());
        assert!(r.reused.is_empty());
        assert_eq!(r.boundary.n_sites(), inj.n_sites());
        assert!(r.boundary.coverage() > 0.0, "composed nothing at all");
        assert!(r.budgets.iter().all(|b| b.is_finite()));
        assert!(r.n_experiments > 0);
    }

    #[test]
    fn secant_mode_tightens_or_matches() {
        let (k, kc) = jacobi();
        let inj = Injector::new(&k, Classifier::new(1e-4));
        let cfg = ComposeConfig::new(1e-4);
        let plain = compose_analysis(&k, &kc, &inj, &cfg, None).unwrap();
        let secant = compose_analysis(
            &k,
            &kc,
            &inj,
            &ComposeConfig {
                secant: true,
                ..cfg
            },
            None,
        )
        .unwrap();
        for (s, p) in secant
            .boundary
            .thresholds()
            .iter()
            .zip(plain.boundary.thresholds())
        {
            assert!(s <= p, "secant bound loosened a threshold");
        }
    }

    #[test]
    fn ddg_section_amp_folds_path_products() {
        // 0 -(x2)-> 1 -(x3)-> 2 ; section [1,3): inlet path product 6
        let ddg = Ddg {
            n_sites: 3,
            defs: vec![0, 1],
            uses: vec![1, 2],
            amps: vec![2.0, 3.0],
            out_sinks: vec![(2, 1.0)],
            ..Ddg::default()
        };
        let amp = ddg_section_amp(&ddg, 1, 3, &[true, true]);
        assert!((amp - 6.0).abs() < 1e-12);
        // frontier restricted to site 1 only: path stops at x2
        let amp = ddg_section_amp(&ddg, 1, 3, &[true, false]);
        assert!((amp - 2.0).abs() < 1e-12);
    }
}
